//! The `PrecisionStore` façade and its builder.

use std::collections::HashMap;
use std::hash::Hash;

use apcache_core::cache::Cache;
use apcache_core::cost::CostModel;
use apcache_core::error::ProtocolError;
use apcache_core::source::{Refresh, Source};
use apcache_core::{CacheId, Interval, Key, Rng, TimeMs};
use apcache_queries::{evaluate, evaluate_relative, AggregateKind, ItemBound, PrecisionConstraint};
use apcache_spool::{SpoolConfig, SpoolIo, StdFsIo};

use crate::constraint::Constraint;
use crate::error::StoreError;
use crate::metrics::StoreMetrics;
use crate::migrate::KeyState;
use crate::policy::{InitialWidth, PolicySpec};
use crate::spool::{self as spool_codec, Mutation, SnapshotImage, SpoolKey, StoreSpool};

/// The store's single logical cache in the refresh protocol.
const STORE_CACHE: CacheId = CacheId(0);

/// An answer to a point read: the cached interval when it was precise
/// enough, or the exact value when a refresh was needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Answer {
    /// A valid interval `[L, H]` guaranteed to contain the exact value.
    Interval(Interval),
    /// The exact value, fetched from the source.
    Exact(f64),
}

impl Answer {
    /// The answer as an interval (a point interval for exact answers).
    pub fn interval(&self) -> Interval {
        match *self {
            Answer::Interval(iv) => iv,
            Answer::Exact(v) => Interval::point(v).expect("sources only hold finite values"),
        }
    }

    /// Width of the answer (0 for exact answers).
    pub fn width(&self) -> f64 {
        self.interval().width()
    }

    /// Whether the answer is exact.
    pub fn is_exact(&self) -> bool {
        self.interval().is_exact()
    }

    /// Whether `v` is consistent with this answer.
    pub fn contains(&self, v: f64) -> bool {
        self.interval().contains(v)
    }

    /// A point estimate: the exact value, or the interval midpoint (`None`
    /// for half-/unbounded intervals, which have no finite midpoint).
    pub fn estimate(&self) -> Option<f64> {
        match *self {
            Answer::Exact(v) => Some(v),
            Answer::Interval(iv) => iv.center(),
        }
    }
}

impl std::fmt::Display for Answer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Answer::Exact(v) => write!(f, "={v}"),
            Answer::Interval(iv) => write!(f, "{iv}"),
        }
    }
}

/// Result of [`PrecisionStore::read`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadResult {
    /// The answer; always satisfies the constraint the read ran with.
    pub answer: Answer,
    /// Whether the read triggered a query-initiated refresh (and therefore
    /// paid `C_qr` and shrank the key's interval width).
    pub refreshed: bool,
}

/// Result of [`PrecisionStore::write`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Number of value-initiated refreshes the write caused (0 when the new
    /// value stayed inside the cached interval, 1 when it escaped).
    pub refreshes: usize,
}

impl WriteOutcome {
    /// Whether the write escaped the cached interval.
    pub fn escaped(&self) -> bool {
        self.refreshes > 0
    }
}

/// Result of [`PrecisionStore::aggregate`].
#[derive(Debug, Clone)]
pub struct AggregateOutcome<K> {
    /// The answer interval; its width satisfies the constraint the query
    /// ran with.
    pub answer: Interval,
    /// Keys that were fetched exactly (query-initiated refreshes), in
    /// fetch order.
    pub refreshed: Vec<K>,
}

/// Builder for [`PrecisionStore`]: cost model, adaptivity, thresholds,
/// cache capacity, and the initial key population.
///
/// ```
/// use apcache_store::{Constraint, PolicySpec, StoreBuilder};
/// use apcache_core::cost::CostModel;
///
/// let mut store = StoreBuilder::new()
///     .cost(CostModel::multiversion())
///     .alpha(1.0)
///     .thresholds(0.0, f64::INFINITY)
///     .source("alpha", 10.0)
///     .source_with_policy("beta", 20.0, PolicySpec::Fixed { width: 4.0 })
///     .build()
///     .unwrap();
/// assert!(store.read(&"beta", Constraint::Absolute(4.0), 0).unwrap().answer.contains(20.0));
/// ```
#[derive(Debug, Clone)]
pub struct StoreBuilder<K> {
    cost: CostModel,
    alpha: f64,
    gamma0: f64,
    gamma1: f64,
    capacity: Option<usize>,
    initial_width: InitialWidth,
    default_policy: PolicySpec,
    rng: Rng,
    sources: Vec<(K, f64, Option<PolicySpec>)>,
    spool: Option<SpoolSetup<K>>,
}

/// Spool attachment captured at `with_spool` time: the directory, tuning,
/// and the key/snapshot encoders as plain `fn` pointers so the builder
/// (and store) stay `Debug + Clone + Send` without a `SpoolKey` bound on
/// every impl.
#[derive(Debug, Clone)]
struct SpoolSetup<K> {
    dir: String,
    cfg: SpoolConfig,
    encode: fn(&K, &mut Vec<u8>),
    encode_snapshot: fn(&SnapshotImage<K>, &mut Vec<u8>),
}

impl<K> Default for StoreBuilder<K> {
    fn default() -> Self {
        StoreBuilder {
            cost: CostModel::multiversion(),
            alpha: 1.0,
            gamma0: 0.0,
            gamma1: f64::INFINITY,
            capacity: None,
            initial_width: InitialWidth::default(),
            default_policy: PolicySpec::Adaptive,
            rng: Rng::seed_from_u64(0),
            sources: Vec::new(),
            spool: None,
        }
    }
}

impl<K: Hash + Ord + Clone> StoreBuilder<K> {
    /// Start from the paper's recommended tuning: multiversion costs
    /// (`θ = 1`), `α = 1`, no thresholds, unbounded cache.
    pub fn new() -> Self {
        StoreBuilder::default()
    }

    /// Refresh cost model (determines the cost factor θ).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Adaptivity parameter α (widths move by a factor of `1 + α`).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Snapping thresholds: widths below `γ0` become exact copies, widths
    /// at or above `γ1` become uncached.
    pub fn thresholds(mut self, gamma0: f64, gamma1: f64) -> Self {
        self.gamma0 = gamma0;
        self.gamma1 = gamma1;
        self
    }

    /// Cache capacity κ (widest-first eviction); unbounded by default.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Rule for choosing starting interval widths.
    pub fn initial_width(mut self, rule: InitialWidth) -> Self {
        self.initial_width = rule;
        self
    }

    /// Policy used for keys without a per-key override.
    pub fn default_policy(mut self, spec: PolicySpec) -> Self {
        self.default_policy = spec;
        self
    }

    /// Random stream for the policies' probabilistic width adjustments
    /// (store operation is deterministic given this stream).
    pub fn rng(mut self, rng: Rng) -> Self {
        self.rng = rng;
        self
    }

    /// Register a source with the default policy.
    pub fn source(mut self, key: K, initial_value: f64) -> Self {
        self.sources.push((key, initial_value, None));
        self
    }

    /// Register a source with a per-key policy override.
    pub fn source_with_policy(mut self, key: K, initial_value: f64, spec: PolicySpec) -> Self {
        self.sources.push((key, initial_value, Some(spec)));
        self
    }

    /// Persist the store in a durable spool directory (created if
    /// missing), with default tuning: 1 MiB segments, fsync on every
    /// append. The directory is claimed for a **new** generation — an
    /// initial snapshot of the freshly built store supersedes any state a
    /// previous process left there. Use
    /// [`PrecisionStore::recover`] to resume a previous generation
    /// instead.
    pub fn with_spool(self, dir: impl Into<String>) -> Self
    where
        K: SpoolKey,
    {
        self.with_spool_config(dir, SpoolConfig::default())
    }

    /// [`with_spool`](StoreBuilder::with_spool) with explicit segment
    /// size / fsync tuning.
    pub fn with_spool_config(mut self, dir: impl Into<String>, cfg: SpoolConfig) -> Self
    where
        K: SpoolKey,
    {
        self.spool = Some(SpoolSetup {
            dir: dir.into(),
            cfg,
            encode: K::encode_key,
            encode_snapshot: spool_codec::encode_snapshot::<K>,
        });
        self
    }

    /// Assemble the store, installing every registered source's initial
    /// approximation at time 0.
    pub fn build(self) -> Result<PrecisionStore<K>, StoreError> {
        let cache = match self.capacity {
            Some(k) => Cache::new(STORE_CACHE, k)?,
            None => Cache::unbounded(STORE_CACHE),
        };
        let mut store = PrecisionStore {
            cost: self.cost,
            alpha: self.alpha,
            gamma0: self.gamma0,
            gamma1: self.gamma1,
            initial_width: self.initial_width,
            default_policy: self.default_policy,
            keys: Vec::new(),
            index: HashMap::new(),
            sources: Vec::new(),
            specs: Vec::new(),
            cache,
            rng: self.rng,
            metrics: StoreMetrics::new(),
            spool: None,
        };
        for (key, value, spec) in self.sources {
            store.insert_inner(key, value, spec, 0)?;
        }
        if let Some(setup) = self.spool {
            store.attach_spool_parts(
                Box::new(StdFsIo::new()),
                &setup.dir,
                setup.cfg,
                setup.encode,
                setup.encode_snapshot,
            )?;
        }
        Ok(store)
    }
}

/// The unified serving façade: a precision-parameterized key-value store
/// running the SIGMOD 2001 refresh protocol behind four verbs —
/// [`read`](PrecisionStore::read), [`write`](PrecisionStore::write),
/// [`aggregate`](PrecisionStore::aggregate), and
/// [`metrics`](PrecisionStore::metrics).
///
/// Keys are generic; internally they are interned to dense protocol ids so
/// the core source/cache objects stay allocation-light.
#[derive(Debug)]
pub struct PrecisionStore<K> {
    cost: CostModel,
    alpha: f64,
    gamma0: f64,
    gamma1: f64,
    initial_width: InitialWidth,
    default_policy: PolicySpec,
    /// Interned id → application key.
    keys: Vec<K>,
    /// Application key → interned id.
    index: HashMap<K, u32>,
    /// One protocol source per key, indexed by interned id.
    sources: Vec<Source>,
    /// The policy recipe each key was registered with, indexed by interned
    /// id — kept so migration can rebuild the same policy elsewhere.
    specs: Vec<PolicySpec>,
    cache: Cache,
    rng: Rng,
    metrics: StoreMetrics<K>,
    /// Durable write-ahead spool, when attached. Mutations are logged
    /// *after* they apply; reads never touch it.
    spool: Option<StoreSpool<K>>,
}

impl<K: Hash + Ord + Clone> PrecisionStore<K> {
    /// Entry point: a builder with the paper's recommended tuning.
    pub fn builder() -> StoreBuilder<K> {
        StoreBuilder::new()
    }

    fn id_of(&self, key: &K) -> Result<u32, StoreError> {
        self.index.get(key).copied().ok_or(StoreError::UnknownKey)
    }

    fn insert_inner(
        &mut self,
        key: K,
        value: f64,
        spec: Option<PolicySpec>,
        now: TimeMs,
    ) -> Result<(), StoreError> {
        if self.index.contains_key(&key) {
            return Err(StoreError::DuplicateKey);
        }
        let id = u32::try_from(self.keys.len())
            .map_err(|_| StoreError::Config("store key space exhausted (u32 ids)".into()))?;
        let spec = spec.unwrap_or(self.default_policy);
        let policy = spec.build(
            &self.cost,
            self.alpha,
            self.gamma0,
            self.gamma1,
            self.initial_width.for_value(value),
        )?;
        let mut source = Source::new(Key(id), value)?;
        let refresh = source.register(STORE_CACHE, policy, now)?;
        self.cache.apply_refresh(refresh);
        self.sources.push(source);
        self.specs.push(spec);
        self.index.insert(key.clone(), id);
        self.keys.push(key);
        if self.spool.is_some() {
            let key = self.keys[id as usize].clone();
            self.log_insert(&key, value, spec, now)?;
        }
        Ok(())
    }

    /// Register a new source after construction, with the default policy.
    pub fn insert(&mut self, key: K, value: f64, now: TimeMs) -> Result<(), StoreError> {
        self.insert_inner(key, value, None, now)
    }

    /// Register a new source after construction, with a per-key policy.
    pub fn insert_with_policy(
        &mut self,
        key: K,
        value: f64,
        spec: PolicySpec,
        now: TimeMs,
    ) -> Result<(), StoreError> {
        self.insert_inner(key, value, Some(spec), now)
    }

    /// Read `key` to the given precision.
    ///
    /// If the cached interval already satisfies the constraint, it is
    /// returned at zero message cost. Otherwise the store performs one
    /// query-initiated refresh: the exact value is fetched (cost `C_qr`),
    /// a narrower approximation is installed, and the policy shrinks its
    /// width (`W ← W/(1+α)` with probability `min{1/θ, 1}`).
    pub fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, StoreError> {
        constraint.validate()?;
        let id = self.id_of(key)?;
        // An uncached (e.g. evicted) key offers the unbounded interval; a
        // constraint loose enough to accept it is still a hit, matching
        // the aggregate planner's unconstrained behavior.
        let interval = self.cache.interval_at(Key(id), now).unwrap_or_else(Interval::unbounded);
        if constraint.satisfied_by(&interval) {
            self.metrics.record_read(key, true);
            return Ok(ReadResult { answer: Answer::Interval(interval), refreshed: false });
        }
        let response = self.sources[id as usize].serve_exact(STORE_CACHE, now, &mut self.rng)?;
        self.cache.apply_refresh(response.refresh);
        self.metrics.record_read(key, false);
        self.metrics.record_qr(key, self.cost.c_qr());
        // A refresh shrinks the policy width — durable state. Hits are
        // pure observations and are not logged.
        self.log_refresh(key, true, now)?;
        Ok(ReadResult { answer: Answer::Exact(response.value), refreshed: true })
    }

    /// Push a new exact value for `key` (the source side of the protocol).
    ///
    /// If the value escapes the cached interval, one value-initiated
    /// refresh re-centers the approximation (cost `C_vr`) and the policy
    /// grows its width (`W ← W·(1+α)` with probability `min{θ, 1}`).
    pub fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, StoreError> {
        let id = self.id_of(key)?;
        let refreshes = self.sources[id as usize].apply_update(value, now, &mut self.rng)?;
        self.metrics.record_write(key);
        let n = refreshes.len();
        for (_, refresh) in refreshes {
            self.metrics.record_vr(key, self.cost.c_vr());
            self.cache.apply_refresh(refresh);
        }
        self.log_write(key, value, now)?;
        Ok(WriteOutcome { refreshes: n })
    }

    /// Apply a batch of writes in order, resolving every key in one pass.
    ///
    /// Semantically identical to calling [`write`](PrecisionStore::write)
    /// for each `(key, value)` pair in slice order — escape detection and
    /// width adaptation see the same sequence — but the whole batch is
    /// validated up front (unknown keys, non-finite values), so a failed
    /// batch applies **no** write, matching the all-or-nothing contract of
    /// [`aggregate`](PrecisionStore::aggregate). The returned outcome sums
    /// the per-write refresh counts; tick-style workloads (a simulator
    /// updating every source once per tick) use this to push one batch per
    /// tick instead of `n` routed calls.
    pub fn write_batch(
        &mut self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<WriteOutcome, StoreError> {
        let ids: Vec<u32> = items.iter().map(|(k, _)| self.id_of(k)).collect::<Result<_, _>>()?;
        for &(_, value) in items {
            if !value.is_finite() {
                return Err(ProtocolError::NonFiniteValue(value).into());
            }
        }
        let mut total = 0;
        for (&id, (key, value)) in ids.iter().zip(items) {
            let refreshes = self.sources[id as usize].apply_update(*value, now, &mut self.rng)?;
            self.metrics.record_write(key);
            total += refreshes.len();
            for (_, refresh) in refreshes {
                self.metrics.record_vr(key, self.cost.c_vr());
                self.cache.apply_refresh(refresh);
            }
            self.log_write(key, *value, now)?;
        }
        Ok(WriteOutcome { refreshes: total })
    }

    /// Bounded aggregate over `keys`: SUM/MAX/MIN/AVG to the given
    /// precision, fetching exactly (and only) the keys the
    /// `apcache-queries` planner selects.
    pub fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<AggregateOutcome<K>, StoreError> {
        constraint.validate()?;
        let ids: Vec<u32> = keys.iter().map(|k| self.id_of(k)).collect::<Result<_, _>>()?;
        let items: Vec<ItemBound> = ids
            .iter()
            .map(|&id| {
                ItemBound::new(
                    Key(id),
                    self.cache.interval_at(Key(id), now).unwrap_or_else(Interval::unbounded),
                )
            })
            .collect();
        // Split borrows so the fetch closure can reach sources, cache, RNG,
        // and metrics while `items` stays shared.
        let sources = &mut self.sources;
        let cache = &mut self.cache;
        let rng = &mut self.rng;
        let metrics = &mut self.metrics;
        let key_names = &self.keys;
        let cost = self.cost;
        let mut protocol_error: Option<ProtocolError> = None;
        let fetch = |k: Key| -> f64 {
            match sources[k.0 as usize].serve_exact(STORE_CACHE, now, rng) {
                Ok(resp) => {
                    metrics.record_qr(&key_names[k.0 as usize], cost.c_qr());
                    cache.apply_refresh(resp.refresh);
                    resp.value
                }
                Err(e) => {
                    protocol_error = Some(e);
                    f64::NAN
                }
            }
        };
        let outcome = match constraint {
            Constraint::Absolute(delta) => {
                let pc = PrecisionConstraint::new(delta)?;
                evaluate(kind, pc, &items, fetch)
            }
            Constraint::Exact => evaluate(kind, PrecisionConstraint::exact(), &items, fetch),
            Constraint::Relative(frac) => evaluate_relative(kind, frac, &items, fetch),
        };
        if let Some(e) = protocol_error {
            return Err(e.into());
        }
        let outcome = outcome?;
        let refreshed: Vec<K> =
            outcome.refreshed.into_iter().map(|k| self.keys[k.0 as usize].clone()).collect();
        // Each planner-selected fetch shrank that key's policy width; log
        // them in fetch order so replay re-runs the same refreshes.
        for key in &refreshed {
            self.log_refresh(key, false, now)?;
        }
        Ok(AggregateOutcome { answer: outcome.answer, refreshed })
    }

    /// Widen `key`'s cached interval to at least `width`, keeping it
    /// centered — the truth-preserving degradation applied when a TTL
    /// lease on the key lapses without a source contact. Returns the new
    /// interval, or `Ok(None)` when the key is uncached or already at
    /// least that wide. The source's policy state is untouched: the next
    /// QR or VR re-installs a policy-governed approximation, so the
    /// degradation self-heals on contact.
    pub fn widen_cached(
        &mut self,
        key: &K,
        width: f64,
        now: TimeMs,
    ) -> Result<Option<Interval>, StoreError> {
        if width.is_nan() || width < 0.0 {
            return Err(StoreError::InvalidConstraint(width));
        }
        let id = self.id_of(key)?;
        let widened = self.cache.widen(Key(id), width, now);
        if widened.is_some() {
            self.log_widen(key, width, now)?;
        }
        Ok(widened)
    }

    /// Serving metrics: per-key and aggregate refresh/cost counters.
    pub fn metrics(&self) -> &StoreMetrics<K> {
        &self.metrics
    }

    /// The refresh cost model the store charges against.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the store has no sources.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether `key` has a registered source.
    pub fn contains_key(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Iterate over the registered keys in registration order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.keys.iter()
    }

    /// Number of keys currently resident in the cache (≤ capacity κ).
    pub fn cached_len(&self) -> usize {
        self.cache.len()
    }

    /// Whether `key` is currently resident in the cache.
    pub fn is_cached(&self, key: &K) -> bool {
        self.id_of(key).map(|id| self.cache.contains(Key(id))).unwrap_or(false)
    }

    /// The interval the cache currently holds for `key` at time `now`
    /// (`None` when uncached or unknown).
    pub fn cached_interval(&self, key: &K, now: TimeMs) -> Option<Interval> {
        let id = self.id_of(key).ok()?;
        self.cache.interval_at(Key(id), now)
    }

    /// The policy's internal ("original") width for `key` — the quantity
    /// the `W ← W·(1+α)` / `W ← W/(1+α)` adaptation moves.
    pub fn internal_width(&self, key: &K) -> Option<f64> {
        let id = self.id_of(key).ok()?;
        self.sources[id as usize].internal_width_for(STORE_CACHE)
    }

    /// The source-side exact value for `key` (the server's view; reading it
    /// through this accessor models no network cost).
    pub fn value(&self, key: &K) -> Option<f64> {
        let id = self.id_of(key).ok()?;
        Some(self.sources[id as usize].value())
    }

    /// Detach `key` from this store, returning its complete protocol
    /// state — value, policy recipe and adaptation words, the registered
    /// approximation, cache residency, and serving counters.
    ///
    /// Importing the result into another store ([`import_key`]) continues
    /// the key's protocol history bit-for-bit; this is the store half of
    /// live shard migration. Interned ids stay dense: the last-registered
    /// key slides into the vacated slot (its id changes, which is
    /// invisible outside the store).
    ///
    /// [`import_key`]: PrecisionStore::import_key
    pub fn export_key(&mut self, key: &K) -> Result<KeyState<K>, StoreError> {
        let id = self.id_of(key)?;
        let idx = id as usize;
        let source = &self.sources[idx];
        let source_spec = *source.spec_for(STORE_CACHE).ok_or(StoreError::UnknownKey)?;
        let policy_state = source.policy_state_for(STORE_CACHE).ok_or(StoreError::UnknownKey)?;
        let value = source.value();
        let cached = self.cache.remove(Key(id)).map(|e| (e.spec, e.internal_width));
        let metrics = self.metrics.extract_key(key);
        self.index.remove(key);
        let key = self.keys.swap_remove(idx);
        self.sources.swap_remove(idx);
        let spec = self.specs.swap_remove(idx);
        if idx < self.keys.len() {
            // The former last key now lives in the vacated slot: repoint
            // its index entry, its source's protocol key, and its cache
            // entry (removing one entry made room, so re-admission under
            // the new id never evicts).
            let moved_id = self.keys.len() as u32;
            *self.index.get_mut(&self.keys[idx]).expect("moved key is indexed") = id;
            self.sources[idx].rekey(Key(id));
            if let Some(entry) = self.cache.remove(Key(moved_id)) {
                self.cache.apply_refresh(Refresh {
                    key: Key(id),
                    spec: entry.spec,
                    internal_width: entry.internal_width,
                });
            }
        }
        Ok(KeyState { key, value, spec, policy_state, source_spec, cached, metrics })
    }

    /// Attach a key previously detached with [`export_key`] (possibly from
    /// another store with the same cost/α/γ configuration), restoring its
    /// policy state, registered approximation, cache residency, and
    /// counters.
    ///
    /// The cached entry is re-admitted through the normal capacity rules,
    /// so on a κ-bounded store it may evict a wider resident — exactly as
    /// if the key had refreshed here.
    ///
    /// [`export_key`]: PrecisionStore::export_key
    pub fn import_key(&mut self, state: KeyState<K>) -> Result<(), StoreError> {
        if self.index.contains_key(&state.key) {
            return Err(StoreError::DuplicateKey);
        }
        let id = u32::try_from(self.keys.len())
            .map_err(|_| StoreError::Config("store key space exhausted (u32 ids)".into()))?;
        let mut policy = state.spec.build(
            &self.cost,
            self.alpha,
            self.gamma0,
            self.gamma1,
            self.initial_width.for_value(state.value),
        )?;
        if !policy.restore_state(&state.policy_state) {
            return Err(StoreError::Config(
                "imported policy state does not match the key's policy spec".into(),
            ));
        }
        let mut source = Source::new(Key(id), state.value)?;
        source.register_snapshot(STORE_CACHE, policy, state.source_spec)?;
        if let Some((spec, internal_width)) = state.cached {
            self.cache.apply_refresh(Refresh { key: Key(id), spec, internal_width });
        }
        self.sources.push(source);
        self.specs.push(state.spec);
        self.index.insert(state.key.clone(), id);
        self.keys.push(state.key.clone());
        if let Some(m) = state.metrics {
            self.metrics.install_key(state.key, m);
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Durability (write-ahead spool).
    // -----------------------------------------------------------------

    fn log_write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<(), StoreError> {
        match &mut self.spool {
            Some(spool) => spool.log_write(key, value, now),
            None => Ok(()),
        }
    }

    fn log_insert(
        &mut self,
        key: &K,
        value: f64,
        spec: PolicySpec,
        now: TimeMs,
    ) -> Result<(), StoreError> {
        match &mut self.spool {
            Some(spool) => spool.log_insert(key, value, Some(&spec), now),
            None => Ok(()),
        }
    }

    fn log_widen(&mut self, key: &K, width: f64, now: TimeMs) -> Result<(), StoreError> {
        match &mut self.spool {
            Some(spool) => spool.log_widen(key, width, now),
            None => Ok(()),
        }
    }

    fn log_refresh(
        &mut self,
        key: &K,
        counted_as_read: bool,
        now: TimeMs,
    ) -> Result<(), StoreError> {
        match &mut self.spool {
            Some(spool) => spool.log_refresh(key, counted_as_read, now),
            None => Ok(()),
        }
    }

    fn attach_spool_parts(
        &mut self,
        io: Box<dyn SpoolIo>,
        dir: &str,
        cfg: SpoolConfig,
        encode: fn(&K, &mut Vec<u8>),
        encode_snapshot: fn(&SnapshotImage<K>, &mut Vec<u8>),
    ) -> Result<(), StoreError> {
        let (spool, _previous_generation) =
            StoreSpool::open(io, dir, cfg, encode, encode_snapshot)?;
        self.spool = Some(spool);
        // Claim the directory for this generation: a snapshot of the
        // current state supersedes (and deletes) whatever was there.
        self.checkpoint()
    }

    /// Whether a durable spool is attached.
    pub fn has_spool(&self) -> bool {
        self.spool.is_some()
    }

    /// The attached spool directory, if any.
    pub fn spool_dir(&self) -> Option<&str> {
        self.spool.as_ref().map(|s| s.dir())
    }

    /// Detach the spool (stop logging) and return its I/O handle. Test
    /// harnesses use this to take a fault-injecting `MemIo` back, crash
    /// it deterministically, and recover from the wreckage.
    pub fn detach_spool(&mut self) -> Option<Box<dyn SpoolIo>> {
        self.spool.take().map(|s| s.into_io())
    }

    /// Write a full-state snapshot to the spool and compact away every
    /// log segment it supersedes. A no-op `Ok` when no spool is attached.
    ///
    /// Recovery cost is proportional to the records logged since the last
    /// checkpoint, so long-running deployments should checkpoint
    /// periodically (the runtime exposes this as a fleet-wide verb).
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        if self.spool.is_none() {
            return Ok(());
        }
        let image = self.snapshot_image();
        self.spool.as_mut().expect("checked above").write_snapshot_image(&image)
    }

    /// Non-destructive full-state image: every builder parameter, the RNG
    /// stream position, and each key's protocol state in interned-id
    /// order (so recovery reassigns identical dense ids).
    fn snapshot_image(&self) -> SnapshotImage<K> {
        let capacity = match self.cache.capacity() {
            usize::MAX => None,
            k => Some(k),
        };
        let keys = (0..self.keys.len()).map(|idx| self.key_state_of(idx)).collect();
        SnapshotImage {
            cost: self.cost,
            alpha: self.alpha,
            gamma0: self.gamma0,
            gamma1: self.gamma1,
            capacity,
            initial_width: self.initial_width,
            default_policy: self.default_policy,
            rng_words: self.rng.state_words(),
            keys,
        }
    }

    /// [`KeyState`] of the key interned at `idx`, without detaching it
    /// (the non-destructive sibling of [`export_key`]).
    ///
    /// [`export_key`]: PrecisionStore::export_key
    fn key_state_of(&self, idx: usize) -> KeyState<K> {
        let source = &self.sources[idx];
        let source_spec = *source.spec_for(STORE_CACHE).expect("every interned key is registered");
        let policy_state =
            source.policy_state_for(STORE_CACHE).expect("every interned key is registered");
        let cached = self.cache.get(Key(idx as u32)).map(|e| (e.spec, e.internal_width));
        let metrics = self.metrics.for_key(&self.keys[idx]).copied();
        KeyState {
            key: self.keys[idx].clone(),
            value: source.value(),
            spec: self.specs[idx],
            policy_state,
            source_spec,
            cached,
            metrics,
        }
    }

    /// Re-apply one replayed log record through the normal verbs. The
    /// spool is detached during replay, so nothing is re-logged.
    fn replay(&mut self, mutation: Mutation<K>) -> Result<(), StoreError> {
        debug_assert!(self.spool.is_none(), "replay must run with the spool detached");
        match mutation {
            Mutation::Write { key, value, now } => {
                self.write(&key, value, now)?;
            }
            Mutation::Insert { key, value, spec, now } => {
                self.insert_inner(key, value, spec, now)?;
            }
            Mutation::Widen { key, width, now } => {
                self.widen_cached(&key, width, now)?;
            }
            Mutation::Refresh { key, counted_as_read, now } => {
                // Re-run the exact-fetch against the replayed source: the
                // value is whatever the preceding replayed writes left
                // there, so the recovered interval re-centers identically
                // and the policy applies the same width shrink.
                let id = self.id_of(&key)?;
                let response =
                    self.sources[id as usize].serve_exact(STORE_CACHE, now, &mut self.rng)?;
                self.cache.apply_refresh(response.refresh);
                if counted_as_read {
                    self.metrics.record_read(&key, false);
                }
                self.metrics.record_qr(&key, self.cost.c_qr());
            }
        }
        Ok(())
    }
}

impl<K: SpoolKey + Hash + Ord + Clone> PrecisionStore<K> {
    /// Attach a spool through a caller-supplied [`SpoolIo`] (the
    /// fault-injecting `MemIo` in tests; [`StdFsIo`] via
    /// [`StoreBuilder::with_spool`] in production). Claims `dir` for a
    /// new generation by writing an initial snapshot of the current
    /// state.
    pub fn attach_spool_io(
        &mut self,
        io: Box<dyn SpoolIo>,
        dir: &str,
        cfg: SpoolConfig,
    ) -> Result<(), StoreError> {
        self.attach_spool_parts(io, dir, cfg, K::encode_key, spool_codec::encode_snapshot::<K>)
    }

    /// Rebuild a store from the spool directory a previous process left
    /// behind: the newest durable snapshot plus every intact record
    /// logged after it. The recovered store resumes serving with its
    /// converged per-key widths — and keeps logging to the same spool.
    ///
    /// The recovered store is bit-identical — answers, escapes, widths —
    /// to the original at its last durable point: every state-changing
    /// step (writes, inserts, widens, refreshing reads and aggregate
    /// fetches) is logged and replayed in order, and the snapshot carries
    /// the RNG stream position, so even probabilistic width adaptation
    /// (`θ ≠ 1`) resumes where it left off. Only read *hit* counters can
    /// undercount, since pure hits are not logged.
    pub fn recover(dir: &str) -> Result<Self, StoreError> {
        Self::recover_with_config(dir, SpoolConfig::default())
    }

    /// [`recover`](PrecisionStore::recover) with explicit spool tuning.
    pub fn recover_with_config(dir: &str, cfg: SpoolConfig) -> Result<Self, StoreError> {
        Self::recover_with_io(Box::new(StdFsIo::new()), dir, cfg)
    }

    /// [`recover`](PrecisionStore::recover) through a caller-supplied
    /// [`SpoolIo`] (crash-simulation harnesses).
    pub fn recover_with_io(
        io: Box<dyn SpoolIo>,
        dir: &str,
        cfg: SpoolConfig,
    ) -> Result<Self, StoreError> {
        let (spool, recovery) =
            StoreSpool::open(io, dir, cfg, K::encode_key, spool_codec::encode_snapshot::<K>)?;
        let snapshot = recovery.snapshot.ok_or_else(|| {
            StoreError::Spool(format!("no snapshot in spool directory {dir}: nothing to recover"))
        })?;
        let image = spool_codec::decode_snapshot::<K>(&snapshot)?;
        let mut store = Self::from_image(image)?;
        for record in &recovery.records {
            store.replay(spool_codec::decode_mutation::<K>(record)?)?;
        }
        store.spool = Some(spool);
        Ok(store)
    }

    /// Materialize a store from a decoded snapshot image (no spool
    /// attached yet; replay follows).
    fn from_image(image: SnapshotImage<K>) -> Result<Self, StoreError> {
        let cache = match image.capacity {
            Some(k) => Cache::new(STORE_CACHE, k)?,
            None => Cache::unbounded(STORE_CACHE),
        };
        let rng = Rng::from_state(image.rng_words)
            .ok_or_else(|| StoreError::Spool("invalid RNG state in snapshot".into()))?;
        let mut store = PrecisionStore {
            cost: image.cost,
            alpha: image.alpha,
            gamma0: image.gamma0,
            gamma1: image.gamma1,
            initial_width: image.initial_width,
            default_policy: image.default_policy,
            keys: Vec::new(),
            index: HashMap::new(),
            sources: Vec::new(),
            specs: Vec::new(),
            cache,
            rng,
            metrics: StoreMetrics::new(),
            spool: None,
        };
        // Import in image order: ids are reassigned densely, so the
        // recovered store interns every key under its original id.
        for state in image.keys {
            store.import_key(state)?;
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> PrecisionStore<&'static str> {
        StoreBuilder::new()
            .initial_width(InitialWidth::Fixed(10.0))
            .source("a", 100.0)
            .source("b", 200.0)
            .build()
            .unwrap()
    }

    #[test]
    fn read_hits_when_precise_enough() {
        let mut s = store();
        let r = s.read(&"a", Constraint::Absolute(10.0), 0).unwrap();
        assert!(!r.refreshed);
        assert_eq!(r.answer.interval(), Interval::new(95.0, 105.0).unwrap());
        assert_eq!(s.metrics().qr_count(), 0);
        assert_eq!(s.metrics().for_key(&"a").unwrap().cache_hits, 1);
    }

    #[test]
    fn read_refreshes_when_too_wide() {
        let mut s = store();
        let r = s.read(&"a", Constraint::Absolute(5.0), 0).unwrap();
        assert!(r.refreshed);
        assert_eq!(r.answer, Answer::Exact(100.0));
        assert_eq!(s.metrics().qr_count(), 1);
        // θ = 1: the shrink is deterministic.
        assert_eq!(s.internal_width(&"a"), Some(5.0));
    }

    #[test]
    fn exact_and_relative_constraints() {
        let mut s = store();
        let r = s.read(&"a", Constraint::Exact, 0).unwrap();
        assert_eq!(r.answer, Answer::Exact(100.0));
        // [95, 105] certifies 10/95 ≈ 10.5 % but not 5 %.
        let r = s.read(&"b", Constraint::Relative(0.1), 0).unwrap();
        assert!(!r.refreshed);
        let r = s.read(&"b", Constraint::Relative(0.01), 0).unwrap();
        assert!(r.refreshed);
    }

    #[test]
    fn write_inside_interval_is_free() {
        let mut s = store();
        let w = s.write(&"a", 103.0, 1_000).unwrap();
        assert!(!w.escaped());
        assert_eq!(s.metrics().vr_count(), 0);
        // The cached interval is unchanged; the source value moved.
        assert_eq!(s.value(&"a"), Some(103.0));
        assert_eq!(s.cached_interval(&"a", 1_000), Some(Interval::new(95.0, 105.0).unwrap()));
    }

    #[test]
    fn write_escape_triggers_vr_and_growth() {
        let mut s = store();
        let w = s.write(&"a", 110.0, 1_000).unwrap();
        assert!(w.escaped());
        assert_eq!(s.metrics().vr_count(), 1);
        assert_eq!(s.internal_width(&"a"), Some(20.0));
        let iv = s.cached_interval(&"a", 1_000).unwrap();
        assert!(iv.contains(110.0));
    }

    #[test]
    fn aggregate_fetches_planner_selection() {
        let mut s = store();
        // Two widths of 10: SUM width 20. δ = 12 needs exactly one fetch.
        let out =
            s.aggregate(AggregateKind::Sum, &["a", "b"], Constraint::Absolute(12.0), 0).unwrap();
        assert_eq!(out.refreshed.len(), 1);
        assert!(out.answer.width() <= 12.0);
        assert!(out.answer.contains(300.0));
        assert_eq!(s.metrics().qr_count(), 1);
    }

    #[test]
    fn aggregate_relative_and_exact() {
        let mut s = store();
        let out =
            s.aggregate(AggregateKind::Sum, &["a", "b"], Constraint::Relative(0.2), 0).unwrap();
        assert!(out.refreshed.is_empty());
        let out = s.aggregate(AggregateKind::Max, &["a", "b"], Constraint::Exact, 0).unwrap();
        assert!(out.answer.is_exact());
        assert_eq!(out.answer.lo(), 200.0);
    }

    #[test]
    fn unknown_and_duplicate_keys_error() {
        let mut s = store();
        assert!(matches!(s.read(&"zzz", Constraint::Exact, 0), Err(StoreError::UnknownKey)));
        assert!(matches!(s.write(&"zzz", 0.0, 0), Err(StoreError::UnknownKey)));
        assert!(matches!(
            s.aggregate(AggregateKind::Sum, &["a", "zzz"], Constraint::Exact, 0),
            Err(StoreError::UnknownKey)
        ));
        assert!(matches!(s.insert("a", 0.0, 0), Err(StoreError::DuplicateKey)));
    }

    #[test]
    fn invalid_constraints_error() {
        let mut s = store();
        assert!(s.read(&"a", Constraint::Absolute(-1.0), 0).is_err());
        assert!(s.read(&"a", Constraint::Relative(f64::NAN), 0).is_err());
        assert!(s
            .aggregate(AggregateKind::Sum, &["a"], Constraint::Absolute(f64::NAN), 0)
            .is_err());
    }

    #[test]
    fn insert_after_build_and_capacity() {
        let mut s: PrecisionStore<u64> = StoreBuilder::new()
            .capacity(2)
            .initial_width(InitialWidth::Fixed(4.0))
            .build()
            .unwrap();
        for i in 0..5u64 {
            s.insert(i, i as f64, 0).unwrap();
        }
        assert_eq!(s.len(), 5);
        assert!(s.cached_len() <= 2);
        // An unconstrained read of an evicted key is a (useless but free)
        // hit on the unbounded interval — mirroring the aggregate
        // planner's unconstrained contract.
        let victim = (0..5u64).find(|k| !s.is_cached(k)).unwrap();
        let r = s.read(&victim, Constraint::Absolute(f64::INFINITY), 0).unwrap();
        assert!(!r.refreshed);
        assert!(r.answer.interval().is_unbounded());
        assert_eq!(s.metrics().qr_count(), 0);
        // Any finite constraint forces the refresh.
        let r = s.read(&victim, Constraint::Absolute(100.0), 0).unwrap();
        assert!(r.refreshed);
        assert!(r.answer.contains(victim as f64));
    }

    #[test]
    fn non_finite_writes_rejected() {
        let mut s = store();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(s.write(&"a", bad, 0).is_err());
        }
        // Rejected writes are not counted as applied.
        assert!(s.metrics().for_key(&"a").is_none());
        // The store stays usable, and successful writes do count.
        assert!(s.write(&"a", 1.0, 0).is_ok());
        assert_eq!(s.metrics().for_key(&"a").unwrap().writes, 1);
    }

    #[test]
    fn write_batch_matches_sequential_writes() {
        let mut batched = store();
        let mut sequential = store();
        let updates = [("a", 104.0), ("b", 250.0), ("a", 112.0)];
        let out = batched.write_batch(&updates, 1_000).unwrap();
        let mut refreshes = 0;
        for (k, v) in updates {
            refreshes += sequential.write(&k, v, 1_000).unwrap().refreshes;
        }
        assert_eq!(out.refreshes, refreshes);
        assert!(out.escaped());
        for k in ["a", "b"] {
            assert_eq!(batched.value(&k), sequential.value(&k));
            assert_eq!(batched.internal_width(&k), sequential.internal_width(&k));
            assert_eq!(batched.cached_interval(&k, 1_000), sequential.cached_interval(&k, 1_000));
        }
        assert_eq!(batched.metrics().totals(), sequential.metrics().totals());
    }

    #[test]
    fn write_batch_is_all_or_nothing() {
        let mut s = store();
        // Unknown key in the middle: nothing before it applies either.
        assert!(matches!(
            s.write_batch(&[("a", 1.0), ("zzz", 2.0)], 0),
            Err(StoreError::UnknownKey)
        ));
        // Non-finite value: likewise rejected before any write.
        assert!(s.write_batch(&[("a", 1.0), ("b", f64::NAN)], 0).is_err());
        assert!(s.metrics().for_key(&"a").is_none());
        assert_eq!(s.value(&"a"), Some(100.0));
        // An empty batch is a no-op.
        assert_eq!(s.write_batch(&[], 0).unwrap().refreshes, 0);
    }

    #[test]
    fn widen_cached_degrades_and_self_heals() {
        let mut s = store();
        assert_eq!(s.cached_interval(&"a", 0), Some(Interval::new(95.0, 105.0).unwrap()));
        // Already-narrow targets and unknown keys behave predictably.
        assert_eq!(s.widen_cached(&"a", 5.0, 0).unwrap(), None);
        assert!(matches!(s.widen_cached(&"zzz", 50.0, 0), Err(StoreError::UnknownKey)));
        assert!(s.widen_cached(&"a", f64::NAN, 0).is_err());
        assert!(s.widen_cached(&"a", -1.0, 0).is_err());
        // Widening degrades in place, truth preserved.
        let iv = s.widen_cached(&"a", 30.0, 0).unwrap().unwrap();
        assert_eq!((iv.lo(), iv.hi()), (85.0, 115.0));
        assert!(iv.contains(s.value(&"a").unwrap()));
        assert_eq!(s.cached_interval(&"a", 0), Some(iv));
        // The policy state was untouched: the next refresh self-heals to
        // a policy-governed width.
        let r = s.read(&"a", Constraint::Absolute(5.0), 1_000).unwrap();
        assert!(r.refreshed);
        assert_eq!(s.internal_width(&"a"), Some(5.0));
        assert!(s.cached_interval(&"a", 1_000).unwrap().width() <= 5.0);
    }

    #[test]
    fn request_and_reply_types_are_send() {
        // The concurrent runtime ships these across actor threads; keep
        // them Send + Sync (and 'static for owned reply payloads). The
        // store itself only needs Send — each shard actor owns its store
        // exclusively, so Sync is never required.
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        fn assert_send<T: Send + 'static>() {}
        assert_send_sync::<Constraint>();
        assert_send_sync::<ReadResult>();
        assert_send_sync::<WriteOutcome>();
        assert_send_sync::<AggregateOutcome<String>>();
        assert_send_sync::<StoreMetrics<String>>();
        assert_send_sync::<StoreError>();
        assert_send::<PrecisionStore<String>>();
    }

    #[test]
    fn export_import_continues_protocol_bit_for_bit() {
        // Reference store: never resharded.
        let mut reference = store();
        // Subject: "a" is exported mid-run and imported into a second
        // store, which then serves the same traffic.
        let mut src = store();
        let mut dst: PrecisionStore<&'static str> =
            StoreBuilder::new().initial_width(InitialWidth::Fixed(10.0)).build().unwrap();

        // Converge some state first: widths, counters, cached interval.
        for s in [&mut reference, &mut src] {
            s.write(&"a", 110.0, 1_000).unwrap(); // escape → VR, width 20
            s.read(&"a", Constraint::Absolute(5.0), 2_000).unwrap(); // QR, width 10
        }

        let state = src.export_key(&"a").unwrap();
        assert!(!src.contains_key(&"a"));
        assert!(src.contains_key(&"b"), "swap-remove keeps the other key");
        assert!(src.read(&"b", Constraint::Absolute(10.0), 2_000).is_ok());
        assert!(src.metrics().for_key(&"a").is_none());
        dst.import_key(state).unwrap();

        // Identical traffic after the move ⇒ identical protocol behavior.
        for (s, label) in [(&mut reference, "reference"), (&mut dst, "migrated")] {
            let r = s.read(&"a", Constraint::Absolute(3.0), 3_000).unwrap();
            assert!(r.refreshed, "{label}");
            let w = s.write(&"a", 140.0, 4_000).unwrap();
            assert!(w.escaped(), "{label}");
        }
        assert_eq!(reference.internal_width(&"a"), dst.internal_width(&"a"));
        assert_eq!(reference.cached_interval(&"a", 4_000), dst.cached_interval(&"a", 4_000));
        assert_eq!(reference.value(&"a"), dst.value(&"a"));
        assert_eq!(reference.metrics().for_key(&"a"), dst.metrics().for_key(&"a"));

        // Re-import under the same key is rejected.
        let dup = dst.export_key(&"a").unwrap();
        dst.import_key(dup.clone()).unwrap();
        assert!(matches!(dst.import_key(dup), Err(StoreError::DuplicateKey)));
        // Exporting an unknown key errors.
        assert!(matches!(src.export_key(&"zzz"), Err(StoreError::UnknownKey)));
    }

    #[test]
    fn export_import_preserves_divergent_cache_entry() {
        // A lapsed lease widens the cache without telling the source; both
        // sides of the divergence must survive the move.
        let mut s = store();
        s.widen_cached(&"a", 30.0, 0).unwrap().unwrap();
        let state = s.export_key(&"a").unwrap();
        assert_eq!(state.cached.as_ref().unwrap().1, 30.0, "widened eviction key");
        let mut dst: PrecisionStore<&'static str> =
            StoreBuilder::new().initial_width(InitialWidth::Fixed(10.0)).build().unwrap();
        dst.import_key(state).unwrap();
        let iv = dst.cached_interval(&"a", 0).unwrap();
        assert_eq!((iv.lo(), iv.hi()), (85.0, 115.0));
        // Source-side width is still the policy's 10 → next QR shrinks to 5.
        dst.read(&"a", Constraint::Absolute(5.0), 1_000).unwrap();
        assert_eq!(dst.internal_width(&"a"), Some(5.0));
    }

    #[test]
    fn generic_string_keys_work() {
        let mut s: PrecisionStore<String> =
            StoreBuilder::new().source("temp/室内".to_string(), 21.5).build().unwrap();
        let r = s.read(&"temp/室内".to_string(), Constraint::Exact, 0).unwrap();
        assert_eq!(r.answer, Answer::Exact(21.5));
    }

    #[test]
    fn spool_crash_recovery_is_bit_identical() {
        use apcache_spool::{MemIo, SpoolConfig};

        let build = || -> PrecisionStore<String> {
            StoreBuilder::new()
                .initial_width(InitialWidth::Fixed(10.0))
                .source("a".to_string(), 100.0)
                .source("b".to_string(), 200.0)
                .build()
                .unwrap()
        };
        let mut reference = build();
        let mut subject = build();
        subject.attach_spool_io(Box::new(MemIo::new()), "spool", SpoolConfig::default()).unwrap();

        // Identical mixed traffic on both; the subject logs as it goes.
        let a = "a".to_string();
        let b = "b".to_string();
        for s in [&mut reference, &mut subject] {
            for t in 1..60u64 {
                let v = 100.0 + (t as f64).sin() * 40.0;
                s.write(&a, v, t * 100).unwrap();
                s.write(&b, 300.0 - v, t * 100).unwrap();
                if t % 5 == 0 {
                    s.read(&a, Constraint::Absolute(2.0), t * 100).unwrap();
                }
                if t % 7 == 0 {
                    s.aggregate(
                        AggregateKind::Sum,
                        &[a.clone(), b.clone()],
                        Constraint::Absolute(10.0),
                        t * 100,
                    )
                    .unwrap();
                }
                if t == 30 {
                    s.insert("late".to_string(), v, t * 100).unwrap();
                }
                if t == 40 {
                    s.widen_cached(&b, 500.0, t * 100).unwrap();
                }
            }
        }

        // Crash: drop the live store, keeping only what was made durable
        // (FsyncPolicy::Always ⇒ every applied mutation).
        let mut io = subject.detach_spool().unwrap();
        io.as_any_mut().downcast_mut::<MemIo>().unwrap().crash(0);
        let mut recovered =
            PrecisionStore::<String>::recover_with_io(io, "spool", SpoolConfig::default()).unwrap();
        assert!(recovered.has_spool());

        for k in [&a, &b, &"late".to_string()] {
            assert_eq!(reference.value(k), recovered.value(k), "{k}");
            assert_eq!(reference.internal_width(k), recovered.internal_width(k), "{k}");
            assert_eq!(
                reference.cached_interval(k, 6_000),
                recovered.cached_interval(k, 6_000),
                "{k}"
            );
            assert_eq!(reference.metrics().for_key(k), recovered.metrics().for_key(k), "{k}");
        }

        // And it keeps serving — and logging — identically afterwards.
        for s in [&mut reference, &mut recovered] {
            s.write(&a, 180.0, 7_000).unwrap();
            s.read(&a, Constraint::Absolute(1.0), 8_000).unwrap();
        }
        assert_eq!(reference.internal_width(&a), recovered.internal_width(&a));
        assert_eq!(reference.cached_interval(&a, 8_000), recovered.cached_interval(&a, 8_000));
    }

    #[test]
    fn deterministic_given_rng_stream() {
        let run = |seed: u64| {
            let mut s: PrecisionStore<u32> = StoreBuilder::new()
                .rng(Rng::seed_from_u64(seed))
                .initial_width(InitialWidth::Fixed(8.0))
                .cost(CostModel::two_phase_locking())
                .source(0, 0.0)
                .build()
                .unwrap();
            for t in 1..200u64 {
                s.write(&0, (t as f64).sin() * 20.0, t * 1_000).unwrap();
                if t % 3 == 0 {
                    s.read(&0, Constraint::Absolute(5.0), t * 1_000).unwrap();
                }
            }
            (s.metrics().vr_count(), s.metrics().qr_count(), s.internal_width(&0).unwrap())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
