//! Store error type.

use std::fmt;

use apcache_core::error::{ParamError, ProtocolError};
use apcache_queries::QueryError;

/// Errors raised while building or operating a
/// [`PrecisionStore`](crate::PrecisionStore).
#[derive(Debug)]
pub enum StoreError {
    /// The requested key has no registered source. Keys must be installed
    /// at build time or via [`PrecisionStore::insert`](crate::PrecisionStore::insert)
    /// before they can be read or written.
    UnknownKey,
    /// The key is already registered (duplicate `source` or `insert`).
    DuplicateKey,
    /// A precision constraint parameter was negative or NaN.
    InvalidConstraint(f64),
    /// Invalid store configuration.
    Config(String),
    /// Parameter validation failure from the core crate.
    Param(ParamError),
    /// Refresh protocol misuse (source/cache layer).
    Protocol(ProtocolError),
    /// Aggregate query engine failure.
    Query(QueryError),
    /// Durable spool failure: an I/O error, a corrupt log, or a malformed
    /// record/snapshot during recovery.
    Spool(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownKey => write!(f, "no source registered for the requested key"),
            StoreError::DuplicateKey => write!(f, "a source is already registered for this key"),
            StoreError::InvalidConstraint(v) => {
                write!(f, "precision constraint must be >= 0 (NaN rejected), got {v}")
            }
            StoreError::Config(m) => write!(f, "invalid store configuration: {m}"),
            StoreError::Param(e) => write!(f, "parameter error: {e}"),
            StoreError::Protocol(e) => write!(f, "protocol error: {e}"),
            StoreError::Query(e) => write!(f, "query error: {e}"),
            StoreError::Spool(m) => write!(f, "spool error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Param(e) => Some(e),
            StoreError::Protocol(e) => Some(e),
            StoreError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamError> for StoreError {
    fn from(e: ParamError) -> Self {
        StoreError::Param(e)
    }
}

impl From<ProtocolError> for StoreError {
    fn from(e: ProtocolError) -> Self {
        StoreError::Protocol(e)
    }
}

impl From<QueryError> for StoreError {
    fn from(e: QueryError) -> Self {
        StoreError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_sources() {
        assert!(StoreError::UnknownKey.to_string().contains("no source"));
        assert!(StoreError::InvalidConstraint(-1.0).to_string().contains("-1"));
        let e: StoreError = ParamError::InvalidAlpha(-1.0).into();
        assert!(e.source().is_some());
        let e: StoreError = QueryError::EmptyInput.into();
        assert!(e.to_string().contains("query"));
        assert!(StoreError::Spool("torn".into()).to_string().contains("torn"));
        assert!(StoreError::Config("bad".into()).to_string().contains("bad"));
    }
}
