//! Read-side precision constraints.

use apcache_core::Interval;
use apcache_queries::satisfies_relative;

use crate::error::StoreError;

/// How precise an answer the caller needs.
///
/// The store treats a constraint as a *ceiling*, not a target: answers may
/// be arbitrarily more precise than requested (the engine privately over-
/// and under-shoots precision so refresh costs amortize across calls).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constraint {
    /// The answer interval may be at most `δ` wide (the paper's absolute
    /// precision constraint; `δ = ∞` accepts any cached bound).
    Absolute(f64),
    /// The answer interval must certify a relative error of at most `ρ`
    /// (e.g. `0.01` = within 1 %): `width ≤ ρ·min|x|` over `x` in the
    /// interval. Intervals straddling zero certify nothing and force an
    /// exact fetch — the classical degeneracy of relative bounds.
    Relative(f64),
    /// The exact value is required (`δ = 0`).
    Exact,
}

impl Constraint {
    /// Validate the constraint parameter.
    pub fn validate(&self) -> Result<(), StoreError> {
        match *self {
            Constraint::Absolute(delta) => {
                if delta.is_nan() || delta < 0.0 {
                    return Err(StoreError::InvalidConstraint(delta));
                }
            }
            Constraint::Relative(frac) => {
                if !(frac.is_finite() && frac >= 0.0) {
                    return Err(StoreError::InvalidConstraint(frac));
                }
            }
            Constraint::Exact => {}
        }
        Ok(())
    }

    /// Whether a cached interval already satisfies this constraint (a
    /// cache hit — no refresh needed).
    pub fn satisfied_by(&self, interval: &Interval) -> bool {
        match *self {
            Constraint::Absolute(delta) => interval.width() <= delta,
            Constraint::Relative(frac) => satisfies_relative(interval, frac),
            Constraint::Exact => interval.is_exact(),
        }
    }
}

impl std::fmt::Display for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Constraint::Absolute(delta) => write!(f, "±{}", delta / 2.0),
            Constraint::Relative(frac) => write!(f, "within {}%", frac * 100.0),
            Constraint::Exact => write!(f, "exact"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Constraint::Absolute(0.0).validate().is_ok());
        assert!(Constraint::Absolute(f64::INFINITY).validate().is_ok());
        assert!(Constraint::Absolute(-1.0).validate().is_err());
        assert!(Constraint::Absolute(f64::NAN).validate().is_err());
        assert!(Constraint::Relative(0.05).validate().is_ok());
        assert!(Constraint::Relative(-0.1).validate().is_err());
        assert!(Constraint::Relative(f64::INFINITY).validate().is_err());
        assert!(Constraint::Exact.validate().is_ok());
    }

    #[test]
    fn absolute_satisfaction() {
        let iv = Interval::new(10.0, 14.0).unwrap();
        assert!(Constraint::Absolute(4.0).satisfied_by(&iv));
        assert!(!Constraint::Absolute(3.9).satisfied_by(&iv));
        assert!(!Constraint::Exact.satisfied_by(&iv));
        assert!(Constraint::Exact.satisfied_by(&Interval::point(3.0).unwrap()));
    }

    #[test]
    fn relative_satisfaction() {
        // [100, 104]: width 4, magnitude 100 → 4 %.
        let iv = Interval::new(100.0, 104.0).unwrap();
        assert!(Constraint::Relative(0.05).satisfied_by(&iv));
        assert!(!Constraint::Relative(0.01).satisfied_by(&iv));
        // Straddling zero certifies nothing (except exactness).
        let iv = Interval::new(-1.0, 1.0).unwrap();
        assert!(!Constraint::Relative(10.0).satisfied_by(&iv));
        assert!(Constraint::Relative(0.0).satisfied_by(&Interval::point(5.0).unwrap()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Constraint::Absolute(10.0).to_string(), "±5");
        assert_eq!(Constraint::Relative(0.05).to_string(), "within 5%");
        assert_eq!(Constraint::Exact.to_string(), "exact");
    }
}
