//! Portable per-key protocol state for shard migration.
//!
//! Elastic resharding moves keys between stores. A key is more than its
//! exact value: the refresh protocol has spent the whole run *converging*
//! the key's adaptive width (the paper's algorithm needs O(log) refreshes
//! to re-find a width it already had), and the cache holds the
//! approximation currently promised to readers. [`KeyState`] captures all
//! of it so [`PrecisionStore::export_key`] →
//! [`PrecisionStore::import_key`] is bit-for-bit equivalent to the key
//! never having moved.
//!
//! [`PrecisionStore::export_key`]: crate::PrecisionStore::export_key
//! [`PrecisionStore::import_key`]: crate::PrecisionStore::import_key

use apcache_core::policy::ApproxSpec;

use crate::metrics::KeyMetrics;
use crate::policy::PolicySpec;

/// Everything the refresh protocol knows about one key, detached from any
/// store: the exact value, the policy recipe and its adaptation-state
/// words, the approximation registered at the source, the cache residency
/// (if any), and the serving counters.
///
/// `source_spec` and `cached` are carried separately: a lapsed TTL lease
/// widens the *cached* interval without telling the source, so the two
/// can legitimately disagree and both sides must survive the move.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyState<K> {
    /// The application key.
    pub key: K,
    /// Exact value at the source.
    pub value: f64,
    /// The policy recipe the key was registered with.
    pub spec: PolicySpec,
    /// The policy's adaptation-state words
    /// (`PrecisionPolicy::export_state`).
    pub policy_state: Vec<f64>,
    /// The approximation the source currently has registered.
    pub source_spec: ApproxSpec,
    /// Cache residency: the cached approximation and its internal
    /// (eviction-ordering) width, or `None` when evicted/uncached.
    pub cached: Option<(ApproxSpec, f64)>,
    /// Per-key serving counters, moved verbatim.
    pub metrics: Option<KeyMetrics>,
}
