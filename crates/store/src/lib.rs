//! # apcache-store
//!
//! The **serving façade** of the workspace: a precision-parameterized
//! key-value store that hides the SIGMOD 2001 refresh protocol — sources,
//! interval caches, and adaptive precision policies — behind four verbs:
//!
//! * [`PrecisionStore::read`] — *"give me `key` to within ±δ"*. Answered
//!   from the cached interval when it is precise enough (free), otherwise
//!   by a **query-initiated refresh** that fetches the exact value and
//!   shrinks the interval width (`W ← W/(1+α)` with probability
//!   `min{1/θ, 1}`).
//! * [`PrecisionStore::write`] — a new exact value arrives at the source.
//!   If it escapes the cached interval, a **value-initiated refresh**
//!   re-centers the interval and grows its width (`W ← W·(1+α)` with
//!   probability `min{θ, 1}`).
//! * [`PrecisionStore::aggregate`] — bounded SUM/MAX/MIN/AVG over a key
//!   set, delegating refresh-set selection to the `apcache-queries`
//!   planner so only the cheapest-necessary keys are fetched.
//! * [`PrecisionStore::metrics`] — per-key and aggregate refresh/cost
//!   counters, the same vocabulary as the simulator's `Stats`.
//!
//! Keys are generic (`K: Hash + Ord + Clone`), precision policies are
//! pluggable per key through the [`PolicySpec`] constructor enum, and the
//! engine deliberately over/under-shoots the requested precision between
//! calls so that refresh costs amortize — callers state *what* precision
//! they need, never *how* to maintain it.
//!
//! ## Quick example
//!
//! ```
//! use apcache_store::{Constraint, StoreBuilder};
//!
//! let mut store = StoreBuilder::new()
//!     .source("cpu_load", 40.0)
//!     .source("mem_used", 900.0)
//!     .build()
//!     .unwrap();
//!
//! // Precise enough from cache — or refreshed exactly, transparently.
//! let result = store.read(&"cpu_load", Constraint::Absolute(5.0), 0).unwrap();
//! assert!(result.answer.width() <= 5.0);
//! assert!(result.answer.contains(40.0));
//!
//! // New measurements stream in; escapes refresh the cache automatically.
//! store.write(&"cpu_load", 55.0, 1_000).unwrap();
//! let after = store.read(&"cpu_load", Constraint::Absolute(5.0), 1_000).unwrap();
//! assert!(after.answer.contains(55.0));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod constraint;
pub mod error;
pub mod metrics;
pub mod migrate;
pub mod policy;
pub mod spool;
pub mod store;

pub use constraint::Constraint;
pub use error::StoreError;
pub use metrics::{KeyMetrics, StoreMetrics};
pub use migrate::KeyState;
pub use policy::{InitialWidth, PolicySpec};
pub use spool::{SpoolKey, SpoolReader};
// The spool vocabulary that appears in this crate's public durability
// API, re-exported so downstream layers need no direct spool dependency.
pub use apcache_spool::{FsyncPolicy, MemIo, SpoolConfig, SpoolError, SpoolIo, StdFsIo};
pub use store::{AggregateOutcome, Answer, PrecisionStore, ReadResult, StoreBuilder, WriteOutcome};
