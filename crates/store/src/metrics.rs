//! Per-key and aggregate serving metrics.
//!
//! The counter vocabulary matches the simulator's `Stats` (value-initiated
//! vs. query-initiated refreshes, message costs), so numbers read off a
//! production store line up with numbers produced by the experiment
//! harnesses.

use std::collections::BTreeMap;

/// Refresh and cost counters for one key (or, in
/// [`StoreMetrics::totals`], the whole store).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KeyMetrics {
    /// Point reads served (cache hits + refreshing reads).
    pub reads: u64,
    /// Reads answered from the cached interval alone (no message cost).
    pub cache_hits: u64,
    /// Writes applied at the source.
    pub writes: u64,
    /// Value-initiated refreshes (the value escaped its interval).
    pub vr_count: u64,
    /// Query-initiated refreshes (a read/aggregate fetched the exact value).
    pub qr_count: u64,
    /// Accumulated cost of value-initiated refreshes (`Σ C_vr`).
    pub vr_cost: f64,
    /// Accumulated cost of query-initiated refreshes (`Σ C_qr`).
    pub qr_cost: f64,
}

impl KeyMetrics {
    /// Total message cost charged so far (`Σ C_vr + Σ C_qr` — the paper's
    /// objective accumulates this per unit time as `Ω`).
    pub fn total_cost(&self) -> f64 {
        self.vr_cost + self.qr_cost
    }

    /// Fraction of point reads served without any message, in `[0, 1]`
    /// (`1.0` when no reads have happened yet).
    pub fn hit_rate(&self) -> f64 {
        if self.reads == 0 {
            1.0
        } else {
            self.cache_hits as f64 / self.reads as f64
        }
    }

    fn merge_read(&mut self, hit: bool) {
        self.reads += 1;
        if hit {
            self.cache_hits += 1;
        }
    }

    fn merge_vr(&mut self, cost: f64) {
        self.vr_count += 1;
        self.vr_cost += cost;
    }

    fn merge_qr(&mut self, cost: f64) {
        self.qr_count += 1;
        self.qr_cost += cost;
    }
}

/// Serving metrics for a [`PrecisionStore`](crate::PrecisionStore):
/// aggregate totals plus a per-key breakdown.
#[derive(Debug, Clone)]
pub struct StoreMetrics<K> {
    totals: KeyMetrics,
    per_key: BTreeMap<K, KeyMetrics>,
}

impl<K: Ord + Clone> StoreMetrics<K> {
    pub(crate) fn new() -> Self {
        StoreMetrics { totals: KeyMetrics::default(), per_key: BTreeMap::new() }
    }

    /// Store-wide counter totals.
    pub fn totals(&self) -> &KeyMetrics {
        &self.totals
    }

    /// Counters for one key; `None` if the key has never been touched.
    pub fn for_key(&self, key: &K) -> Option<&KeyMetrics> {
        self.per_key.get(key)
    }

    /// Iterate over `(key, counters)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &KeyMetrics)> {
        self.per_key.iter()
    }

    /// Total value-initiated refreshes across all keys.
    pub fn vr_count(&self) -> u64 {
        self.totals.vr_count
    }

    /// Total query-initiated refreshes across all keys.
    pub fn qr_count(&self) -> u64 {
        self.totals.qr_count
    }

    /// Total message cost across all keys.
    pub fn total_cost(&self) -> f64 {
        self.totals.total_cost()
    }

    pub(crate) fn record_read(&mut self, key: &K, hit: bool) {
        self.totals.merge_read(hit);
        self.per_key.entry(key.clone()).or_default().merge_read(hit);
    }

    pub(crate) fn record_write(&mut self, key: &K) {
        self.totals.writes += 1;
        self.per_key.entry(key.clone()).or_default().writes += 1;
    }

    pub(crate) fn record_vr(&mut self, key: &K, cost: f64) {
        self.totals.merge_vr(cost);
        self.per_key.entry(key.clone()).or_default().merge_vr(cost);
    }

    pub(crate) fn record_qr(&mut self, key: &K, cost: f64) {
        self.totals.merge_qr(cost);
        self.per_key.entry(key.clone()).or_default().merge_qr(cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_track_per_key() {
        let mut m: StoreMetrics<&str> = StoreMetrics::new();
        m.record_read(&"a", true);
        m.record_read(&"a", false);
        m.record_qr(&"a", 2.0);
        m.record_write(&"b");
        m.record_vr(&"b", 1.0);
        assert_eq!(m.totals().reads, 2);
        assert_eq!(m.totals().cache_hits, 1);
        assert_eq!(m.qr_count(), 1);
        assert_eq!(m.vr_count(), 1);
        assert_eq!(m.total_cost(), 3.0);
        let a = m.for_key(&"a").unwrap();
        assert_eq!((a.reads, a.qr_count), (2, 1));
        assert_eq!(a.hit_rate(), 0.5);
        let b = m.for_key(&"b").unwrap();
        assert_eq!((b.writes, b.vr_count), (1, 1));
        assert!(m.for_key(&"c").is_none());
        assert_eq!(m.iter().count(), 2);
    }

    #[test]
    fn empty_hit_rate_is_one() {
        assert_eq!(KeyMetrics::default().hit_rate(), 1.0);
        assert_eq!(KeyMetrics::default().total_cost(), 0.0);
    }
}
