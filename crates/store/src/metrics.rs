//! Per-key and aggregate serving metrics.
//!
//! The counter vocabulary matches the simulator's `Stats` (value-initiated
//! vs. query-initiated refreshes, message costs), so numbers read off a
//! production store line up with numbers produced by the experiment
//! harnesses.

use std::collections::BTreeMap;

use apcache_telemetry::{Exposition, MetricKind};

/// Refresh and cost counters for one key (or, in
/// [`StoreMetrics::totals`], the whole store).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KeyMetrics {
    /// Point reads served (cache hits + refreshing reads).
    pub reads: u64,
    /// Reads answered from the cached interval alone (no message cost).
    pub cache_hits: u64,
    /// Writes applied at the source.
    pub writes: u64,
    /// Value-initiated refreshes (the value escaped its interval).
    pub vr_count: u64,
    /// Query-initiated refreshes (a read/aggregate fetched the exact value).
    pub qr_count: u64,
    /// Accumulated cost of value-initiated refreshes (`Σ C_vr`).
    pub vr_cost: f64,
    /// Accumulated cost of query-initiated refreshes (`Σ C_qr`).
    pub qr_cost: f64,
}

impl KeyMetrics {
    /// Total message cost charged so far (`Σ C_vr + Σ C_qr` — the paper's
    /// objective accumulates this per unit time as `Ω`).
    pub fn total_cost(&self) -> f64 {
        self.vr_cost + self.qr_cost
    }

    /// Fraction of point reads served without any message, in `[0, 1]`.
    ///
    /// **Zero-reads convention:** with `reads == 0` this returns `1.0`,
    /// not `NaN` — an untouched key has never cost a message, so it is
    /// treated as "all hits". Consumers that need the raw edge (e.g. to
    /// distinguish "perfect" from "idle") should look at `reads`
    /// directly. The Prometheus exposition deliberately does **not**
    /// export this ratio: it renders the two raw counters
    /// (`apcache_reads_total`, `apcache_cache_hits_total`) so scrapers
    /// can `rate()` them over any window instead of averaging a
    /// precomputed — and, on idle keys, conventionally `1.0` — ratio.
    pub fn hit_rate(&self) -> f64 {
        if self.reads == 0 {
            1.0
        } else {
            self.cache_hits as f64 / self.reads as f64
        }
    }

    /// Add `other`'s counters into `self` (every field is additive).
    ///
    /// Used to roll several stores' metrics up into one view — e.g. the
    /// per-shard → deployment-wide rollup of a sharded deployment.
    pub fn merge(&mut self, other: &KeyMetrics) {
        self.reads += other.reads;
        self.cache_hits += other.cache_hits;
        self.writes += other.writes;
        self.vr_count += other.vr_count;
        self.qr_count += other.qr_count;
        self.vr_cost += other.vr_cost;
        self.qr_cost += other.qr_cost;
    }

    /// Subtract `other`'s counters from `self` (the inverse of
    /// [`merge`](KeyMetrics::merge), used when a key's counters move to
    /// another store during shard migration).
    pub fn subtract(&mut self, other: &KeyMetrics) {
        self.reads -= other.reads;
        self.cache_hits -= other.cache_hits;
        self.writes -= other.writes;
        self.vr_count -= other.vr_count;
        self.qr_count -= other.qr_count;
        self.vr_cost -= other.vr_cost;
        self.qr_cost -= other.qr_cost;
    }

    fn merge_read(&mut self, hit: bool) {
        self.reads += 1;
        if hit {
            self.cache_hits += 1;
        }
    }

    fn merge_vr(&mut self, cost: f64) {
        self.vr_count += 1;
        self.vr_cost += cost;
    }

    fn merge_qr(&mut self, cost: f64) {
        self.qr_count += 1;
        self.qr_cost += cost;
    }
}

/// Serving metrics for a [`PrecisionStore`](crate::PrecisionStore):
/// aggregate totals plus a per-key breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMetrics<K> {
    totals: KeyMetrics,
    per_key: BTreeMap<K, KeyMetrics>,
}

impl<K: Ord + Clone> Default for StoreMetrics<K> {
    fn default() -> Self {
        StoreMetrics::new()
    }
}

impl<K: Ord + Clone> StoreMetrics<K> {
    /// An empty metrics view (all counters zero, no keys). Useful as the
    /// identity element when rolling several stores' metrics up with
    /// [`StoreMetrics::merge`].
    pub fn new() -> Self {
        StoreMetrics { totals: KeyMetrics::default(), per_key: BTreeMap::new() }
    }

    /// Reassemble a metrics view from an explicit totals line plus per-key
    /// entries — the decode half of a serialized snapshot (the wire layer
    /// ships metrics as `totals` + `(key, counters)` pairs).
    ///
    /// The totals are taken as given rather than re-summed from the
    /// entries: the cost counters are `f64` accumulators, so re-adding
    /// them in key order could differ in the low bits from the original
    /// accumulation order and a round-tripped snapshot would no longer be
    /// bit-identical to its source.
    pub fn from_parts(
        totals: KeyMetrics,
        per_key: impl IntoIterator<Item = (K, KeyMetrics)>,
    ) -> Self {
        StoreMetrics { totals, per_key: per_key.into_iter().collect() }
    }

    /// Add `other`'s counters into `self`: totals and every per-key entry
    /// are summed field-wise (keys present in either side appear in the
    /// result).
    ///
    /// This is the rollup path for multi-store deployments — a sharded
    /// store merges its shards' metrics into one deployment-wide view, and
    /// a cache hierarchy can merge per-level stores the same way.
    pub fn merge(&mut self, other: &StoreMetrics<K>) {
        self.totals.merge(&other.totals);
        for (key, m) in other.per_key.iter() {
            self.per_key.entry(key.clone()).or_default().merge(m);
        }
    }

    /// Store-wide counter totals.
    pub fn totals(&self) -> &KeyMetrics {
        &self.totals
    }

    /// Counters for one key; `None` if the key has never been touched.
    pub fn for_key(&self, key: &K) -> Option<&KeyMetrics> {
        self.per_key.get(key)
    }

    /// Iterate over `(key, counters)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &KeyMetrics)> {
        self.per_key.iter()
    }

    /// Total value-initiated refreshes across all keys.
    pub fn vr_count(&self) -> u64 {
        self.totals.vr_count
    }

    /// Total query-initiated refreshes across all keys.
    pub fn qr_count(&self) -> u64 {
        self.totals.qr_count
    }

    /// Total message cost across all keys.
    pub fn total_cost(&self) -> f64 {
        self.totals.total_cost()
    }

    /// Remove `key`'s counters, subtracting them from the totals — the
    /// export half of moving a key to another store. The per-key entry is
    /// moved verbatim, so a later [`install_key`](StoreMetrics::install_key)
    /// on the receiving store preserves the entry bit-for-bit.
    pub fn extract_key(&mut self, key: &K) -> Option<KeyMetrics> {
        let m = self.per_key.remove(key)?;
        self.totals.subtract(&m);
        Some(m)
    }

    /// Install counters for `key`, adding them into the totals — the
    /// import half of moving a key from another store. Merges field-wise
    /// if the key already has an entry here.
    pub fn install_key(&mut self, key: K, m: KeyMetrics) {
        self.totals.merge(&m);
        self.per_key.entry(key).or_default().merge(&m);
    }

    /// Render the store's counter totals as Prometheus-style exposition
    /// families. This is the single source of the store-level series —
    /// the runtime's scrape endpoint and the in-process store façades
    /// call the same code, so wherever the counters are read they agree
    /// bit-for-bit with this `StoreMetrics` view (the cost totals are
    /// `f64` accumulators rendered with round-trip formatting).
    ///
    /// Series ↔ paper vocabulary: `apcache_refresh_cost_total` is the
    /// accumulated message cost whose per-unit-time rate is the paper's
    /// objective Ω; `apcache_refreshes_total{kind="vr"|"qr"}` splits
    /// value-initiated from query-initiated refreshes. Hit rate is
    /// exported as the two raw counters (see
    /// [`KeyMetrics::hit_rate`] for the ratio's zero-reads convention).
    pub fn render_into(&self, out: &mut Exposition) {
        let t = &self.totals;
        out.family(
            "apcache_reads_total",
            MetricKind::Counter,
            "Point reads served (cache hits + refreshing reads).",
        );
        out.sample("apcache_reads_total", &[], t.reads as f64);
        out.family(
            "apcache_cache_hits_total",
            MetricKind::Counter,
            "Reads answered from the cached interval alone (no message cost).",
        );
        out.sample("apcache_cache_hits_total", &[], t.cache_hits as f64);
        out.family("apcache_writes_total", MetricKind::Counter, "Writes applied at the sources.");
        out.sample("apcache_writes_total", &[], t.writes as f64);
        out.family(
            "apcache_refreshes_total",
            MetricKind::Counter,
            "Cache refreshes by kind: value-initiated (vr) or query-initiated (qr).",
        );
        out.sample("apcache_refreshes_total", &[("kind", "qr")], t.qr_count as f64);
        out.sample("apcache_refreshes_total", &[("kind", "vr")], t.vr_count as f64);
        out.family(
            "apcache_refresh_cost_total",
            MetricKind::Counter,
            "Accumulated refresh message cost by kind (the paper's objective rate Omega).",
        );
        out.sample("apcache_refresh_cost_total", &[("kind", "qr")], t.qr_cost);
        out.sample("apcache_refresh_cost_total", &[("kind", "vr")], t.vr_cost);
    }

    pub(crate) fn record_read(&mut self, key: &K, hit: bool) {
        self.totals.merge_read(hit);
        self.per_key.entry(key.clone()).or_default().merge_read(hit);
    }

    pub(crate) fn record_write(&mut self, key: &K) {
        self.totals.writes += 1;
        self.per_key.entry(key.clone()).or_default().writes += 1;
    }

    pub(crate) fn record_vr(&mut self, key: &K, cost: f64) {
        self.totals.merge_vr(cost);
        self.per_key.entry(key.clone()).or_default().merge_vr(cost);
    }

    pub(crate) fn record_qr(&mut self, key: &K, cost: f64) {
        self.totals.merge_qr(cost);
        self.per_key.entry(key.clone()).or_default().merge_qr(cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_track_per_key() {
        let mut m: StoreMetrics<&str> = StoreMetrics::new();
        m.record_read(&"a", true);
        m.record_read(&"a", false);
        m.record_qr(&"a", 2.0);
        m.record_write(&"b");
        m.record_vr(&"b", 1.0);
        assert_eq!(m.totals().reads, 2);
        assert_eq!(m.totals().cache_hits, 1);
        assert_eq!(m.qr_count(), 1);
        assert_eq!(m.vr_count(), 1);
        assert_eq!(m.total_cost(), 3.0);
        let a = m.for_key(&"a").unwrap();
        assert_eq!((a.reads, a.qr_count), (2, 1));
        assert_eq!(a.hit_rate(), 0.5);
        let b = m.for_key(&"b").unwrap();
        assert_eq!((b.writes, b.vr_count), (1, 1));
        assert!(m.for_key(&"c").is_none());
        assert_eq!(m.iter().count(), 2);
    }

    #[test]
    fn empty_hit_rate_is_one() {
        assert_eq!(KeyMetrics::default().hit_rate(), 1.0);
        assert_eq!(KeyMetrics::default().total_cost(), 0.0);
    }

    #[test]
    fn key_metrics_merge_is_field_wise_addition() {
        let a = KeyMetrics {
            reads: 3,
            cache_hits: 2,
            writes: 5,
            vr_count: 1,
            qr_count: 1,
            vr_cost: 2.0,
            qr_cost: 1.0,
        };
        let b = KeyMetrics {
            reads: 7,
            cache_hits: 4,
            writes: 1,
            vr_count: 2,
            qr_count: 3,
            vr_cost: 4.0,
            qr_cost: 6.0,
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.reads, 10);
        assert_eq!(merged.cache_hits, 6);
        assert_eq!(merged.writes, 6);
        assert_eq!(merged.vr_count, 3);
        assert_eq!(merged.qr_count, 4);
        assert_eq!(merged.total_cost(), a.total_cost() + b.total_cost());
        // Identity: merging the zero element changes nothing.
        let before = merged;
        merged.merge(&KeyMetrics::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn store_metrics_merge_sums_totals_and_unions_keys() {
        let mut left: StoreMetrics<&str> = StoreMetrics::new();
        left.record_read(&"shared", true);
        left.record_qr(&"shared", 2.0);
        left.record_write(&"only_left");
        let mut right: StoreMetrics<&str> = StoreMetrics::new();
        right.record_read(&"shared", false);
        right.record_vr(&"only_right", 1.5);
        right.record_write(&"only_right");

        left.merge(&right);
        // Totals are additive across the two sides.
        assert_eq!(left.totals().reads, 2);
        assert_eq!(left.totals().cache_hits, 1);
        assert_eq!(left.totals().writes, 2);
        assert_eq!(left.total_cost(), 3.5);
        // Shared keys sum; one-sided keys appear unchanged.
        let shared = left.for_key(&"shared").unwrap();
        assert_eq!((shared.reads, shared.cache_hits, shared.qr_count), (2, 1, 1));
        assert_eq!(left.for_key(&"only_left").unwrap().writes, 1);
        let r = left.for_key(&"only_right").unwrap();
        assert_eq!((r.writes, r.vr_count), (1, 1));
        assert_eq!(left.iter().count(), 3);
        // The per-key sums must re-add to the merged totals.
        let mut rollup = KeyMetrics::default();
        for (_, m) in left.iter() {
            rollup.merge(m);
        }
        assert_eq!(&rollup, left.totals());
    }

    #[test]
    fn from_parts_round_trips_a_snapshot() {
        let mut m: StoreMetrics<&str> = StoreMetrics::new();
        m.record_read(&"a", true);
        m.record_qr(&"a", 0.1);
        m.record_qr(&"b", 0.2);
        m.record_write(&"b");
        let rebuilt = StoreMetrics::from_parts(
            *m.totals(),
            m.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
        );
        assert_eq!(rebuilt, m);
        // Totals are trusted, not re-derived.
        let skewed: StoreMetrics<&str> =
            StoreMetrics::from_parts(KeyMetrics { reads: 99, ..KeyMetrics::default() }, []);
        assert_eq!(skewed.totals().reads, 99);
        assert_eq!(skewed.iter().count(), 0);
    }

    #[test]
    fn merge_order_is_immaterial() {
        let mut a: StoreMetrics<u32> = StoreMetrics::new();
        a.record_read(&1, true);
        a.record_qr(&1, 2.0);
        let mut b: StoreMetrics<u32> = StoreMetrics::new();
        b.record_write(&2);
        b.record_vr(&2, 1.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.totals(), ba.totals());
        assert_eq!(ab.for_key(&1), ba.for_key(&1));
        assert_eq!(ab.for_key(&2), ba.for_key(&2));
    }
}
