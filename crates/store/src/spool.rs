//! Durable spool integration: the write-record and snapshot codecs that
//! let a [`PrecisionStore`](crate::PrecisionStore) survive a restart with
//! its converged widths intact.
//!
//! The `apcache-spool` crate provides the segmented log; this module
//! defines *what* goes into it:
//!
//! * **Write records** — one per successful state-changing step
//!   ([`REC_WRITE`], [`REC_INSERT`], [`REC_WIDEN`], [`REC_REFRESH`]),
//!   logged *after* the in-memory apply succeeds so replay never sees a
//!   record the live store rejected. Read *hits* are not logged — they
//!   change nothing but hit counters — but a refreshing read (or an
//!   aggregate fetch) shrinks the policy width, so it is durable as a
//!   [`REC_REFRESH`]: replay re-runs the exact-fetch against the replayed
//!   source and lands on bit-identical widths, answers, and escapes.
//! * **Snapshots** — the full store image (tuning parameters, RNG state,
//!   and every key's [`KeyState`] in interned-id order, so recovery
//!   reassigns the same dense ids and the eviction/planner behavior is
//!   unchanged). Taking a snapshot lets the spool delete every earlier
//!   segment.
//!
//! All integers are little-endian and `f64`s travel as IEEE-754 bit
//! patterns, the same conventions as the wire codec — round trips are
//! bit-identical.

use apcache_core::cost::CostModel;
use apcache_core::policy::ApproxSpec;
use apcache_core::{Interval, TimeMs};
use apcache_spool::{Record, Spool, SpoolConfig, SpoolError, SpoolIo};

use crate::error::StoreError;
use crate::metrics::KeyMetrics;
use crate::migrate::KeyState;
use apcache_core::policy::{GrowthLaw, Weighting};

use crate::policy::{InitialWidth, PolicySpec};

/// Record kind: one applied [`write`](crate::PrecisionStore::write)
/// (or one item of a `write_batch`).
pub const REC_WRITE: u8 = 1;
/// Record kind: one post-build [`insert`](crate::PrecisionStore::insert).
pub const REC_INSERT: u8 = 2;
/// Record kind: one applied
/// [`widen_cached`](crate::PrecisionStore::widen_cached) degradation.
pub const REC_WIDEN: u8 = 3;
/// Record kind: one query-initiated refresh — a
/// [`read`](crate::PrecisionStore::read) miss or an aggregate fetch. The
/// fetched value is recomputed from the replayed source at recovery, so
/// only the key, a "counted as a read" flag, and the timestamp are
/// logged; replaying it re-runs the exact-fetch and the policy's width
/// shrink, keeping post-recovery widths bit-identical.
pub const REC_REFRESH: u8 = 4;

/// Snapshot codec version; bumped on any layout change.
const SNAPSHOT_VERSION: u8 = 1;

impl From<SpoolError> for StoreError {
    fn from(e: SpoolError) -> Self {
        StoreError::Spool(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Byte primitives (little-endian, bit-exact f64).
// ---------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_u32(buf, u32::try_from(v.len()).unwrap_or(u32::MAX));
    buf.extend_from_slice(v.as_bytes());
}

fn bad(what: &'static str) -> StoreError {
    StoreError::Spool(format!("malformed spool record: {what}"))
}

/// Bounds-checked cursor over a replayed record payload.
#[derive(Debug)]
pub struct SpoolReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SpoolReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        SpoolReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.buf.len() - self.pos < n {
            return Err(bad("truncated field"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Next length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| bad("invalid UTF-8 in key"))
    }

    fn seq(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(min_elem_bytes.max(1)) > self.buf.len() - self.pos {
            return Err(bad("sequence count exceeds payload"));
        }
        Ok(count)
    }

    fn finish(self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes"))
        }
    }
}

/// A key type that can be persisted in the spool. Implementations must be
/// exact round trips: `decode_key(encode_key(k)) == k`.
///
/// Provided for `String`, `u32`, `u64`, and the protocol's interned
/// [`Key`](apcache_core::Key) — the same set the wire layer accepts.
pub trait SpoolKey: Sized {
    /// Append this key's spool form.
    fn encode_key(&self, buf: &mut Vec<u8>);
    /// Decode one key.
    fn decode_key(r: &mut SpoolReader<'_>) -> Result<Self, StoreError>;
}

impl SpoolKey for String {
    fn encode_key(&self, buf: &mut Vec<u8>) {
        put_str(buf, self);
    }
    fn decode_key(r: &mut SpoolReader<'_>) -> Result<Self, StoreError> {
        r.str()
    }
}

impl SpoolKey for u64 {
    fn encode_key(&self, buf: &mut Vec<u8>) {
        put_u64(buf, *self);
    }
    fn decode_key(r: &mut SpoolReader<'_>) -> Result<Self, StoreError> {
        r.u64()
    }
}

impl SpoolKey for u32 {
    fn encode_key(&self, buf: &mut Vec<u8>) {
        put_u32(buf, *self);
    }
    fn decode_key(r: &mut SpoolReader<'_>) -> Result<Self, StoreError> {
        r.u32()
    }
}

impl SpoolKey for apcache_core::Key {
    fn encode_key(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.0);
    }
    fn decode_key(r: &mut SpoolReader<'_>) -> Result<Self, StoreError> {
        Ok(apcache_core::Key(r.u32()?))
    }
}

// ---------------------------------------------------------------------
// Field codecs (mirroring the wire layer's layouts).
// ---------------------------------------------------------------------

fn put_interval(buf: &mut Vec<u8>, iv: &Interval) {
    let (lo, hi) = iv.to_bits();
    put_u64(buf, lo);
    put_u64(buf, hi);
}

fn read_interval(r: &mut SpoolReader<'_>) -> Result<Interval, StoreError> {
    let lo = r.u64()?;
    let hi = r.u64()?;
    Interval::from_bits(lo, hi).map_err(|_| bad("interval bounds"))
}

fn put_spec(buf: &mut Vec<u8>, spec: &ApproxSpec) {
    match *spec {
        ApproxSpec::Constant(iv) => {
            put_u8(buf, 0);
            put_interval(buf, &iv);
        }
        ApproxSpec::Growing { center, base_width, coeff, exponent, t0 } => {
            put_u8(buf, 1);
            put_f64(buf, center);
            put_f64(buf, base_width);
            put_f64(buf, coeff);
            put_f64(buf, exponent);
            put_u64(buf, t0);
        }
        ApproxSpec::Drifting { lo0, hi0, rate_per_sec, t0 } => {
            put_u8(buf, 2);
            put_f64(buf, lo0);
            put_f64(buf, hi0);
            put_f64(buf, rate_per_sec);
            put_u64(buf, t0);
        }
    }
}

fn read_spec(r: &mut SpoolReader<'_>) -> Result<ApproxSpec, StoreError> {
    match r.u8()? {
        0 => Ok(ApproxSpec::Constant(read_interval(r)?)),
        1 => Ok(ApproxSpec::Growing {
            center: r.f64()?,
            base_width: r.f64()?,
            coeff: r.f64()?,
            exponent: r.f64()?,
            t0: r.u64()?,
        }),
        2 => Ok(ApproxSpec::Drifting {
            lo0: r.f64()?,
            hi0: r.f64()?,
            rate_per_sec: r.f64()?,
            t0: r.u64()?,
        }),
        _ => Err(bad("approximation spec tag")),
    }
}

fn put_policy_spec(buf: &mut Vec<u8>, spec: &PolicySpec) {
    match *spec {
        PolicySpec::Adaptive => put_u8(buf, 0),
        PolicySpec::Uncentered => put_u8(buf, 1),
        PolicySpec::TimeVarying(law) => {
            put_u8(buf, 2);
            put_f64(buf, law.coeff());
            put_f64(buf, law.exponent());
        }
        PolicySpec::Drifting { rate_per_sec } => {
            put_u8(buf, 3);
            put_f64(buf, rate_per_sec);
        }
        PolicySpec::History { r, weighting } => {
            put_u8(buf, 4);
            put_u64(buf, r as u64);
            match weighting {
                Weighting::Uniform => put_u8(buf, 0),
                Weighting::Exponential { decay } => {
                    put_u8(buf, 1);
                    put_f64(buf, decay);
                }
            }
        }
        PolicySpec::Fixed { width } => {
            put_u8(buf, 5);
            put_f64(buf, width);
        }
        PolicySpec::StaleCounter => put_u8(buf, 6),
    }
}

fn read_policy_spec(r: &mut SpoolReader<'_>) -> Result<PolicySpec, StoreError> {
    Ok(match r.u8()? {
        0 => PolicySpec::Adaptive,
        1 => PolicySpec::Uncentered,
        2 => {
            let (coeff, exponent) = (r.f64()?, r.f64()?);
            PolicySpec::TimeVarying(
                GrowthLaw::new(coeff, exponent).map_err(|_| bad("growth law constants"))?,
            )
        }
        3 => PolicySpec::Drifting { rate_per_sec: r.f64()? },
        4 => {
            let window =
                usize::try_from(r.u64()?).map_err(|_| bad("history window overflows usize"))?;
            let weighting = match r.u8()? {
                0 => Weighting::Uniform,
                1 => {
                    let decay = r.f64()?;
                    if !(decay.is_finite() && 0.0 < decay && decay < 1.0) {
                        return Err(bad("history decay outside (0, 1)"));
                    }
                    Weighting::Exponential { decay }
                }
                _ => return Err(bad("history weighting tag")),
            };
            PolicySpec::History { r: window, weighting }
        }
        5 => PolicySpec::Fixed { width: r.f64()? },
        6 => PolicySpec::StaleCounter,
        _ => return Err(bad("policy spec tag")),
    })
}

fn put_key_metrics(buf: &mut Vec<u8>, m: &KeyMetrics) {
    put_u64(buf, m.reads);
    put_u64(buf, m.cache_hits);
    put_u64(buf, m.writes);
    put_u64(buf, m.vr_count);
    put_u64(buf, m.qr_count);
    put_f64(buf, m.vr_cost);
    put_f64(buf, m.qr_cost);
}

fn read_key_metrics(r: &mut SpoolReader<'_>) -> Result<KeyMetrics, StoreError> {
    Ok(KeyMetrics {
        reads: r.u64()?,
        cache_hits: r.u64()?,
        writes: r.u64()?,
        vr_count: r.u64()?,
        qr_count: r.u64()?,
        vr_cost: r.f64()?,
        qr_cost: r.f64()?,
    })
}

fn put_key_state<K: SpoolKey>(buf: &mut Vec<u8>, state: &KeyState<K>) {
    state.key.encode_key(buf);
    put_f64(buf, state.value);
    put_policy_spec(buf, &state.spec);
    put_u32(buf, u32::try_from(state.policy_state.len()).unwrap_or(u32::MAX));
    for word in &state.policy_state {
        put_f64(buf, *word);
    }
    put_spec(buf, &state.source_spec);
    match &state.cached {
        None => put_u8(buf, 0),
        Some((spec, internal_width)) => {
            put_u8(buf, 1);
            put_spec(buf, spec);
            put_f64(buf, *internal_width);
        }
    }
    match &state.metrics {
        None => put_u8(buf, 0),
        Some(metrics) => {
            put_u8(buf, 1);
            put_key_metrics(buf, metrics);
        }
    }
}

fn read_key_state<K: SpoolKey>(r: &mut SpoolReader<'_>) -> Result<KeyState<K>, StoreError> {
    let key = K::decode_key(r)?;
    let value = r.f64()?;
    let spec = read_policy_spec(r)?;
    let n = r.seq(8)?;
    let mut policy_state = Vec::with_capacity(n);
    for _ in 0..n {
        policy_state.push(r.f64()?);
    }
    let source_spec = read_spec(r)?;
    let cached = match r.u8()? {
        0 => None,
        1 => Some((read_spec(r)?, r.f64()?)),
        _ => return Err(bad("cache residency tag")),
    };
    let metrics = match r.u8()? {
        0 => None,
        1 => Some(read_key_metrics(r)?),
        _ => return Err(bad("key metrics option tag")),
    };
    Ok(KeyState { key, value, spec, policy_state, source_spec, cached, metrics })
}

// ---------------------------------------------------------------------
// Snapshot image.
// ---------------------------------------------------------------------

/// The full store image a snapshot carries: every tuning parameter the
/// builder accepts, the RNG stream position, and each key's protocol
/// state in interned-id order (so recovery reassigns identical dense ids
/// and eviction/planner behavior is unchanged).
#[derive(Debug, Clone)]
pub(crate) struct SnapshotImage<K> {
    pub cost: CostModel,
    pub alpha: f64,
    pub gamma0: f64,
    pub gamma1: f64,
    pub capacity: Option<usize>,
    pub initial_width: InitialWidth,
    pub default_policy: PolicySpec,
    pub rng_words: [u64; 5],
    pub keys: Vec<KeyState<K>>,
}

pub(crate) fn encode_snapshot<K: SpoolKey>(image: &SnapshotImage<K>, buf: &mut Vec<u8>) {
    put_u8(buf, SNAPSHOT_VERSION);
    put_f64(buf, image.cost.c_vr());
    put_f64(buf, image.cost.c_qr());
    put_f64(buf, image.alpha);
    put_f64(buf, image.gamma0);
    put_f64(buf, image.gamma1);
    match image.capacity {
        None => put_u8(buf, 0),
        Some(k) => {
            put_u8(buf, 1);
            put_u64(buf, k as u64);
        }
    }
    match image.initial_width {
        InitialWidth::Fixed(w) => {
            put_u8(buf, 0);
            put_f64(buf, w);
        }
        InitialWidth::Relative { frac, floor } => {
            put_u8(buf, 1);
            put_f64(buf, frac);
            put_f64(buf, floor);
        }
    }
    put_policy_spec(buf, &image.default_policy);
    for word in image.rng_words {
        put_u64(buf, word);
    }
    put_u32(buf, u32::try_from(image.keys.len()).unwrap_or(u32::MAX));
    for state in &image.keys {
        put_key_state(buf, state);
    }
}

pub(crate) fn decode_snapshot<K: SpoolKey>(bytes: &[u8]) -> Result<SnapshotImage<K>, StoreError> {
    let mut r = SpoolReader::new(bytes);
    if r.u8()? != SNAPSHOT_VERSION {
        return Err(bad("unsupported snapshot version"));
    }
    let c_vr = r.f64()?;
    let c_qr = r.f64()?;
    let cost = CostModel::new(c_vr, c_qr).map_err(|_| bad("cost model parameters"))?;
    let alpha = r.f64()?;
    let gamma0 = r.f64()?;
    let gamma1 = r.f64()?;
    let capacity = match r.u8()? {
        0 => None,
        1 => Some(usize::try_from(r.u64()?).map_err(|_| bad("cache capacity overflows usize"))?),
        _ => return Err(bad("capacity option tag")),
    };
    let initial_width = match r.u8()? {
        0 => InitialWidth::Fixed(r.f64()?),
        1 => InitialWidth::Relative { frac: r.f64()?, floor: r.f64()? },
        _ => return Err(bad("initial width tag")),
    };
    let default_policy = read_policy_spec(&mut r)?;
    let mut rng_words = [0u64; 5];
    for word in &mut rng_words {
        *word = r.u64()?;
    }
    let n = r.seq(1)?;
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        keys.push(read_key_state(&mut r)?);
    }
    r.finish()?;
    Ok(SnapshotImage {
        cost,
        alpha,
        gamma0,
        gamma1,
        capacity,
        initial_width,
        default_policy,
        rng_words,
        keys,
    })
}

// ---------------------------------------------------------------------
// Replayed mutations.
// ---------------------------------------------------------------------

/// One decoded log record: a mutation to re-apply through the store's
/// normal verbs during recovery.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Mutation<K> {
    Write { key: K, value: f64, now: TimeMs },
    Insert { key: K, value: f64, spec: Option<PolicySpec>, now: TimeMs },
    Widen { key: K, width: f64, now: TimeMs },
    Refresh { key: K, counted_as_read: bool, now: TimeMs },
}

#[cfg(test)]
pub(crate) fn encode_write<K: SpoolKey>(key: &K, value: f64, now: TimeMs, buf: &mut Vec<u8>) {
    key.encode_key(buf);
    put_f64(buf, value);
    put_u64(buf, now);
}

#[cfg(test)]
pub(crate) fn encode_insert<K: SpoolKey>(
    key: &K,
    value: f64,
    spec: Option<&PolicySpec>,
    now: TimeMs,
    buf: &mut Vec<u8>,
) {
    key.encode_key(buf);
    put_f64(buf, value);
    match spec {
        None => put_u8(buf, 0),
        Some(spec) => {
            put_u8(buf, 1);
            put_policy_spec(buf, spec);
        }
    }
    put_u64(buf, now);
}

#[cfg(test)]
pub(crate) fn encode_widen<K: SpoolKey>(key: &K, width: f64, now: TimeMs, buf: &mut Vec<u8>) {
    key.encode_key(buf);
    put_f64(buf, width);
    put_u64(buf, now);
}

#[cfg(test)]
pub(crate) fn encode_refresh<K: SpoolKey>(
    key: &K,
    counted_as_read: bool,
    now: TimeMs,
    buf: &mut Vec<u8>,
) {
    key.encode_key(buf);
    put_u8(buf, counted_as_read as u8);
    put_u64(buf, now);
}

pub(crate) fn decode_mutation<K: SpoolKey>(record: &Record) -> Result<Mutation<K>, StoreError> {
    let mut r = SpoolReader::new(&record.payload);
    let mutation = match record.kind {
        REC_WRITE => {
            Mutation::Write { key: K::decode_key(&mut r)?, value: r.f64()?, now: r.u64()? }
        }
        REC_INSERT => {
            let key = K::decode_key(&mut r)?;
            let value = r.f64()?;
            let spec = match r.u8()? {
                0 => None,
                1 => Some(read_policy_spec(&mut r)?),
                _ => return Err(bad("insert policy option tag")),
            };
            Mutation::Insert { key, value, spec, now: r.u64()? }
        }
        REC_WIDEN => {
            Mutation::Widen { key: K::decode_key(&mut r)?, width: r.f64()?, now: r.u64()? }
        }
        REC_REFRESH => {
            let key = K::decode_key(&mut r)?;
            let counted_as_read = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(bad("refresh read flag")),
            };
            Mutation::Refresh { key, counted_as_read, now: r.u64()? }
        }
        _ => return Err(bad("unknown record kind")),
    };
    r.finish()?;
    Ok(mutation)
}

// ---------------------------------------------------------------------
// The store's handle on an open spool.
// ---------------------------------------------------------------------

/// An open spool attached to a store: the segmented log plus the key
/// encoder captured when the (SpoolKey-bounded) attach ran, so the hot
/// mutation paths need no extra trait bounds.
pub(crate) struct StoreSpool<K> {
    spool: Spool<Box<dyn SpoolIo>>,
    encode: fn(&K, &mut Vec<u8>),
    encode_snapshot: fn(&SnapshotImage<K>, &mut Vec<u8>),
    buf: Vec<u8>,
}

impl<K> std::fmt::Debug for StoreSpool<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreSpool").field("spool", &self.spool).finish_non_exhaustive()
    }
}

impl<K> StoreSpool<K> {
    pub(crate) fn open(
        io: Box<dyn SpoolIo>,
        dir: &str,
        cfg: SpoolConfig,
        encode: fn(&K, &mut Vec<u8>),
        encode_snapshot: fn(&SnapshotImage<K>, &mut Vec<u8>),
    ) -> Result<(Self, apcache_spool::Recovery), StoreError> {
        let (spool, recovery) = Spool::open(io, dir, cfg)?;
        Ok((StoreSpool { spool, encode, encode_snapshot, buf: Vec::new() }, recovery))
    }

    pub(crate) fn log_write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<(), StoreError> {
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        (self.encode)(key, &mut buf);
        put_f64(&mut buf, value);
        put_u64(&mut buf, now);
        let result = self.spool.append(REC_WRITE, &buf);
        self.buf = buf;
        Ok(result?)
    }

    pub(crate) fn log_insert(
        &mut self,
        key: &K,
        value: f64,
        spec: Option<&PolicySpec>,
        now: TimeMs,
    ) -> Result<(), StoreError> {
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        (self.encode)(key, &mut buf);
        put_f64(&mut buf, value);
        match spec {
            None => put_u8(&mut buf, 0),
            Some(spec) => {
                put_u8(&mut buf, 1);
                put_policy_spec(&mut buf, spec);
            }
        }
        put_u64(&mut buf, now);
        let result = self.spool.append(REC_INSERT, &buf);
        self.buf = buf;
        Ok(result?)
    }

    pub(crate) fn log_widen(&mut self, key: &K, width: f64, now: TimeMs) -> Result<(), StoreError> {
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        (self.encode)(key, &mut buf);
        put_f64(&mut buf, width);
        put_u64(&mut buf, now);
        let result = self.spool.append(REC_WIDEN, &buf);
        self.buf = buf;
        Ok(result?)
    }

    pub(crate) fn log_refresh(
        &mut self,
        key: &K,
        counted_as_read: bool,
        now: TimeMs,
    ) -> Result<(), StoreError> {
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        (self.encode)(key, &mut buf);
        put_u8(&mut buf, counted_as_read as u8);
        put_u64(&mut buf, now);
        let result = self.spool.append(REC_REFRESH, &buf);
        self.buf = buf;
        Ok(result?)
    }

    pub(crate) fn write_snapshot_image(
        &mut self,
        image: &SnapshotImage<K>,
    ) -> Result<(), StoreError> {
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        (self.encode_snapshot)(image, &mut buf);
        let result = self.spool.snapshot(&buf);
        self.buf = buf;
        Ok(result?)
    }

    pub(crate) fn dir(&self) -> &str {
        self.spool.dir()
    }

    pub(crate) fn into_io(self) -> Box<dyn SpoolIo> {
        self.spool.into_io()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apcache_core::Rng;
    use apcache_spool::MemIo;

    fn reader_of(buf: &[u8]) -> SpoolReader<'_> {
        SpoolReader::new(buf)
    }

    #[test]
    fn key_codecs_round_trip() {
        let mut buf = Vec::new();
        "route/飛行".to_string().encode_key(&mut buf);
        7u32.encode_key(&mut buf);
        9u64.encode_key(&mut buf);
        apcache_core::Key(21).encode_key(&mut buf);
        let mut r = reader_of(&buf);
        assert_eq!(String::decode_key(&mut r).unwrap(), "route/飛行");
        assert_eq!(u32::decode_key(&mut r).unwrap(), 7);
        assert_eq!(u64::decode_key(&mut r).unwrap(), 9);
        assert_eq!(apcache_core::Key::decode_key(&mut r).unwrap(), apcache_core::Key(21));
        assert!(r.finish().is_ok());
    }

    #[test]
    fn policy_specs_round_trip() {
        let specs = [
            PolicySpec::Adaptive,
            PolicySpec::Uncentered,
            PolicySpec::TimeVarying(GrowthLaw::new(2.0, 0.5).unwrap()),
            PolicySpec::Drifting { rate_per_sec: 1.25 },
            PolicySpec::History { r: 5, weighting: Weighting::Uniform },
            PolicySpec::History { r: 3, weighting: Weighting::Exponential { decay: 0.5 } },
            PolicySpec::Fixed { width: 7.5 },
            PolicySpec::StaleCounter,
        ];
        for spec in specs {
            let mut buf = Vec::new();
            put_policy_spec(&mut buf, &spec);
            let mut r = reader_of(&buf);
            assert_eq!(read_policy_spec(&mut r).unwrap(), spec);
            assert!(r.finish().is_ok());
        }
    }

    #[test]
    fn key_state_round_trips_bit_exactly() {
        let state = KeyState {
            key: "sensor-9".to_string(),
            value: -0.0,
            spec: PolicySpec::Adaptive,
            policy_state: vec![12.5, f64::INFINITY, -3.0],
            source_spec: ApproxSpec::Constant(Interval::new(1.0, 2.0).unwrap()),
            cached: Some((
                ApproxSpec::Growing {
                    center: 1.5,
                    base_width: 1.0,
                    coeff: 0.1,
                    exponent: 0.5,
                    t0: 77,
                },
                30.0,
            )),
            metrics: Some(KeyMetrics {
                reads: 4,
                cache_hits: 3,
                writes: 2,
                vr_count: 1,
                qr_count: 1,
                vr_cost: 1.5,
                qr_cost: 2.5,
            }),
        };
        let mut buf = Vec::new();
        put_key_state(&mut buf, &state);
        let mut r = reader_of(&buf);
        let back: KeyState<String> = read_key_state(&mut r).unwrap();
        assert!(r.finish().is_ok());
        assert_eq!(back, state);
        assert!(back.value.to_bits() == state.value.to_bits(), "-0.0 preserved exactly");
    }

    #[test]
    fn mutations_round_trip_through_records() {
        let mut buf = Vec::new();
        encode_write(&"k1".to_string(), 10.5, 1_000, &mut buf);
        let rec = Record { kind: REC_WRITE, payload: buf };
        assert_eq!(
            decode_mutation::<String>(&rec).unwrap(),
            Mutation::Write { key: "k1".into(), value: 10.5, now: 1_000 }
        );

        let mut buf = Vec::new();
        encode_insert(&"k2".to_string(), 3.0, Some(&PolicySpec::Fixed { width: 2.0 }), 5, &mut buf);
        let rec = Record { kind: REC_INSERT, payload: buf };
        assert_eq!(
            decode_mutation::<String>(&rec).unwrap(),
            Mutation::Insert {
                key: "k2".into(),
                value: 3.0,
                spec: Some(PolicySpec::Fixed { width: 2.0 }),
                now: 5
            }
        );

        let mut buf = Vec::new();
        encode_widen(&"k3".to_string(), 44.0, 9, &mut buf);
        let rec = Record { kind: REC_WIDEN, payload: buf };
        assert_eq!(
            decode_mutation::<String>(&rec).unwrap(),
            Mutation::Widen { key: "k3".into(), width: 44.0, now: 9 }
        );

        let mut buf = Vec::new();
        encode_refresh(&"k4".to_string(), true, 12, &mut buf);
        let rec = Record { kind: REC_REFRESH, payload: buf };
        assert_eq!(
            decode_mutation::<String>(&rec).unwrap(),
            Mutation::Refresh { key: "k4".into(), counted_as_read: true, now: 12 }
        );

        let junk = Record { kind: 200, payload: Vec::new() };
        assert!(decode_mutation::<String>(&junk).is_err());
    }

    #[test]
    fn snapshot_image_round_trips() {
        let image = SnapshotImage {
            cost: CostModel::new(1.0, 2.0).unwrap(),
            alpha: 1.0,
            gamma0: 0.5,
            gamma1: f64::INFINITY,
            capacity: Some(128),
            initial_width: InitialWidth::Relative { frac: 0.1, floor: 1.0 },
            default_policy: PolicySpec::Adaptive,
            rng_words: Rng::seed_from_u64(7).state_words(),
            keys: vec![KeyState {
                key: 42u64,
                value: 9.0,
                spec: PolicySpec::Adaptive,
                policy_state: vec![8.0],
                source_spec: ApproxSpec::Constant(Interval::new(5.0, 13.0).unwrap()),
                cached: None,
                metrics: None,
            }],
        };
        let mut buf = Vec::new();
        encode_snapshot(&image, &mut buf);
        let back: SnapshotImage<u64> = decode_snapshot(&buf).unwrap();
        assert_eq!(back.cost.c_vr(), 1.0);
        assert_eq!(back.cost.c_qr(), 2.0);
        assert_eq!(back.capacity, Some(128));
        assert_eq!(back.rng_words, image.rng_words);
        assert_eq!(back.keys, image.keys);
        // Truncated and trailing payloads are rejected.
        assert!(decode_snapshot::<u64>(&buf[..buf.len() - 1]).is_err());
        let mut extra = buf.clone();
        extra.push(0);
        assert!(decode_snapshot::<u64>(&extra).is_err());
    }

    #[test]
    fn store_spool_logs_through_the_key_encoder() {
        let (mut ss, _) = StoreSpool::<String>::open(
            Box::new(MemIo::new()),
            "d",
            SpoolConfig::default(),
            <String as SpoolKey>::encode_key,
            encode_snapshot::<String>,
        )
        .unwrap();
        ss.log_write(&"k".to_string(), 1.0, 10).unwrap();
        ss.log_insert(&"k2".to_string(), 2.0, None, 11).unwrap();
        ss.log_widen(&"k".to_string(), 5.0, 12).unwrap();
        let io = ss.into_io();
        let (_, rec) = Spool::open(io, "d", SpoolConfig::default()).unwrap();
        let muts: Vec<Mutation<String>> =
            rec.records.iter().map(|r| decode_mutation(r).unwrap()).collect();
        assert_eq!(muts.len(), 3);
        assert!(matches!(muts[0], Mutation::Write { .. }));
        assert!(matches!(muts[1], Mutation::Insert { .. }));
        assert!(matches!(muts[2], Mutation::Widen { .. }));
    }
}
