//! Ad-hoc hot-path timing harness (ignored by default; run with
//! `cargo test -p apcache-store --release --test hotpath_timing -- --ignored --nocapture`).

use std::time::Instant;

use apcache_store::{Constraint, InitialWidth, StoreBuilder};

#[test]
#[ignore = "timing harness, not a correctness test"]
fn read_hit_hot_path() {
    const KEYS: u64 = 10_000;
    const OPS: u64 = 20_000_000;
    let mut b = StoreBuilder::new().initial_width(InitialWidth::Fixed(10.0));
    for k in 0..KEYS {
        b = b.source(k, k as f64);
    }
    let mut store = b.build().unwrap();
    // Warm up, then time OPS read hits (constraint always satisfied).
    let mut acc = 0.0f64;
    for k in 0..KEYS {
        acc += store.read(&k, Constraint::Absolute(20.0), 0).unwrap().answer.width();
    }
    let started = Instant::now();
    for i in 0..OPS {
        let k = i % KEYS;
        acc += store.read(&k, Constraint::Absolute(20.0), 0).unwrap().answer.width();
    }
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "read-hit hot path: {:.1} ns/op, {:.2} Mops/s (acc={acc})",
        elapsed / OPS as f64 * 1e9,
        OPS as f64 / elapsed / 1e6
    );
}
