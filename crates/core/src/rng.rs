//! Deterministic random number generation.
//!
//! The simulator must be bit-for-bit reproducible across platforms, Rust
//! releases, and dependency upgrades, so this crate ships its own small
//! generator instead of depending on `rand`:
//!
//! * [`SplitMix64`] — used for seeding (Steele, Lea & Flood 2014);
//! * [`Rng`] — xoshiro256\*\* (Blackman & Vigna 2018), a fast, high-quality
//!   non-cryptographic PRNG, plus the handful of distributions the
//!   experiments need (uniform, Bernoulli, exponential, Pareto, normal).
//!
//! Both algorithms are public-domain reference constructions.

/// SplitMix64: a tiny, high-quality 64-bit mixer used to expand a single
/// `u64` seed into generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new SplitMix64 stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* pseudo-random number generator with the distribution
/// helpers used throughout the workload generators and policies.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Seed the generator from a single `u64` via SplitMix64, as recommended
    /// by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is the one invalid state; SplitMix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s, spare_normal: None }
    }

    /// Derive an independent child generator. Used to give every source,
    /// workload, and policy its own stream so adding a component never
    /// perturbs the randomness seen by the others.
    pub fn fork(&mut self) -> Rng {
        let seed = self.next_u64();
        Rng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F)
    }

    /// Export the full generator state for persistence: the four
    /// xoshiro256\*\* state words plus the cached Box–Muller spare (NaN
    /// when absent — NaN is never a valid spare, the transform only
    /// produces finite values).
    pub fn state_words(&self) -> [u64; 5] {
        let spare = self.spare_normal.unwrap_or(f64::NAN).to_bits();
        [self.s[0], self.s[1], self.s[2], self.s[3], spare]
    }

    /// Rebuild a generator from [`state_words`](Rng::state_words) output,
    /// resuming the stream exactly where the exporter left it. Returns
    /// `None` for the invalid all-zero xoshiro state.
    pub fn from_state(words: [u64; 5]) -> Option<Self> {
        let s = [words[0], words[1], words[2], words[3]];
        if s == [0, 0, 0, 0] {
            return None;
        }
        let spare = f64::from_bits(words[4]);
        let spare_normal = if spare.is_nan() { None } else { Some(spare) };
        Some(Rng { s, spare_normal })
    }

    /// Next raw 64-bit output (xoshiro256\*\*).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling yields [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Degenerate ranges (`lo == hi`) return `lo`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform range inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift method
    /// (unbiased via rejection).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        // Lemire 2018: rejection on the low word keeps the result unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.f64() < p
    }

    /// Fair coin flip.
    #[inline]
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Exponentially distributed sample with the given `rate` (mean `1/rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        // 1 - f64() is in (0, 1], so ln() is finite.
        -(1.0 - self.f64()).ln() / rate
    }

    /// Pareto (type I) sample with minimum `scale > 0` and tail index
    /// `shape > 0`. Heavy-tailed for `shape <= 2`; the classical on/off
    /// construction of self-similar traffic uses `shape` around 1.2–1.6.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        debug_assert!(scale > 0.0 && shape > 0.0);
        scale / (1.0 - self.f64()).powf(1.0 / shape)
    }

    /// Standard normal sample (Box–Muller; the second value is cached).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid u == 0 so ln(u) is finite.
        let u = 1.0 - self.f64();
        let v = self.f64();
        let r = (-2.0 * u.ln()).sqrt();
        let (sin, cos) = (std::f64::consts::TAU * v).sin_cos();
        self.spare_normal = Some(r * sin);
        r * cos
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.normal()
    }

    /// Sample `k` distinct indices from `0..n` (uniformly, order unspecified
    /// but deterministic). Used to pick the sources an aggregate query reads.
    ///
    /// Runs a partial Fisher–Yates shuffle over a scratch vector; `n` is
    /// small (tens of sources) in every workload we generate.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism across constructions.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(a, sm2.next_u64());
        assert_eq!(b, sm2.next_u64());
    }

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut parent = Rng::seed_from_u64(7);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_range() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_about_half() {
        let mut rng = Rng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.uniform(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&x));
        }
        // Degenerate range.
        assert_eq!(rng.uniform(2.0, 2.0), 2.0);
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::seed_from_u64(6);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!((c as f64 - expected).abs() < expected * 0.1, "counts={counts:?}");
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng::seed_from_u64(7);
        assert!(rng.bernoulli(1.0));
        assert!(rng.bernoulli(2.0));
        assert!(!rng.bernoulli(0.0));
        assert!(!rng.bernoulli(-0.5));
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Rng::seed_from_u64(8);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p={p}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = Rng::seed_from_u64(10);
        for _ in 0..10_000 {
            assert!(rng.pareto(1.5, 1.2) >= 1.5);
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        // With shape 1.2 the sample maximum over 100k draws should be
        // far above the scale — a crude heavy-tail check.
        let mut rng = Rng::seed_from_u64(11);
        let max = (0..100_000).map(|_| rng.pareto(1.0, 1.2)).fold(0.0, f64::max);
        assert!(max > 100.0, "max={max}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(12);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn normal_with_scales() {
        let mut rng = Rng::seed_from_u64(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.normal_with(10.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::seed_from_u64(14);
        for _ in 0..100 {
            let s = rng.sample_indices(50, 10);
            assert_eq!(s.len(), 10);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10, "duplicates in {s:?}");
            assert!(s.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn sample_indices_k_larger_than_n() {
        let mut rng = Rng::seed_from_u64(15);
        let s = rng.sample_indices(3, 10);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn sample_indices_uniformity() {
        // Each of 10 indices should be chosen ~ k/n of the time.
        let mut rng = Rng::seed_from_u64(16);
        let mut counts = [0u32; 10];
        let trials = 20_000;
        for _ in 0..trials {
            for i in rng.sample_indices(10, 3) {
                counts[i] += 1;
            }
        }
        let expected = trials as f64 * 0.3;
        for &c in &counts {
            assert!((c as f64 - expected).abs() < expected * 0.1, "{counts:?}");
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = Rng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        // Leave a cached Box–Muller spare in place to exercise its export.
        rng.normal();
        let mut resumed = Rng::from_state(rng.state_words()).unwrap();
        for _ in 0..100 {
            assert_eq!(rng.normal().to_bits(), resumed.normal().to_bits());
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn from_state_rejects_all_zero() {
        assert!(Rng::from_state([0, 0, 0, 0, f64::NAN.to_bits()]).is_none());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
