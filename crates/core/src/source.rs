//! Source-side protocol object.
//!
//! A [`Source`] hosts one exact numeric value and, per cache that has
//! registered interest, one approximation plus the precision policy that
//! governs it (paper, Section 1.1). On every value change the source checks
//! `Valid(A, V')` for each registered approximation and emits a
//! value-initiated [`Refresh`] for each one that became invalid. On a
//! remote read it serves the exact value plus a fresh approximation
//! (query-initiated refresh).

use crate::error::ProtocolError;
use crate::policy::{ApproxSpec, Escape, PrecisionPolicy};
use crate::rng::Rng;
use crate::{CacheId, Key, TimeMs};

/// A refresh message from a source to a cache: a new approximation for
/// `key`, plus the internal ("original") width the cache uses for its
/// eviction ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct Refresh {
    /// The data value being refreshed.
    pub key: Key,
    /// The new approximation.
    pub spec: ApproxSpec,
    /// The policy's internal width at refresh time (eviction ordering key;
    /// the paper's eviction decisions are "based on original widths, not on
    /// 0 or ∞ widths due to thresholds").
    pub internal_width: f64,
}

/// Response to a query-initiated refresh: the exact value plus the new
/// approximation for subsequent queries.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactResponse {
    /// The exact value at the source at read time.
    pub value: f64,
    /// Refresh installing the replacement approximation.
    pub refresh: Refresh,
}

/// One registered (cache, approximation) pair.
#[derive(Debug)]
struct Registration {
    cache: CacheId,
    policy: Box<dyn PrecisionPolicy>,
    spec: ApproxSpec,
}

/// A data source hosting one exact value (paper, Section 4.1: "each source
/// holds one exact numeric value").
#[derive(Debug)]
pub struct Source {
    key: Key,
    value: f64,
    regs: Vec<Registration>,
}

impl Source {
    /// Create a source; the initial value must be finite.
    pub fn new(key: Key, initial_value: f64) -> Result<Self, ProtocolError> {
        if !initial_value.is_finite() {
            return Err(ProtocolError::NonFiniteValue(initial_value));
        }
        Ok(Source { key, value: initial_value, regs: Vec::new() })
    }

    /// The key this source serves.
    pub fn key(&self) -> Key {
        self.key
    }

    /// Current exact value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Register a cache with its precision policy; returns the initial
    /// refresh message to install at the cache.
    pub fn register(
        &mut self,
        cache: CacheId,
        policy: Box<dyn PrecisionPolicy>,
        now: TimeMs,
    ) -> Result<Refresh, ProtocolError> {
        if self.regs.iter().any(|r| r.cache == cache) {
            return Err(ProtocolError::AlreadyRegistered(cache));
        }
        let spec = policy.make_spec(self.value, now);
        let internal_width = policy.internal_width();
        self.regs.push(Registration { cache, policy, spec });
        Ok(Refresh { key: self.key, spec, internal_width })
    }

    /// Remove the registration for `cache`.
    pub fn deregister(&mut self, cache: CacheId) -> Result<(), ProtocolError> {
        match self.regs.iter().position(|r| r.cache == cache) {
            Some(i) => {
                self.regs.swap_remove(i);
                Ok(())
            }
            None => Err(ProtocolError::NotRegistered(cache)),
        }
    }

    /// Whether an approximation is registered for `cache`.
    pub fn is_registered(&self, cache: CacheId) -> bool {
        self.regs.iter().any(|r| r.cache == cache)
    }

    /// The approximation currently installed for `cache`.
    pub fn spec_for(&self, cache: CacheId) -> Option<&ApproxSpec> {
        self.regs.iter().find(|r| r.cache == cache).map(|r| &r.spec)
    }

    /// The policy's internal width for `cache`.
    pub fn internal_width_for(&self, cache: CacheId) -> Option<f64> {
        self.regs.iter().find(|r| r.cache == cache).map(|r| r.policy.internal_width())
    }

    /// The policy's adaptation-state words for `cache` (see
    /// [`PrecisionPolicy::export_state`]). Used by shard migration to move
    /// converged widths with the key.
    pub fn policy_state_for(&self, cache: CacheId) -> Option<Vec<f64>> {
        self.regs.iter().find(|r| r.cache == cache).map(|r| r.policy.export_state())
    }

    /// Relabel this source. Shard stores identify sources by dense internal
    /// ids, which change when a key moves between stores; the protocol state
    /// is otherwise untouched.
    pub fn rekey(&mut self, key: Key) {
        self.key = key;
    }

    /// Register a cache by installing an *existing* approximation and an
    /// already-restored policy, without emitting a refresh.
    ///
    /// [`register`] recenters a fresh spec on the current value — correct
    /// for a cold registration, wrong for migration, where the spec in
    /// force at the source shard must survive the move bit-for-bit.
    ///
    /// [`register`]: Source::register
    pub fn register_snapshot(
        &mut self,
        cache: CacheId,
        policy: Box<dyn PrecisionPolicy>,
        spec: ApproxSpec,
    ) -> Result<(), ProtocolError> {
        if self.regs.iter().any(|r| r.cache == cache) {
            return Err(ProtocolError::AlreadyRegistered(cache));
        }
        self.regs.push(Registration { cache, policy, spec });
        Ok(())
    }

    /// Install a new exact value and run the validity test for every
    /// registered approximation (paper, Section 1.1). Returns one
    /// value-initiated refresh per approximation that became invalid.
    pub fn apply_update(
        &mut self,
        new_value: f64,
        now: TimeMs,
        rng: &mut Rng,
    ) -> Result<Vec<(CacheId, Refresh)>, ProtocolError> {
        if !new_value.is_finite() {
            return Err(ProtocolError::NonFiniteValue(new_value));
        }
        self.value = new_value;
        let key = self.key;
        let mut out = Vec::new();
        for reg in &mut self.regs {
            let interval = reg.spec.interval_at(now);
            if interval.contains(new_value) {
                continue;
            }
            let escape = if new_value > interval.hi() { Escape::Above } else { Escape::Below };
            reg.policy.on_value_refresh(escape, rng);
            reg.spec = reg.policy.make_spec(new_value, now);
            out.push((
                reg.cache,
                Refresh { key, spec: reg.spec, internal_width: reg.policy.internal_width() },
            ));
        }
        Ok(out)
    }

    /// Serve a query-initiated refresh for `cache`: the policy observes the
    /// "too wide" signal (shrinking with probability `min{1/θ,1}`), and the
    /// response carries the exact value plus the replacement approximation.
    pub fn serve_exact(
        &mut self,
        cache: CacheId,
        now: TimeMs,
        rng: &mut Rng,
    ) -> Result<ExactResponse, ProtocolError> {
        let key = self.key;
        let value = self.value;
        let reg = self
            .regs
            .iter_mut()
            .find(|r| r.cache == cache)
            .ok_or(ProtocolError::NotRegistered(cache))?;
        reg.policy.on_query_refresh(rng);
        reg.spec = reg.policy.make_spec(value, now);
        Ok(ExactResponse {
            value,
            refresh: Refresh { key, spec: reg.spec, internal_width: reg.policy.internal_width() },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AdaptiveParams, AdaptivePolicy, FixedWidthPolicy};

    fn adaptive(width: f64) -> Box<dyn PrecisionPolicy> {
        let params = AdaptiveParams::from_theta(1.0, 1.0).unwrap();
        Box::new(AdaptivePolicy::new(params, width).unwrap())
    }

    #[test]
    fn rejects_non_finite_values() {
        assert!(Source::new(Key(0), f64::NAN).is_err());
        assert!(Source::new(Key(0), f64::INFINITY).is_err());
        let mut s = Source::new(Key(0), 1.0).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        assert!(s.apply_update(f64::NAN, 0, &mut rng).is_err());
    }

    #[test]
    fn register_installs_centered_interval() {
        let mut s = Source::new(Key(3), 100.0).unwrap();
        let refresh = s.register(CacheId(0), adaptive(10.0), 0).unwrap();
        assert_eq!(refresh.key, Key(3));
        assert_eq!(refresh.internal_width, 10.0);
        let iv = refresh.spec.interval_at(0);
        assert_eq!((iv.lo(), iv.hi()), (95.0, 105.0));
        // Double registration rejected.
        assert!(s.register(CacheId(0), adaptive(10.0), 0).is_err());
        // A second cache is fine.
        assert!(s.register(CacheId(1), adaptive(20.0), 0).is_ok());
    }

    #[test]
    fn update_within_interval_is_silent() {
        let mut s = Source::new(Key(0), 100.0).unwrap();
        s.register(CacheId(0), adaptive(10.0), 0).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        let refreshes = s.apply_update(104.0, 1_000, &mut rng).unwrap();
        assert!(refreshes.is_empty());
        assert_eq!(s.value(), 104.0);
    }

    #[test]
    fn escape_above_triggers_vr_and_growth() {
        let mut s = Source::new(Key(0), 100.0).unwrap();
        s.register(CacheId(0), adaptive(10.0), 0).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        // 106 > hi=105: VR; θ=1 grows width to 20, recentered on 106.
        let refreshes = s.apply_update(106.0, 1_000, &mut rng).unwrap();
        assert_eq!(refreshes.len(), 1);
        let (cache, r) = &refreshes[0];
        assert_eq!(*cache, CacheId(0));
        assert_eq!(r.internal_width, 20.0);
        let iv = r.spec.interval_at(1_000);
        assert_eq!((iv.lo(), iv.hi()), (96.0, 116.0));
    }

    #[test]
    fn escape_below_also_detected() {
        let mut s = Source::new(Key(0), 100.0).unwrap();
        s.register(CacheId(0), adaptive(10.0), 0).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        let refreshes = s.apply_update(80.0, 1_000, &mut rng).unwrap();
        assert_eq!(refreshes.len(), 1);
        assert_eq!(refreshes[0].1.internal_width, 20.0);
    }

    #[test]
    fn boundary_value_is_still_valid() {
        let mut s = Source::new(Key(0), 100.0).unwrap();
        s.register(CacheId(0), adaptive(10.0), 0).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        // Exactly the bound: L <= V <= H holds, no refresh.
        let refreshes = s.apply_update(105.0, 1_000, &mut rng).unwrap();
        assert!(refreshes.is_empty());
    }

    #[test]
    fn serve_exact_shrinks_and_recenters() {
        let mut s = Source::new(Key(0), 100.0).unwrap();
        s.register(CacheId(0), adaptive(10.0), 0).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        let resp = s.serve_exact(CacheId(0), 2_000, &mut rng).unwrap();
        assert_eq!(resp.value, 100.0);
        assert_eq!(resp.refresh.internal_width, 5.0);
        let iv = resp.refresh.spec.interval_at(2_000);
        assert_eq!((iv.lo(), iv.hi()), (97.5, 102.5));
        // Unregistered cache errors.
        assert!(s.serve_exact(CacheId(9), 0, &mut rng).is_err());
    }

    #[test]
    fn multi_cache_refreshes_are_independent() {
        let mut s = Source::new(Key(0), 0.0).unwrap();
        s.register(CacheId(0), adaptive(2.0), 0).unwrap();
        s.register(CacheId(1), adaptive(100.0), 0).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        // +10 escapes the narrow interval but not the wide one.
        let refreshes = s.apply_update(10.0, 1_000, &mut rng).unwrap();
        assert_eq!(refreshes.len(), 1);
        assert_eq!(refreshes[0].0, CacheId(0));
    }

    #[test]
    fn fixed_policy_source_round_trip() {
        let mut s = Source::new(Key(0), 5.0).unwrap();
        s.register(CacheId(0), Box::new(FixedWidthPolicy::new(4.0).unwrap()), 0).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        let refreshes = s.apply_update(8.0, 1_000, &mut rng).unwrap();
        assert_eq!(refreshes.len(), 1);
        // Width unchanged (fixed), recentered on 8.
        let iv = refreshes[0].1.spec.interval_at(1_000);
        assert_eq!((iv.lo(), iv.hi()), (6.0, 10.0));
    }

    #[test]
    fn deregister_stops_refreshes() {
        let mut s = Source::new(Key(0), 0.0).unwrap();
        s.register(CacheId(0), adaptive(2.0), 0).unwrap();
        s.deregister(CacheId(0)).unwrap();
        assert!(!s.is_registered(CacheId(0)));
        let mut rng = Rng::seed_from_u64(0);
        let refreshes = s.apply_update(100.0, 1_000, &mut rng).unwrap();
        assert!(refreshes.is_empty());
        assert!(s.deregister(CacheId(0)).is_err());
    }
}
