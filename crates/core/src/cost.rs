//! Refresh cost model.
//!
//! The algorithm is parameterized by the cost `C_vr` of a value-initiated
//! refresh and the cost `C_qr` of a query-initiated refresh (paper,
//! Section 2). The paper's performance metric is the cost rate
//! `Ω = C_vr·P_vr + C_qr·P_qr` per simulated second.

use crate::error::ParamError;

/// Refresh costs and derived cost factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    c_vr: f64,
    c_qr: f64,
}

impl CostModel {
    /// Construct a cost model; both costs must be strictly positive and
    /// finite.
    pub fn new(c_vr: f64, c_qr: f64) -> Result<Self, ParamError> {
        if !(c_vr.is_finite() && c_vr > 0.0) {
            return Err(ParamError::NonPositiveCost { which: "C_vr", value: c_vr });
        }
        if !(c_qr.is_finite() && c_qr > 0.0) {
            return Err(ParamError::NonPositiveCost { which: "C_qr", value: c_qr });
        }
        Ok(CostModel { c_vr, c_qr })
    }

    /// Network model under two-phase locking (paper, Section 4.3): a remote
    /// read is one round trip (`C_qr = 2` messages) and a consistent update
    /// installation is two round trips (`C_vr = 4`), giving `θ = 4`.
    pub fn two_phase_locking() -> Self {
        CostModel { c_vr: 4.0, c_qr: 2.0 }
    }

    /// Network model under multiversion / loose consistency (paper,
    /// Section 4.3): updates are simply sent to the cache (`C_vr = 1`),
    /// remote reads are one round trip (`C_qr = 2`), giving `θ = 1`.
    pub fn multiversion() -> Self {
        CostModel { c_vr: 1.0, c_qr: 2.0 }
    }

    /// Cost of one value-initiated refresh.
    #[inline]
    pub fn c_vr(&self) -> f64 {
        self.c_vr
    }

    /// Cost of one query-initiated refresh.
    #[inline]
    pub fn c_qr(&self) -> f64 {
        self.c_qr
    }

    /// The cost factor `θ = 2·C_vr / C_qr` used by the interval algorithm.
    ///
    /// The factor 2 comes from the random-walk analysis (Section 3 /
    /// Appendix A): for data whose value wanders, `P_vr ∝ 1/W²`, and
    /// minimizing `Ω(W)` places the optimum where `θ·P_vr = P_qr`.
    #[inline]
    pub fn theta(&self) -> f64 {
        2.0 * self.c_vr / self.c_qr
    }

    /// The cost factor `θ' = C_vr / C_qr` for *monotonic* deviation metrics
    /// such as Divergence Caching's stale-value approximations (paper,
    /// Section 4.7): there `P_vr ∝ 1/W`, which shifts the optimum to
    /// `θ'·P_vr = P_qr`.
    #[inline]
    pub fn theta_monotonic(&self) -> f64 {
        self.c_vr / self.c_qr
    }

    /// Construct a cost model that yields exactly the given `θ` with
    /// `C_qr = 2` (the paper's remote-read cost).
    pub fn from_theta(theta: f64) -> Result<Self, ParamError> {
        if !(theta.is_finite() && theta > 0.0) {
            return Err(ParamError::InvalidTheta(theta));
        }
        CostModel::new(theta, 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_costs() {
        assert!(CostModel::new(1.0, 2.0).is_ok());
        assert!(CostModel::new(0.0, 2.0).is_err());
        assert!(CostModel::new(1.0, -1.0).is_err());
        assert!(CostModel::new(f64::NAN, 1.0).is_err());
        assert!(CostModel::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn paper_presets() {
        let tpl = CostModel::two_phase_locking();
        assert_eq!(tpl.c_vr(), 4.0);
        assert_eq!(tpl.c_qr(), 2.0);
        assert_eq!(tpl.theta(), 4.0);

        let mv = CostModel::multiversion();
        assert_eq!(mv.c_vr(), 1.0);
        assert_eq!(mv.c_qr(), 2.0);
        assert_eq!(mv.theta(), 1.0);
        assert_eq!(mv.theta_monotonic(), 0.5);
    }

    #[test]
    fn from_theta_round_trips() {
        for theta in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let cm = CostModel::from_theta(theta).unwrap();
            assert!((cm.theta() - theta).abs() < 1e-12);
        }
        assert!(CostModel::from_theta(0.0).is_err());
        assert!(CostModel::from_theta(f64::NAN).is_err());
    }
}
