//! Cache-side protocol object.
//!
//! A [`Cache`] holds up to `κ` approximations. When space runs out it
//! evicts the entry with the *widest internal width* — "the least precise
//! approximations … contribute least to overall cache precision" (paper,
//! Section 2). Eviction decisions use original (internal) widths, not the
//! 0/∞ widths produced by thresholds, and no notification is sent to
//! sources; an evicted approximation that incurs a refresh may be
//! re-admitted if it is no longer the widest.
//!
//! **Unbounded** caches store entries in a dense slot table indexed by
//! the key's protocol id — [`Key`]s are interned, dense ids throughout
//! the workspace (the store allocates them `0, 1, 2, …`), so the hot
//! read path costs one bounds-checked index instead of a hash lookup.
//! Callers minting their own [`Key`]s should keep the ids dense: the
//! table grows to the largest id ever cached.
//!
//! **κ-bounded** caches route through an id → slot indirection instead:
//! at most `κ` slots are ever allocated, reused through a free list, so
//! eviction churn over a million-key registered population keeps the
//! cache's footprint at O(κ), not O(largest id) — the dense table would
//! otherwise grow to the whole key space while holding κ residents. The
//! lookup pays one hash, which a bounded cache already tolerates (its
//! misses dominate); the unbounded hot path keeps the dense table.

use std::collections::{BTreeSet, HashMap};

use crate::error::ProtocolError;
use crate::interval::Interval;
use crate::policy::ApproxSpec;
use crate::source::Refresh;
use crate::{CacheId, Key, TimeMs};

/// A cached approximation plus its eviction ordering key.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The approximation installed by the last refresh.
    pub spec: ApproxSpec,
    /// The source policy's internal width at refresh time.
    pub internal_width: f64,
}

/// Outcome of applying a refresh message to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// The key was already cached; its entry was replaced in place.
    Updated,
    /// The key was admitted into spare capacity.
    Inserted,
    /// The key was admitted and the given key was evicted to make room.
    InsertedEvicting(Key),
    /// The cache is full and the new approximation is at least as wide as
    /// every resident entry; it stays uncached (paper: "the modified
    /// approximation may still be the widest and remain uncached").
    Rejected,
}

/// Total-order key for widths inside the eviction index. `f64::total_cmp`
/// gives a total order; constructors reject NaN widths so the exotic
/// orderings never arise.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdWidth(f64);

impl Eq for OrdWidth {}

impl PartialOrd for OrdWidth {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdWidth {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Entry storage: dense for unbounded caches (id-indexed, zero hashing
/// on the hot path), indirected for κ-bounded caches (at most κ slots
/// ever allocated, ids resolved through a resident-only hash index).
#[derive(Debug)]
enum Slots {
    /// Dense slot table indexed by `Key::0`; `None` marks uncached ids.
    /// Grows to the largest id ever cached — only safe when the cache
    /// holds (close to) the whole registered population anyway.
    Dense(Vec<Option<CacheEntry>>),
    /// κ-bounded indirection: `index[id] → slot`, `entries[slot]` holds
    /// `(key, entry)`, and vacated slots are recycled through `free`.
    /// `entries.len()` never exceeds κ, whatever the id range.
    Bounded {
        /// Resident ids only: `Key::0` → slot in `entries`.
        index: HashMap<u32, u32>,
        /// Slot storage; `None` marks a freed slot awaiting reuse.
        entries: Vec<Option<(Key, CacheEntry)>>,
        /// Freed slot indices, popped before `entries` grows.
        free: Vec<u32>,
    },
}

/// Bounded store of interval approximations with widest-first eviction.
///
/// Unbounded caches key a dense slot table by interned id, so reads are
/// one bounds-checked index (no hashing on the hot path); κ-bounded
/// caches resolve ids through an indirection whose storage stays O(κ)
/// regardless of the registered key population (see the module docs).
#[derive(Debug)]
pub struct Cache {
    id: CacheId,
    capacity: usize,
    slots: Slots,
    /// Number of resident approximations (`<= capacity`).
    len: usize,
    /// Secondary index ordered by (internal width, key) for O(log n)
    /// widest-entry lookup. Kept strictly in sync with `slots`.
    by_width: BTreeSet<(OrdWidth, Key)>,
}

impl Cache {
    /// Create a cache holding at most `capacity >= 1` approximations.
    /// Bounded caches store entries behind an id → slot indirection so
    /// their footprint is O(κ) even under eviction churn across a huge
    /// key space.
    pub fn new(id: CacheId, capacity: usize) -> Result<Self, ProtocolError> {
        if capacity == 0 {
            return Err(ProtocolError::ZeroCapacity);
        }
        let slots = if capacity == usize::MAX {
            Slots::Dense(Vec::new())
        } else {
            Slots::Bounded { index: HashMap::new(), entries: Vec::new(), free: Vec::new() }
        };
        Ok(Cache { id, capacity, slots, len: 0, by_width: BTreeSet::new() })
    }

    /// Create a cache that never evicts (capacity `usize::MAX`), stored
    /// densely: the whole population is expected to become resident, so
    /// the id-indexed table is the fastest and tightest layout.
    pub fn unbounded(id: CacheId) -> Self {
        Cache {
            id,
            capacity: usize::MAX,
            slots: Slots::Dense(Vec::new()),
            len: 0,
            by_width: BTreeSet::new(),
        }
    }

    /// This cache's identifier.
    pub fn id(&self) -> CacheId {
        self.id
    }

    /// Configured capacity `κ`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached approximations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` is currently cached.
    pub fn contains(&self, key: Key) -> bool {
        self.get(key).is_some()
    }

    /// The cached entry for `key`, if any.
    #[inline]
    pub fn get(&self, key: Key) -> Option<&CacheEntry> {
        match &self.slots {
            Slots::Dense(slots) => slots.get(key.0 as usize).and_then(Option::as_ref),
            Slots::Bounded { index, entries, .. } => index
                .get(&key.0)
                .and_then(|&slot| entries[slot as usize].as_ref())
                .map(|(_, entry)| entry),
        }
    }

    /// Mutable access to the cached entry for `key`, if any.
    fn get_mut(&mut self, key: Key) -> Option<&mut CacheEntry> {
        match &mut self.slots {
            Slots::Dense(slots) => slots.get_mut(key.0 as usize).and_then(Option::as_mut),
            Slots::Bounded { index, entries, .. } => index
                .get(&key.0)
                .and_then(|&slot| entries[slot as usize].as_mut())
                .map(|(_, entry)| entry),
        }
    }

    /// The concrete interval for `key` at time `now`; `None` if uncached.
    #[inline]
    pub fn interval_at(&self, key: Key, now: TimeMs) -> Option<Interval> {
        self.get(key).map(|e| e.spec.interval_at(now))
    }

    /// Width offered for `key` at time `now`. Uncached keys offer no
    /// information, i.e. infinite width (queries must bypass the cache).
    pub fn width_at(&self, key: Key, now: TimeMs) -> f64 {
        match self.get(key) {
            Some(e) => e.spec.width_at(now),
            None => f64::INFINITY,
        }
    }

    /// Iterate over cached (key, entry) pairs in ascending key order.
    /// (Bounded caches sort their κ residents per call; the dense table
    /// iterates in place.)
    pub fn iter(&self) -> impl Iterator<Item = (Key, &CacheEntry)> {
        let mut pairs: Vec<(Key, &CacheEntry)> = match &self.slots {
            Slots::Dense(slots) => slots
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| slot.as_ref().map(|e| (Key(i as u32), e)))
                .collect(),
            Slots::Bounded { entries, .. } => {
                entries.iter().filter_map(|slot| slot.as_ref().map(|(k, e)| (*k, e))).collect()
            }
        };
        if matches!(self.slots, Slots::Bounded { .. }) {
            pairs.sort_unstable_by_key(|(k, _)| *k);
        }
        pairs.into_iter()
    }

    /// Number of slots the entry storage has allocated — the footprint
    /// diagnostic the κ-bound regression test asserts on: for bounded
    /// caches this never exceeds κ, however large the id space the cache
    /// has churned through; for unbounded caches it tracks the largest
    /// cached id (the whole population is expected resident).
    pub fn slot_table_len(&self) -> usize {
        match &self.slots {
            Slots::Dense(slots) => slots.len(),
            Slots::Bounded { entries, .. } => entries.len(),
        }
    }

    /// The currently widest entry (the eviction candidate).
    pub fn widest(&self) -> Option<(Key, f64)> {
        self.by_width.iter().next_back().map(|&(OrdWidth(w), k)| (k, w))
    }

    /// Apply a refresh message, enforcing capacity with widest-first
    /// eviction.
    pub fn apply_refresh(&mut self, refresh: Refresh) -> AdmitOutcome {
        let Refresh { key, spec, internal_width } = refresh;
        debug_assert!(!internal_width.is_nan(), "internal widths are never NaN");
        let entry = CacheEntry { spec, internal_width };
        if let Some(existing) = self.get_mut(key) {
            let old_width = existing.internal_width;
            *existing = entry;
            self.by_width.remove(&(OrdWidth(old_width), key));
            self.by_width.insert((OrdWidth(internal_width), key));
            return AdmitOutcome::Updated;
        }
        if self.len < self.capacity {
            self.install(key, entry);
            return AdmitOutcome::Inserted;
        }
        // Full: admit only if strictly narrower than the widest resident.
        let Some(&(OrdWidth(max_width), victim)) = self.by_width.iter().next_back() else {
            // capacity >= 1 and entries empty is handled above.
            return AdmitOutcome::Rejected;
        };
        if internal_width < max_width {
            self.remove(victim);
            self.install(key, entry);
            AdmitOutcome::InsertedEvicting(victim)
        } else {
            AdmitOutcome::Rejected
        }
    }

    /// Place `entry` into the (vacant) slot for `key` and index its
    /// width. Dense tables grow to reach the id; bounded tables recycle a
    /// freed slot before allocating, so their storage stays ≤ κ.
    fn install(&mut self, key: Key, entry: CacheEntry) {
        self.by_width.insert((OrdWidth(entry.internal_width), key));
        match &mut self.slots {
            Slots::Dense(slots) => {
                let slot = key.0 as usize;
                if slot >= slots.len() {
                    slots.resize_with(slot + 1, || None);
                }
                slots[slot] = Some(entry);
            }
            Slots::Bounded { index, entries, free } => {
                let slot = match free.pop() {
                    Some(slot) => slot,
                    None => {
                        entries.push(None);
                        (entries.len() - 1) as u32
                    }
                };
                entries[slot as usize] = Some((key, entry));
                index.insert(key.0, slot);
            }
        }
        self.len += 1;
    }

    /// Widen `key`'s cached interval to at least `width`, keeping it
    /// centered where it is — the truth-preserving degradation a lapsed
    /// TTL lease applies (the exact value provably lies inside the old
    /// interval, hence inside any widening of it). Returns the new
    /// interval, or `None` when the key is uncached or already at least
    /// that wide (widening never fabricates precision). The entry's
    /// internal width — the eviction ordering key — grows to match, so a
    /// degraded approximation is also the first eviction candidate.
    pub fn widen(&mut self, key: Key, width: f64, now: TimeMs) -> Option<Interval> {
        debug_assert!(!width.is_nan() && width >= 0.0);
        let entry = self.get(key)?;
        let current = entry.spec.interval_at(now);
        if current.width() >= width {
            return None;
        }
        // current.width() < width ≤ ∞ means both bounds are finite.
        let center = current.center().expect("finite-width interval has a center");
        let widened = Interval::centered(center, width).unwrap_or_else(|_| Interval::unbounded());
        let old_internal = entry.internal_width;
        let new_internal = old_internal.max(width);
        let entry = self.get_mut(key).expect("entry present above");
        entry.spec = ApproxSpec::Constant(widened);
        entry.internal_width = new_internal;
        self.by_width.remove(&(OrdWidth(old_internal), key));
        self.by_width.insert((OrdWidth(new_internal), key));
        Some(widened)
    }

    /// Remove an entry (used by eviction and by baseline protocols that
    /// drop replicas explicitly). Returns the removed entry.
    pub fn remove(&mut self, key: Key) -> Option<CacheEntry> {
        let entry = match &mut self.slots {
            Slots::Dense(slots) => slots.get_mut(key.0 as usize)?.take()?,
            Slots::Bounded { index, entries, free } => {
                let slot = index.remove(&key.0)?;
                free.push(slot);
                entries[slot as usize].take().expect("indexed slot occupied").1
            }
        };
        self.len -= 1;
        let removed = self.by_width.remove(&(OrdWidth(entry.internal_width), key));
        debug_assert!(removed, "width index out of sync for {key}");
        Some(entry)
    }

    /// Drop every entry (the slot storage keeps its allocation).
    pub fn clear(&mut self) {
        match &mut self.slots {
            Slots::Dense(slots) => slots.iter_mut().for_each(|slot| *slot = None),
            Slots::Bounded { index, entries, free } => {
                index.clear();
                free.clear();
                free.extend(0..entries.len() as u32);
                entries.iter_mut().for_each(|slot| *slot = None);
            }
        }
        self.len = 0;
        self.by_width.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refresh(key: u32, center: f64, width: f64) -> Refresh {
        Refresh {
            key: Key(key),
            spec: ApproxSpec::constant_centered(center, width),
            internal_width: width,
        }
    }

    #[test]
    fn capacity_validation() {
        assert!(Cache::new(CacheId(0), 0).is_err());
        assert!(Cache::new(CacheId(0), 1).is_ok());
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = Cache::new(CacheId(0), 4).unwrap();
        assert_eq!(c.apply_refresh(refresh(1, 10.0, 2.0)), AdmitOutcome::Inserted);
        assert!(c.contains(Key(1)));
        assert_eq!(c.width_at(Key(1), 0), 2.0);
        assert_eq!(c.width_at(Key(2), 0), f64::INFINITY);
        let iv = c.interval_at(Key(1), 0).unwrap();
        assert_eq!((iv.lo(), iv.hi()), (9.0, 11.0));
    }

    #[test]
    fn update_in_place_adjusts_width_index() {
        let mut c = Cache::new(CacheId(0), 2).unwrap();
        c.apply_refresh(refresh(1, 0.0, 10.0));
        c.apply_refresh(refresh(2, 0.0, 5.0));
        assert_eq!(c.widest(), Some((Key(1), 10.0)));
        assert_eq!(c.apply_refresh(refresh(1, 0.0, 1.0)), AdmitOutcome::Updated);
        assert_eq!(c.widest(), Some((Key(2), 5.0)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_widest_when_full() {
        let mut c = Cache::new(CacheId(0), 2).unwrap();
        c.apply_refresh(refresh(1, 0.0, 10.0));
        c.apply_refresh(refresh(2, 0.0, 5.0));
        // Narrower than the widest (10) → evict key 1.
        assert_eq!(c.apply_refresh(refresh(3, 0.0, 7.0)), AdmitOutcome::InsertedEvicting(Key(1)));
        assert!(!c.contains(Key(1)));
        assert!(c.contains(Key(2)));
        assert!(c.contains(Key(3)));
    }

    #[test]
    fn rejects_widest_newcomer() {
        let mut c = Cache::new(CacheId(0), 2).unwrap();
        c.apply_refresh(refresh(1, 0.0, 10.0));
        c.apply_refresh(refresh(2, 0.0, 5.0));
        // As wide as the current widest → stays uncached.
        assert_eq!(c.apply_refresh(refresh(3, 0.0, 10.0)), AdmitOutcome::Rejected);
        assert_eq!(c.len(), 2);
        assert!(!c.contains(Key(3)));
        // Strictly wider is also rejected.
        assert_eq!(c.apply_refresh(refresh(4, 0.0, 11.0)), AdmitOutcome::Rejected);
    }

    #[test]
    fn eviction_uses_internal_not_effective_width() {
        // An entry snapped to width 0 (exact) can still be the eviction
        // victim if its internal width is the largest.
        let mut c = Cache::new(CacheId(0), 2).unwrap();
        let snapped = Refresh {
            key: Key(1),
            spec: ApproxSpec::constant_centered(0.0, 0.0), // effective: exact
            internal_width: 100.0,                         // internal: huge
        };
        c.apply_refresh(snapped);
        c.apply_refresh(refresh(2, 0.0, 5.0));
        assert_eq!(c.apply_refresh(refresh(3, 0.0, 7.0)), AdmitOutcome::InsertedEvicting(Key(1)));
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut c = Cache::unbounded(CacheId(0));
        for i in 0..1000 {
            assert_eq!(c.apply_refresh(refresh(i, 0.0, i as f64)), AdmitOutcome::Inserted);
        }
        assert_eq!(c.len(), 1000);
    }

    #[test]
    fn remove_and_clear_keep_index_consistent() {
        let mut c = Cache::new(CacheId(0), 4).unwrap();
        c.apply_refresh(refresh(1, 0.0, 3.0));
        c.apply_refresh(refresh(2, 0.0, 9.0));
        let e = c.remove(Key(2)).unwrap();
        assert_eq!(e.internal_width, 9.0);
        assert_eq!(c.widest(), Some((Key(1), 3.0)));
        assert!(c.remove(Key(2)).is_none());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.widest(), None);
    }

    #[test]
    fn width_ties_break_by_key_deterministically() {
        let mut c = Cache::new(CacheId(0), 2).unwrap();
        c.apply_refresh(refresh(1, 0.0, 5.0));
        c.apply_refresh(refresh(2, 0.0, 5.0));
        // Tie on width: the larger key sorts last in the BTreeSet and is
        // the designated victim.
        assert_eq!(c.widest(), Some((Key(2), 5.0)));
        assert_eq!(c.apply_refresh(refresh(3, 0.0, 4.0)), AdmitOutcome::InsertedEvicting(Key(2)));
    }

    #[test]
    fn bounded_slot_storage_stays_within_kappa_under_churn() {
        // The κ-bound regression (ROADMAP "capacity-bounded caches at
        // million-key scale"): a κ=8 cache churned across a ~1M-id key
        // space must keep its slot storage at O(κ), not O(largest id).
        const KAPPA: usize = 8;
        let mut c = Cache::new(CacheId(0), KAPPA).unwrap();
        let mut admitted = 0u64;
        for round in 0u32..2_000 {
            // Ever-increasing ids, ever-narrowing widths, so each refresh
            // evicts the widest resident — maximum churn.
            let id = round * 499 + 1; // sparse ids up to ~1M
            let width = 1_000.0 / f64::from(round + 1);
            match c.apply_refresh(refresh(id, 0.0, width)) {
                AdmitOutcome::Inserted | AdmitOutcome::InsertedEvicting(_) => admitted += 1,
                AdmitOutcome::Updated | AdmitOutcome::Rejected => {}
            }
            assert!(c.len() <= KAPPA);
            assert!(
                c.slot_table_len() <= KAPPA,
                "slot storage {} exceeded κ={KAPPA} at round {round}",
                c.slot_table_len()
            );
        }
        assert!(admitted >= 1_000, "churn actually exercised eviction");
        assert_eq!(c.len(), KAPPA);
        // The width index survived the churn: residents and index agree.
        assert_eq!(c.iter().count(), KAPPA);
        let widest = c.widest().unwrap();
        assert!(c.contains(widest.0));
        // clear() recycles the slots instead of leaking them.
        c.clear();
        assert_eq!(c.len(), 0);
        c.apply_refresh(refresh(999_983, 0.0, 1.0));
        assert!(c.slot_table_len() <= KAPPA);
        // An unbounded cache keeps the dense layout (and its id-sized
        // table) — the documented trade.
        let mut dense = Cache::unbounded(CacheId(1));
        dense.apply_refresh(refresh(10_000, 0.0, 1.0));
        assert_eq!(dense.slot_table_len(), 10_001);
    }

    #[test]
    fn bounded_iter_is_key_ordered_after_churn() {
        let mut c = Cache::new(CacheId(0), 4).unwrap();
        for id in [70u32, 10, 50, 30, 90, 20] {
            c.apply_refresh(refresh(id, 0.0, f64::from(id)));
        }
        let keys: Vec<u32> = c.iter().map(|(k, _)| k.0).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn widen_degrades_in_place_and_reorders_eviction() {
        let mut c = Cache::new(CacheId(0), 2).unwrap();
        c.apply_refresh(refresh(1, 10.0, 2.0));
        c.apply_refresh(refresh(2, 0.0, 5.0));
        // Narrower or equal targets are no-ops.
        assert!(c.widen(Key(1), 2.0, 0).is_none());
        assert!(c.widen(Key(1), 1.0, 0).is_none());
        assert!(c.widen(Key(9), 50.0, 0).is_none(), "uncached");
        // Widening keeps the center and grows the eviction key.
        let iv = c.widen(Key(1), 8.0, 0).unwrap();
        assert_eq!((iv.lo(), iv.hi()), (6.0, 14.0));
        assert_eq!(c.widest(), Some((Key(1), 8.0)));
        // Unbounded fallback: the interval claims nothing, and the entry
        // is now the designated eviction victim.
        let iv = c.widen(Key(1), f64::INFINITY, 0).unwrap();
        assert!(iv.is_unbounded());
        assert!(c.widen(Key(1), f64::INFINITY, 0).is_none(), "already unbounded");
        assert_eq!(c.apply_refresh(refresh(3, 0.0, 4.0)), AdmitOutcome::InsertedEvicting(Key(1)));
    }

    #[test]
    fn evicted_entry_readmitted_when_narrower() {
        // Paper: an evicted approximation that incurs a refresh may be
        // cached again, evicting another.
        let mut c = Cache::new(CacheId(0), 2).unwrap();
        c.apply_refresh(refresh(1, 0.0, 10.0));
        c.apply_refresh(refresh(2, 0.0, 8.0));
        assert_eq!(c.apply_refresh(refresh(3, 0.0, 9.0)), AdmitOutcome::InsertedEvicting(Key(1)));
        // Key 1 refreshes again, now narrow → re-admitted, evicting key 3.
        assert_eq!(c.apply_refresh(refresh(1, 0.0, 2.0)), AdmitOutcome::InsertedEvicting(Key(3)));
        assert!(c.contains(Key(1)));
        assert!(c.contains(Key(2)));
    }
}
