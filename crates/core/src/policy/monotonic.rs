//! Low-anchored intervals for monotonic deviation metrics (Sections 2.1
//! and 4.7).
//!
//! Stale-value approximations bound a quantity that only moves *up* — the
//! number of source updates not yet reflected at the cache. Centering an
//! interval on such a counter wastes its entire lower half, so this policy
//! anchors the interval at the current value instead: a refresh at counter
//! value `V` installs `[V, V + W]`, which stays valid for the next `⌊W⌋`
//! updates.
//!
//! Because escape is deterministic rather than diffusive (`P_vr ∝ 1/W`
//! instead of `1/W²`), the matching cost factor is the monotonic one,
//! `θ' = C_vr/C_qr` — construct the parameters with
//! [`AdaptiveParams::monotonic`]. The width adaptation itself is unchanged
//! from [`AdaptivePolicy`](super::AdaptivePolicy): grow by `(1+α)` on
//! value-initiated refreshes, shrink on query-initiated ones.

use super::{AdaptiveParams, AdaptivePolicy, ApproxSpec, Escape, PrecisionPolicy};
use crate::error::ParamError;
use crate::interval::Interval;
use crate::rng::Rng;
use crate::TimeMs;

/// The adaptive policy with intervals anchored at the value: refreshes
/// install `[V, V + W]` rather than `[V − W/2, V + W/2]`.
#[derive(Debug, Clone)]
pub struct MonotonicPolicy {
    inner: AdaptivePolicy,
}

impl MonotonicPolicy {
    /// Create the policy; `params` should normally carry the monotonic cost
    /// factor `θ' = C_vr/C_qr` (see [`AdaptiveParams::monotonic`]).
    pub fn new(params: AdaptiveParams, initial_width: f64) -> Result<Self, ParamError> {
        Ok(MonotonicPolicy { inner: AdaptivePolicy::new(params, initial_width)? })
    }

    /// The parameters this policy runs with.
    pub fn params(&self) -> &AdaptiveParams {
        self.inner.params()
    }
}

impl PrecisionPolicy for MonotonicPolicy {
    fn on_value_refresh(&mut self, escape: Escape, rng: &mut Rng) {
        self.inner.on_value_refresh(escape, rng);
    }

    fn on_query_refresh(&mut self, rng: &mut Rng) {
        self.inner.on_query_refresh(rng);
    }

    fn internal_width(&self) -> f64 {
        self.inner.internal_width()
    }

    fn effective_width(&self) -> f64 {
        self.inner.effective_width()
    }

    fn make_spec(&self, value: f64, _now: TimeMs) -> ApproxSpec {
        let w = self.effective_width();
        if w.is_infinite() {
            return ApproxSpec::Constant(Interval::unbounded());
        }
        match Interval::new(value, value + w) {
            Ok(iv) => ApproxSpec::Constant(iv),
            Err(_) => ApproxSpec::Constant(Interval::unbounded()),
        }
    }

    fn export_state(&self) -> Vec<f64> {
        self.inner.export_state()
    }

    fn restore_state(&mut self, words: &[f64]) -> bool {
        self.inner.restore_state(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn policy(width: f64) -> MonotonicPolicy {
        let cost = CostModel::new(1.0, 2.0).unwrap();
        let params = AdaptiveParams::monotonic(&cost, 1.0).unwrap();
        MonotonicPolicy::new(params, width).unwrap()
    }

    #[test]
    fn spec_is_low_anchored() {
        let p = policy(4.0);
        let iv = p.make_spec(10.0, 0).interval_at(0);
        assert_eq!((iv.lo(), iv.hi()), (10.0, 14.0));
        // The anchor value itself is always valid.
        assert!(iv.contains(10.0));
        // ... and so are the next floor(W) increments, but not W + 1.
        assert!(iv.contains(14.0));
        assert!(!iv.contains(14.5));
    }

    #[test]
    fn monotonic_theta_shrinks_every_qr() {
        // θ' = 0.5 < 1 ⇒ shrink probability is 1: deterministic halving.
        let mut p = policy(8.0);
        let mut rng = Rng::seed_from_u64(0);
        p.on_query_refresh(&mut rng);
        assert_eq!(p.internal_width(), 4.0);
    }

    #[test]
    fn snapped_zero_width_is_exact_anchor() {
        let cost = CostModel::new(1.0, 2.0).unwrap();
        let params = AdaptiveParams::monotonic(&cost, 1.0)
            .unwrap()
            .with_thresholds(1.0, f64::INFINITY)
            .unwrap();
        let p = MonotonicPolicy::new(params, 0.5).unwrap();
        let iv = p.make_spec(3.0, 0).interval_at(0);
        assert!(iv.is_exact());
        assert_eq!(iv.lo(), 3.0);
    }

    #[test]
    fn snapped_infinite_width_is_unbounded() {
        let cost = CostModel::new(1.0, 2.0).unwrap();
        let params =
            AdaptiveParams::monotonic(&cost, 1.0).unwrap().with_thresholds(0.0, 4.0).unwrap();
        let p = MonotonicPolicy::new(params, 100.0).unwrap();
        assert!(p.make_spec(3.0, 0).interval_at(0).is_unbounded());
    }
}
