//! Refresh-history window (Section 4.5, third unsuccessful variation).
//!
//! Instead of reacting to each refresh individually (`r = 1`), this variant
//! looks at the last `r` refreshes and grows the width if the majority were
//! value-initiated, shrinking it otherwise. The paper also tried weighting
//! recent refreshes more heavily; both options are provided. None of these
//! schemes beat the `r = 1` algorithm in the paper's experiments — the
//! ablation bench reproduces that comparison.

use std::collections::VecDeque;

use super::{apply_thresholds, clamp_internal, Escape, PrecisionPolicy, RefreshKind};
use crate::error::ParamError;
use crate::policy::AdaptiveParams;
use crate::rng::Rng;

/// How refreshes inside the window are weighted when voting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Weighting {
    /// Every refresh in the window counts equally.
    Uniform,
    /// Refresh `i` positions back is weighted `decay^i` (`0 < decay < 1`),
    /// so recent refreshes dominate.
    Exponential {
        /// Per-position decay factor.
        decay: f64,
    },
}

/// Adaptive policy driven by a majority vote over the last `r` refreshes.
#[derive(Debug, Clone)]
pub struct HistoryPolicy {
    params: AdaptiveParams,
    width: f64,
    window: VecDeque<RefreshKind>,
    r: usize,
    weighting: Weighting,
}

impl HistoryPolicy {
    /// Create a history policy with window size `r >= 1`.
    ///
    /// With `r = 1` and uniform weighting this is exactly the paper's main
    /// algorithm (verified by test and by the ablation bench).
    pub fn new(
        params: AdaptiveParams,
        initial_width: f64,
        r: usize,
        weighting: Weighting,
    ) -> Result<Self, ParamError> {
        if r == 0 {
            return Err(ParamError::EmptyHistoryWindow);
        }
        if !(initial_width.is_finite() && initial_width > 0.0) {
            return Err(ParamError::InvalidWidth(initial_width));
        }
        if let Weighting::Exponential { decay } = weighting {
            if !(decay > 0.0 && decay < 1.0) {
                return Err(ParamError::InvalidModelConstant { which: "decay", value: decay });
            }
        }
        Ok(HistoryPolicy {
            params,
            width: clamp_internal(initial_width),
            window: VecDeque::with_capacity(r),
            r,
            weighting,
        })
    }

    /// Record a refresh and return whether the (weighted) majority of the
    /// window is value-initiated. Ties favour shrinking, matching the
    /// "otherwise, the width is decreased" rule in the paper.
    fn record_and_vote(&mut self, kind: RefreshKind) -> bool {
        if self.window.len() == self.r {
            self.window.pop_front();
        }
        self.window.push_back(kind);
        let mut vr_weight = 0.0;
        let mut qr_weight = 0.0;
        // Most recent refresh is at the back; position 0 = most recent.
        for (i, k) in self.window.iter().rev().enumerate() {
            let w = match self.weighting {
                Weighting::Uniform => 1.0,
                Weighting::Exponential { decay } => decay.powi(i as i32),
            };
            match k {
                RefreshKind::ValueInitiated => vr_weight += w,
                RefreshKind::QueryInitiated => qr_weight += w,
            }
        }
        vr_weight > qr_weight
    }

    /// Apply the voted adjustment with the usual θ-gated probabilities.
    fn adjust(&mut self, majority_vr: bool, rng: &mut Rng) {
        if majority_vr {
            if rng.bernoulli(self.params.grow_probability()) {
                self.width = clamp_internal(self.width * self.params.step());
            }
        } else if rng.bernoulli(self.params.shrink_probability()) {
            self.width = clamp_internal(self.width / self.params.step());
        }
    }

    /// Window size `r`.
    pub fn window_size(&self) -> usize {
        self.r
    }
}

impl PrecisionPolicy for HistoryPolicy {
    fn on_value_refresh(&mut self, _escape: Escape, rng: &mut Rng) {
        let majority_vr = self.record_and_vote(RefreshKind::ValueInitiated);
        self.adjust(majority_vr, rng);
    }

    fn on_query_refresh(&mut self, rng: &mut Rng) {
        let majority_vr = self.record_and_vote(RefreshKind::QueryInitiated);
        self.adjust(majority_vr, rng);
    }

    fn internal_width(&self) -> f64 {
        self.width
    }

    fn effective_width(&self) -> f64 {
        apply_thresholds(self.width, self.params.gamma0(), self.params.gamma1())
    }

    fn export_state(&self) -> Vec<f64> {
        // `[width, votes...]`, oldest vote first; VR = 1.0, QR = 0.0.
        let mut words = Vec::with_capacity(1 + self.window.len());
        words.push(self.width);
        words.extend(self.window.iter().map(|k| match k {
            RefreshKind::ValueInitiated => 1.0,
            RefreshKind::QueryInitiated => 0.0,
        }));
        words
    }

    fn restore_state(&mut self, words: &[f64]) -> bool {
        let Some((&w, votes)) = words.split_first() else {
            return false;
        };
        if !(w.is_finite() && w > 0.0) || votes.len() > self.r {
            return false;
        }
        let mut window = VecDeque::with_capacity(self.r);
        for &v in votes {
            if v == 1.0 {
                window.push_back(RefreshKind::ValueInitiated);
            } else if v == 0.0 {
                window.push_back(RefreshKind::QueryInitiated);
            } else {
                return false;
            }
        }
        self.width = clamp_internal(w);
        self.window = window;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AdaptivePolicy;

    fn params() -> AdaptiveParams {
        AdaptiveParams::from_theta(1.0, 1.0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(HistoryPolicy::new(params(), 8.0, 0, Weighting::Uniform).is_err());
        assert!(HistoryPolicy::new(params(), 0.0, 3, Weighting::Uniform).is_err());
        assert!(
            HistoryPolicy::new(params(), 8.0, 3, Weighting::Exponential { decay: 1.5 }).is_err()
        );
        assert!(HistoryPolicy::new(params(), 8.0, 3, Weighting::Exponential { decay: 0.5 }).is_ok());
    }

    #[test]
    fn r_one_matches_main_algorithm() {
        let mut hist = HistoryPolicy::new(params(), 8.0, 1, Weighting::Uniform).unwrap();
        let mut main = AdaptivePolicy::new(params(), 8.0).unwrap();
        let mut rng_a = Rng::seed_from_u64(77);
        let mut rng_b = Rng::seed_from_u64(77);
        for i in 0..1000 {
            if i % 3 == 0 {
                hist.on_value_refresh(Escape::Above, &mut rng_a);
                main.on_value_refresh(Escape::Above, &mut rng_b);
            } else {
                hist.on_query_refresh(&mut rng_a);
                main.on_query_refresh(&mut rng_b);
            }
            assert_eq!(hist.internal_width(), main.internal_width(), "step {i}");
        }
    }

    #[test]
    fn majority_vote_with_window_three() {
        let mut p = HistoryPolicy::new(params(), 8.0, 3, Weighting::Uniform).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        // Window [VR] → majority VR → grow to 16.
        p.on_value_refresh(Escape::Above, &mut rng);
        assert_eq!(p.internal_width(), 16.0);
        // Window [VR, QR] → tie → shrink to 8.
        p.on_query_refresh(&mut rng);
        assert_eq!(p.internal_width(), 8.0);
        // Window [VR, QR, VR] → majority VR → grow even though this event
        // is... a VR. Grow to 16.
        p.on_value_refresh(Escape::Above, &mut rng);
        assert_eq!(p.internal_width(), 16.0);
        // Window [QR, VR, QR] → majority QR → shrink.
        p.on_query_refresh(&mut rng);
        assert_eq!(p.internal_width(), 8.0);
    }

    #[test]
    fn vote_can_override_current_event() {
        // Two VRs then a QR with r=3: majority is still VR, so the width
        // GROWS on a query-initiated refresh — the defining difference
        // from the r=1 algorithm.
        let mut p = HistoryPolicy::new(params(), 8.0, 3, Weighting::Uniform).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        p.on_value_refresh(Escape::Above, &mut rng); // 16
        p.on_value_refresh(Escape::Above, &mut rng); // 32
        p.on_query_refresh(&mut rng); // majority VR → 64
        assert_eq!(p.internal_width(), 64.0);
    }

    #[test]
    fn exponential_weighting_favours_recent() {
        // Window [VR, VR, QR] with strong decay: the latest QR outweighs
        // the two older VRs, so the vote is QR and the width shrinks.
        let mut p =
            HistoryPolicy::new(params(), 8.0, 3, Weighting::Exponential { decay: 0.1 }).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        p.on_value_refresh(Escape::Above, &mut rng); // 16
        p.on_value_refresh(Escape::Above, &mut rng); // 32
        p.on_query_refresh(&mut rng); // weights: QR=1, VR=0.1+0.01 → shrink
        assert_eq!(p.internal_width(), 16.0);
    }

    #[test]
    fn window_is_bounded() {
        let mut p = HistoryPolicy::new(params(), 8.0, 5, Weighting::Uniform).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..100 {
            p.on_value_refresh(Escape::Above, &mut rng);
        }
        assert_eq!(p.window.len(), 5);
    }
}
