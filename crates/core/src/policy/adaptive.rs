//! The paper's adaptive precision-setting algorithm (Section 2).

use super::{apply_thresholds, clamp_internal, Escape, PrecisionPolicy};
use crate::cost::CostModel;
use crate::error::ParamError;
use crate::rng::Rng;

/// Tunable parameters of the adaptive algorithm (paper, Table 1).
///
/// * `θ` — cost factor, `2·C_vr/C_qr` for interval data (or `C_vr/C_qr`
///   for monotonic deviation metrics, see [`AdaptiveParams::monotonic`]);
/// * `α ≥ 0` — adaptivity: widths are multiplied/divided by `1 + α`;
/// * `γ0` — lower threshold: widths below it snap to `0` (exact caching);
/// * `γ1` — upper threshold: widths at or above it snap to `∞` (no caching).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveParams {
    theta: f64,
    alpha: f64,
    gamma0: f64,
    gamma1: f64,
}

impl AdaptiveParams {
    /// Parameters for interval approximations: `θ = 2·C_vr/C_qr`, no
    /// thresholds (`γ0 = 0`, `γ1 = ∞`).
    pub fn new(cost: &CostModel, alpha: f64) -> Result<Self, ParamError> {
        Self::from_theta(cost.theta(), alpha)
    }

    /// Parameters for monotonic deviation metrics (stale-value
    /// approximations, Section 4.7): `θ' = C_vr/C_qr`.
    pub fn monotonic(cost: &CostModel, alpha: f64) -> Result<Self, ParamError> {
        Self::from_theta(cost.theta_monotonic(), alpha)
    }

    /// Parameters from an explicit cost factor.
    pub fn from_theta(theta: f64, alpha: f64) -> Result<Self, ParamError> {
        if !(theta.is_finite() && theta > 0.0) {
            return Err(ParamError::InvalidTheta(theta));
        }
        if !(alpha.is_finite() && alpha >= 0.0) {
            return Err(ParamError::InvalidAlpha(alpha));
        }
        Ok(AdaptiveParams { theta, alpha, gamma0: 0.0, gamma1: f64::INFINITY })
    }

    /// Set the snapping thresholds; requires `0 <= γ0 <= γ1`.
    ///
    /// `γ1 = γ0` forces every approximation to be exact or absent, which is
    /// the adaptive *exact* caching special case of Section 4.6.
    pub fn with_thresholds(mut self, gamma0: f64, gamma1: f64) -> Result<Self, ParamError> {
        if gamma0.is_nan() || gamma1.is_nan() || gamma0 < 0.0 || gamma0 > gamma1 {
            return Err(ParamError::InvalidThresholds { gamma0, gamma1 });
        }
        self.gamma0 = gamma0;
        self.gamma1 = gamma1;
        Ok(self)
    }

    /// Cost factor θ.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Adaptivity parameter α.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Lower threshold γ0.
    #[inline]
    pub fn gamma0(&self) -> f64 {
        self.gamma0
    }

    /// Upper threshold γ1.
    #[inline]
    pub fn gamma1(&self) -> f64 {
        self.gamma1
    }

    /// Probability of growing the width on a value-initiated refresh:
    /// `min{θ, 1}`.
    #[inline]
    pub fn grow_probability(&self) -> f64 {
        self.theta.min(1.0)
    }

    /// Probability of shrinking the width on a query-initiated refresh:
    /// `min{1/θ, 1}`.
    #[inline]
    pub fn shrink_probability(&self) -> f64 {
        (1.0 / self.theta).min(1.0)
    }

    /// The multiplicative step `1 + α`.
    #[inline]
    pub fn step(&self) -> f64 {
        1.0 + self.alpha
    }
}

/// The paper's adaptive precision policy: one internal width `W`, grown by
/// `(1+α)` with probability `min{θ,1}` on value-initiated refreshes and
/// shrunk by `(1+α)` with probability `min{1/θ,1}` on query-initiated
/// refreshes, with threshold snapping applied on the way out.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    params: AdaptiveParams,
    width: f64,
}

impl AdaptivePolicy {
    /// Create a policy with the given starting internal width (must be
    /// strictly positive and finite so multiplicative adaptation can move
    /// it in both directions).
    pub fn new(params: AdaptiveParams, initial_width: f64) -> Result<Self, ParamError> {
        if !(initial_width.is_finite() && initial_width > 0.0) {
            return Err(ParamError::InvalidWidth(initial_width));
        }
        Ok(AdaptivePolicy { params, width: clamp_internal(initial_width) })
    }

    /// The parameters this policy runs with.
    pub fn params(&self) -> &AdaptiveParams {
        &self.params
    }
}

impl PrecisionPolicy for AdaptivePolicy {
    fn on_value_refresh(&mut self, _escape: Escape, rng: &mut Rng) {
        if rng.bernoulli(self.params.grow_probability()) {
            self.width = clamp_internal(self.width * self.params.step());
        }
    }

    fn on_query_refresh(&mut self, rng: &mut Rng) {
        if rng.bernoulli(self.params.shrink_probability()) {
            self.width = clamp_internal(self.width / self.params.step());
        }
    }

    fn internal_width(&self) -> f64 {
        self.width
    }

    fn effective_width(&self) -> f64 {
        apply_thresholds(self.width, self.params.gamma0, self.params.gamma1)
    }

    fn export_state(&self) -> Vec<f64> {
        vec![self.width]
    }

    fn restore_state(&mut self, words: &[f64]) -> bool {
        match words {
            [w] if w.is_finite() && *w > 0.0 => {
                self.width = clamp_internal(*w);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ApproxSpec;

    fn params(theta: f64, alpha: f64) -> AdaptiveParams {
        AdaptiveParams::from_theta(theta, alpha).unwrap()
    }

    #[test]
    fn validation() {
        assert!(AdaptiveParams::from_theta(0.0, 1.0).is_err());
        assert!(AdaptiveParams::from_theta(-1.0, 1.0).is_err());
        assert!(AdaptiveParams::from_theta(1.0, -0.1).is_err());
        assert!(AdaptiveParams::from_theta(1.0, f64::NAN).is_err());
        assert!(params(1.0, 1.0).with_thresholds(2.0, 1.0).is_err());
        assert!(params(1.0, 1.0).with_thresholds(-1.0, 1.0).is_err());
        assert!(AdaptivePolicy::new(params(1.0, 1.0), 0.0).is_err());
        assert!(AdaptivePolicy::new(params(1.0, 1.0), f64::INFINITY).is_err());
    }

    #[test]
    fn theta_one_always_adjusts() {
        // θ = 1 ⇒ both probabilities are 1; adjustments are deterministic.
        let mut p = AdaptivePolicy::new(params(1.0, 1.0), 8.0).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        p.on_value_refresh(Escape::Above, &mut rng);
        assert_eq!(p.internal_width(), 16.0);
        p.on_query_refresh(&mut rng);
        p.on_query_refresh(&mut rng);
        assert_eq!(p.internal_width(), 4.0);
    }

    #[test]
    fn alpha_zero_never_moves() {
        let mut p = AdaptivePolicy::new(params(1.0, 0.0), 8.0).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        p.on_value_refresh(Escape::Above, &mut rng);
        p.on_query_refresh(&mut rng);
        assert_eq!(p.internal_width(), 8.0);
    }

    #[test]
    fn theta_above_one_gates_shrinks() {
        // θ = 4: every VR grows, QRs shrink with probability 1/4.
        let par = params(4.0, 1.0);
        assert_eq!(par.grow_probability(), 1.0);
        assert_eq!(par.shrink_probability(), 0.25);
        let mut p = AdaptivePolicy::new(par, 8.0).unwrap();
        let mut rng = Rng::seed_from_u64(42);
        let n = 100_000;
        let mut shrinks = 0u32;
        for _ in 0..n {
            let before = p.internal_width();
            p.on_query_refresh(&mut rng);
            if p.internal_width() < before {
                shrinks += 1;
            }
            // Reset so the clamp never engages.
            p.width = 8.0;
        }
        let rate = f64::from(shrinks) / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn theta_below_one_gates_grows() {
        // θ' = 0.5 (the divergence-caching factor): every QR shrinks,
        // VRs grow with probability 0.5.
        let par = params(0.5, 1.0);
        assert_eq!(par.grow_probability(), 0.5);
        assert_eq!(par.shrink_probability(), 1.0);
        let mut p = AdaptivePolicy::new(par, 8.0).unwrap();
        let mut rng = Rng::seed_from_u64(43);
        let n = 100_000;
        let mut grows = 0u32;
        for _ in 0..n {
            let before = p.internal_width();
            p.on_value_refresh(Escape::Below, &mut rng);
            if p.internal_width() > before {
                grows += 1;
            }
            p.width = 8.0;
        }
        let rate = f64::from(grows) / n as f64;
        assert!((rate - 0.5).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn thresholds_shape_effective_width() {
        let par = params(1.0, 1.0).with_thresholds(1.0, 100.0).unwrap();
        let p = AdaptivePolicy::new(par, 0.5).unwrap();
        assert_eq!(p.effective_width(), 0.0);
        assert_eq!(p.internal_width(), 0.5); // internal state unaffected
        let p = AdaptivePolicy::new(par, 50.0).unwrap();
        assert_eq!(p.effective_width(), 50.0);
        let p = AdaptivePolicy::new(par, 100.0).unwrap();
        assert_eq!(p.effective_width(), f64::INFINITY);
    }

    #[test]
    fn internal_width_recovers_through_thresholds() {
        // Paper: "The source still retains the original width, and uses it
        // when setting the next width." A snapped-to-zero policy must grow
        // back out when VRs arrive.
        let par = params(1.0, 1.0).with_thresholds(4.0, f64::INFINITY).unwrap();
        let mut p = AdaptivePolicy::new(par, 3.0).unwrap();
        let mut rng = Rng::seed_from_u64(9);
        assert_eq!(p.effective_width(), 0.0);
        p.on_value_refresh(Escape::Above, &mut rng);
        assert_eq!(p.internal_width(), 6.0);
        assert_eq!(p.effective_width(), 6.0);
    }

    #[test]
    fn default_spec_is_centered_constant() {
        let p = AdaptivePolicy::new(params(1.0, 1.0), 10.0).unwrap();
        match p.make_spec(100.0, 0) {
            ApproxSpec::Constant(iv) => {
                assert_eq!(iv.center(), Some(100.0));
                assert_eq!(iv.width(), 10.0);
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn width_never_escapes_clamp_band() {
        let mut p = AdaptivePolicy::new(params(1.0, 10.0), 1.0).unwrap();
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            p.on_value_refresh(Escape::Above, &mut rng);
        }
        assert!(p.internal_width().is_finite());
        for _ in 0..20_000 {
            p.on_query_refresh(&mut rng);
        }
        assert!(p.internal_width() > 0.0);
    }
}
