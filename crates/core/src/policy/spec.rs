//! Approximation specifications exchanged between sources and caches.

use crate::interval::Interval;
use crate::{TimeMs, MS_PER_SEC};

/// The approximation a source installs at a cache during a refresh.
///
/// The paper's main algorithm always sends a constant interval; the
/// Section 4.5 variants send intervals whose bounds are functions of time,
/// so the cache evaluates the spec at its local clock when answering
/// queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApproxSpec {
    /// A constant interval `[L, H]` (the paper's main scheme).
    Constant(Interval),
    /// An interval whose width grows with the age of the refresh:
    /// `width(t) = base_width + coeff·((t - t0)/1s)^exponent`, centered on
    /// `center`. Used by the "more approximate over time" variant.
    Growing {
        /// Exact value at refresh time (the interval stays centered on it).
        center: f64,
        /// Width at `t = t0`.
        base_width: f64,
        /// Growth coefficient (width units per second^exponent).
        coeff: f64,
        /// Growth exponent (the paper tried 1/2 and 1/3).
        exponent: f64,
        /// Refresh timestamp.
        t0: TimeMs,
    },
    /// An interval whose *both* endpoints drift linearly with time:
    /// `[lo0 + rate·Δt, hi0 + rate·Δt]`. The paper found this the best
    /// time-varying form for predictably increasing (biased) data.
    Drifting {
        /// Lower bound at `t0`.
        lo0: f64,
        /// Upper bound at `t0`.
        hi0: f64,
        /// Drift rate in value units per second (may be negative).
        rate_per_sec: f64,
        /// Refresh timestamp.
        t0: TimeMs,
    },
}

impl ApproxSpec {
    /// A constant interval of the given width centered on `value`.
    ///
    /// Infinite width produces the unbounded interval; a non-finite center
    /// (which sources reject upstream) degrades safely to unbounded as well.
    pub fn constant_centered(value: f64, width: f64) -> ApproxSpec {
        match Interval::centered(value, width) {
            Ok(iv) => ApproxSpec::Constant(iv),
            Err(_) => ApproxSpec::Constant(Interval::unbounded()),
        }
    }

    /// Seconds elapsed since `t0`, saturating at zero for clock skew.
    #[inline]
    fn age_secs(t0: TimeMs, now: TimeMs) -> f64 {
        now.saturating_sub(t0) as f64 / MS_PER_SEC as f64
    }

    /// The concrete interval this spec denotes at time `now`.
    pub fn interval_at(&self, now: TimeMs) -> Interval {
        match *self {
            ApproxSpec::Constant(iv) => iv,
            ApproxSpec::Growing { center, base_width, coeff, exponent, t0 } => {
                let w = base_width + coeff * Self::age_secs(t0, now).powf(exponent);
                Interval::centered(center, w).unwrap_or_else(|_| Interval::unbounded())
            }
            ApproxSpec::Drifting { lo0, hi0, rate_per_sec, t0 } => {
                let shift = rate_per_sec * Self::age_secs(t0, now);
                Interval::new(lo0 + shift, hi0 + shift).unwrap_or_else(|_| Interval::unbounded())
            }
        }
    }

    /// Width of the denoted interval at time `now`.
    #[inline]
    pub fn width_at(&self, now: TimeMs) -> f64 {
        self.interval_at(now).width()
    }

    /// Validity test at time `now` (paper, Section 1.1).
    #[inline]
    pub fn contains(&self, value: f64, now: TimeMs) -> bool {
        self.interval_at(now).contains(value)
    }

    /// True iff the spec denotes an exact copy at time `now`.
    pub fn is_exact_at(&self, now: TimeMs) -> bool {
        self.interval_at(now).is_exact()
    }

    /// True iff the spec denotes the unbounded interval at time `now`.
    pub fn is_unbounded_at(&self, now: TimeMs) -> bool {
        self.interval_at(now).is_unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_spec_is_time_invariant() {
        let s = ApproxSpec::constant_centered(10.0, 4.0);
        assert_eq!(s.interval_at(0), s.interval_at(1_000_000));
        assert_eq!(s.width_at(0), 4.0);
        assert!(s.contains(8.0, 0));
        assert!(!s.contains(7.9, 0));
    }

    #[test]
    fn constant_infinite_width() {
        let s = ApproxSpec::constant_centered(10.0, f64::INFINITY);
        assert!(s.is_unbounded_at(0));
        assert!(s.contains(1e100, 0));
    }

    #[test]
    fn constant_zero_width_is_exact() {
        let s = ApproxSpec::constant_centered(3.5, 0.0);
        assert!(s.is_exact_at(0));
        assert!(s.contains(3.5, 99));
        assert!(!s.contains(3.6, 99));
    }

    #[test]
    fn growing_spec_widens_with_sqrt_age() {
        let s = ApproxSpec::Growing {
            center: 0.0,
            base_width: 2.0,
            coeff: 3.0,
            exponent: 0.5,
            t0: 1_000,
        };
        assert_eq!(s.width_at(1_000), 2.0);
        // After 4 seconds: 2 + 3·4^0.5 = 8.
        assert!((s.width_at(5_000) - 8.0).abs() < 1e-12);
        // A point outside the base interval becomes contained as it grows.
        assert!(!s.contains(2.0, 1_000));
        assert!(s.contains(2.0, 5_000));
    }

    #[test]
    fn growing_spec_saturates_before_t0() {
        let s = ApproxSpec::Growing {
            center: 0.0,
            base_width: 2.0,
            coeff: 3.0,
            exponent: 0.5,
            t0: 10_000,
        };
        // Clock skew: evaluating before t0 uses age 0.
        assert_eq!(s.width_at(0), 2.0);
    }

    #[test]
    fn drifting_spec_constant_width_moving_bounds() {
        let s = ApproxSpec::Drifting { lo0: 0.0, hi0: 10.0, rate_per_sec: 2.0, t0: 0 };
        let i0 = s.interval_at(0);
        assert_eq!((i0.lo(), i0.hi()), (0.0, 10.0));
        let i5 = s.interval_at(5_000);
        assert_eq!((i5.lo(), i5.hi()), (10.0, 20.0));
        assert_eq!(s.width_at(5_000), 10.0);
        // A static value can become invalid purely through time — the
        // trickiness Section 4.5 warns about.
        assert!(s.contains(5.0, 0));
        assert!(!s.contains(5.0, 5_000));
    }
}
