//! Time-varying intervals (Section 4.5, second unsuccessful variation).
//!
//! Two forms are evaluated in the paper:
//!
//! * [`TimeVaryingPolicy`] — intervals whose width grows with age,
//!   `width(t) = W + c·t^p` with `p ∈ {1/2, 1/3}`; found to be worse than
//!   constant intervals on both the network data and unbiased random walks.
//! * [`DriftingPolicy`] — intervals whose endpoints both increase linearly
//!   with time (`L(t) = L0 + k·t`, `H(t) = H0 + k·t`); the best
//!   time-varying form for *biased* (predictably increasing) data.

use super::{ApproxSpec, Escape, PrecisionPolicy};
use crate::error::ParamError;
use crate::policy::{AdaptiveParams, AdaptivePolicy};
use crate::rng::Rng;
use crate::TimeMs;

/// Growth law for a time-varying interval: `extra_width(t) = coeff·t^exponent`
/// with `t` in seconds since the refresh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthLaw {
    coeff: f64,
    exponent: f64,
}

impl GrowthLaw {
    /// Create a growth law; both constants must be positive and finite.
    pub fn new(coeff: f64, exponent: f64) -> Result<Self, ParamError> {
        if !(coeff.is_finite() && coeff > 0.0) {
            return Err(ParamError::InvalidModelConstant { which: "coeff", value: coeff });
        }
        if !(exponent.is_finite() && exponent > 0.0) {
            return Err(ParamError::InvalidModelConstant { which: "exponent", value: exponent });
        }
        Ok(GrowthLaw { coeff, exponent })
    }

    /// Square-root growth (`t^1/2`), one of the two laws the paper tried.
    pub fn sqrt(coeff: f64) -> Result<Self, ParamError> {
        Self::new(coeff, 0.5)
    }

    /// Cube-root growth (`t^1/3`), the other law the paper tried.
    pub fn cbrt(coeff: f64) -> Result<Self, ParamError> {
        Self::new(coeff, 1.0 / 3.0)
    }

    /// Growth coefficient.
    pub fn coeff(&self) -> f64 {
        self.coeff
    }

    /// Growth exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

/// Adaptive policy whose refreshed intervals widen over time.
///
/// Width adaptation on refreshes is identical to [`AdaptivePolicy`]; only
/// the spec sent to the cache differs.
#[derive(Debug, Clone)]
pub struct TimeVaryingPolicy {
    inner: AdaptivePolicy,
    law: GrowthLaw,
}

impl TimeVaryingPolicy {
    /// Create a time-varying policy with the given base parameters and
    /// growth law.
    pub fn new(
        params: AdaptiveParams,
        initial_width: f64,
        law: GrowthLaw,
    ) -> Result<Self, ParamError> {
        Ok(TimeVaryingPolicy { inner: AdaptivePolicy::new(params, initial_width)?, law })
    }
}

impl PrecisionPolicy for TimeVaryingPolicy {
    fn on_value_refresh(&mut self, escape: Escape, rng: &mut Rng) {
        self.inner.on_value_refresh(escape, rng);
    }

    fn on_query_refresh(&mut self, rng: &mut Rng) {
        self.inner.on_query_refresh(rng);
    }

    fn internal_width(&self) -> f64 {
        self.inner.internal_width()
    }

    fn effective_width(&self) -> f64 {
        self.inner.effective_width()
    }

    fn make_spec(&self, value: f64, now: TimeMs) -> ApproxSpec {
        let eff = self.effective_width();
        if eff == 0.0 || eff.is_infinite() {
            // Snapped widths stay constant: a growing exact copy makes no
            // sense and an unbounded interval cannot grow.
            return ApproxSpec::constant_centered(value, eff);
        }
        ApproxSpec::Growing {
            center: value,
            base_width: eff,
            coeff: self.law.coeff,
            exponent: self.law.exponent,
            t0: now,
        }
    }

    fn export_state(&self) -> Vec<f64> {
        self.inner.export_state()
    }

    fn restore_state(&mut self, words: &[f64]) -> bool {
        self.inner.restore_state(words)
    }
}

/// Adaptive policy whose refreshed intervals drift linearly (for biased
/// data): both endpoints move at `rate_per_sec`.
#[derive(Debug, Clone)]
pub struct DriftingPolicy {
    inner: AdaptivePolicy,
    rate_per_sec: f64,
}

impl DriftingPolicy {
    /// Create a drifting policy; `rate_per_sec` is the expected drift of
    /// the underlying value (positive or negative, must be finite).
    pub fn new(
        params: AdaptiveParams,
        initial_width: f64,
        rate_per_sec: f64,
    ) -> Result<Self, ParamError> {
        if !rate_per_sec.is_finite() {
            return Err(ParamError::InvalidModelConstant {
                which: "rate_per_sec",
                value: rate_per_sec,
            });
        }
        Ok(DriftingPolicy { inner: AdaptivePolicy::new(params, initial_width)?, rate_per_sec })
    }

    /// The configured drift rate.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }
}

impl PrecisionPolicy for DriftingPolicy {
    fn on_value_refresh(&mut self, escape: Escape, rng: &mut Rng) {
        self.inner.on_value_refresh(escape, rng);
    }

    fn on_query_refresh(&mut self, rng: &mut Rng) {
        self.inner.on_query_refresh(rng);
    }

    fn internal_width(&self) -> f64 {
        self.inner.internal_width()
    }

    fn effective_width(&self) -> f64 {
        self.inner.effective_width()
    }

    fn make_spec(&self, value: f64, now: TimeMs) -> ApproxSpec {
        let eff = self.effective_width();
        if eff == 0.0 || eff.is_infinite() {
            return ApproxSpec::constant_centered(value, eff);
        }
        let half = eff / 2.0;
        ApproxSpec::Drifting {
            lo0: value - half,
            hi0: value + half,
            rate_per_sec: self.rate_per_sec,
            t0: now,
        }
    }

    fn export_state(&self) -> Vec<f64> {
        self.inner.export_state()
    }

    fn restore_state(&mut self, words: &[f64]) -> bool {
        self.inner.restore_state(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> AdaptiveParams {
        AdaptiveParams::from_theta(1.0, 1.0).unwrap()
    }

    #[test]
    fn growth_law_validation() {
        assert!(GrowthLaw::new(0.0, 0.5).is_err());
        assert!(GrowthLaw::new(1.0, 0.0).is_err());
        assert!(GrowthLaw::new(1.0, f64::NAN).is_err());
        let law = GrowthLaw::sqrt(2.0).unwrap();
        assert_eq!(law.exponent(), 0.5);
        let law = GrowthLaw::cbrt(2.0).unwrap();
        assert!((law.exponent() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn growing_spec_has_base_width_at_refresh() {
        let p = TimeVaryingPolicy::new(params(), 10.0, GrowthLaw::sqrt(1.0).unwrap()).unwrap();
        let spec = p.make_spec(0.0, 5_000);
        assert_eq!(spec.width_at(5_000), 10.0);
        assert!(spec.width_at(9_000) > 10.0);
    }

    #[test]
    fn adaptation_matches_adaptive_policy() {
        let mut tv = TimeVaryingPolicy::new(params(), 8.0, GrowthLaw::sqrt(1.0).unwrap()).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        tv.on_value_refresh(Escape::Above, &mut rng);
        assert_eq!(tv.internal_width(), 16.0);
        tv.on_query_refresh(&mut rng);
        tv.on_query_refresh(&mut rng);
        assert_eq!(tv.internal_width(), 4.0);
    }

    #[test]
    fn snapped_widths_stay_constant() {
        let par = params().with_thresholds(20.0, f64::INFINITY).unwrap();
        let p = TimeVaryingPolicy::new(par, 10.0, GrowthLaw::sqrt(1.0).unwrap()).unwrap();
        // internal 10 < γ0=20 ⇒ exact copy, and it must not grow.
        let spec = p.make_spec(3.0, 0);
        assert!(spec.is_exact_at(0));
        assert!(spec.is_exact_at(1_000_000));
    }

    #[test]
    fn drifting_spec_tracks_rate() {
        let p = DriftingPolicy::new(params(), 10.0, 2.0).unwrap();
        let spec = p.make_spec(100.0, 0);
        let i0 = spec.interval_at(0);
        assert_eq!((i0.lo(), i0.hi()), (95.0, 105.0));
        let i10 = spec.interval_at(10_000);
        assert_eq!((i10.lo(), i10.hi()), (115.0, 125.0));
    }

    #[test]
    fn drifting_validation() {
        assert!(DriftingPolicy::new(params(), 10.0, f64::INFINITY).is_err());
        assert!(DriftingPolicy::new(params(), 10.0, f64::NAN).is_err());
        // Negative drift is fine (downward-biased data).
        assert!(DriftingPolicy::new(params(), 10.0, -3.0).is_ok());
    }
}
