//! A non-adaptive policy with a fixed interval width.
//!
//! Used by the Figure 3 experiment, which sweeps fixed widths to locate the
//! empirical optimum the adaptive algorithm should converge to ("we turned
//! off the part of our algorithm that adjusts widths dynamically").

use super::{Escape, PrecisionPolicy};
use crate::error::ParamError;
use crate::rng::Rng;

/// Precision policy that always uses the same width.
///
/// `width = 0` caches exact copies; `width = ∞` effectively disables
/// caching.
#[derive(Debug, Clone, Copy)]
pub struct FixedWidthPolicy {
    width: f64,
}

impl FixedWidthPolicy {
    /// Create a fixed-width policy. The width must be nonnegative (zero and
    /// infinity are both meaningful).
    pub fn new(width: f64) -> Result<Self, ParamError> {
        if width.is_nan() || width < 0.0 {
            return Err(ParamError::InvalidWidth(width));
        }
        Ok(FixedWidthPolicy { width })
    }
}

impl PrecisionPolicy for FixedWidthPolicy {
    fn on_value_refresh(&mut self, _escape: Escape, _rng: &mut Rng) {}

    fn on_query_refresh(&mut self, _rng: &mut Rng) {}

    fn internal_width(&self) -> f64 {
        self.width
    }

    fn effective_width(&self) -> f64 {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_widths() {
        assert!(FixedWidthPolicy::new(-1.0).is_err());
        assert!(FixedWidthPolicy::new(f64::NAN).is_err());
        assert!(FixedWidthPolicy::new(0.0).is_ok());
        assert!(FixedWidthPolicy::new(f64::INFINITY).is_ok());
    }

    #[test]
    fn never_adjusts() {
        let mut p = FixedWidthPolicy::new(7.0).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        for _ in 0..100 {
            p.on_value_refresh(Escape::Above, &mut rng);
            p.on_query_refresh(&mut rng);
        }
        assert_eq!(p.internal_width(), 7.0);
        assert_eq!(p.effective_width(), 7.0);
    }
}
