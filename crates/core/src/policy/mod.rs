//! Precision-setting policies.
//!
//! A *policy* owns the source-side state for one cached approximation — in
//! the paper's scheme, a single interval width `W` — and decides how that
//! state changes when refreshes occur:
//!
//! * a **value-initiated refresh** signals "the interval was too narrow";
//! * a **query-initiated refresh** signals "the interval was too wide".
//!
//! [`AdaptivePolicy`] implements the paper's algorithm (Section 2).
//! The remaining implementations are the alternatives evaluated in the
//! paper: [`FixedWidthPolicy`] (the Figure 3 width sweep),
//! [`UncenteredPolicy`], [`TimeVaryingPolicy`], [`DriftingPolicy`], and
//! [`HistoryPolicy`] (the Section 4.5 "unsuccessful variations").

mod adaptive;
mod fixed;
mod history;
mod monotonic;
mod spec;
mod time_varying;
mod uncentered;

pub use adaptive::{AdaptiveParams, AdaptivePolicy};
pub use fixed::FixedWidthPolicy;
pub use history::{HistoryPolicy, Weighting};
pub use monotonic::MonotonicPolicy;
pub use spec::ApproxSpec;
pub use time_varying::{DriftingPolicy, GrowthLaw, TimeVaryingPolicy};
pub use uncentered::UncenteredPolicy;

use crate::rng::Rng;
use crate::TimeMs;

/// Which bound the exact value crossed when it escaped its interval.
///
/// The centered policies ignore this; the uncentered variant (Section 4.5)
/// grows only the violated side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Escape {
    /// The value rose above the upper bound `H`.
    Above,
    /// The value fell below the lower bound `L`.
    Below,
}

/// The two refresh types of the protocol (paper, Section 1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshKind {
    /// The source pushed a refresh because the value escaped its interval.
    ValueInitiated,
    /// A query fetched the exact value because the interval was too wide.
    QueryInitiated,
}

/// Source-side precision-setting state for one cached approximation.
///
/// Implementations must be deterministic given the [`Rng`] stream they are
/// handed: all randomness flows through the `rng` arguments.
pub trait PrecisionPolicy: std::fmt::Debug + Send {
    /// React to a value-initiated refresh (the interval was exceeded on the
    /// `escape` side).
    fn on_value_refresh(&mut self, escape: Escape, rng: &mut Rng);

    /// React to a query-initiated refresh.
    fn on_query_refresh(&mut self, rng: &mut Rng);

    /// The *internal* ("original") width the policy is tracking. This is
    /// the width the paper's eviction rule orders by, and the quantity the
    /// thresholds `γ0`/`γ1` are applied to — it keeps adapting even while
    /// the effective width is snapped to `0` or `∞`.
    fn internal_width(&self) -> f64;

    /// The width actually offered to the cache after thresholding.
    fn effective_width(&self) -> f64;

    /// Build the approximation sent to the cache for the current exact
    /// `value` at time `now`.
    ///
    /// The default produces a constant interval of [`effective_width`]
    /// centered on the value, which is what the paper's main algorithm
    /// sends; variants override this.
    ///
    /// [`effective_width`]: PrecisionPolicy::effective_width
    fn make_spec(&self, value: f64, now: TimeMs) -> ApproxSpec {
        let _ = now;
        ApproxSpec::constant_centered(value, self.effective_width())
    }

    /// Serialize the policy's evolving adaptation state as raw `f64` words.
    ///
    /// The words capture only what refreshes have *changed* — widths,
    /// per-side widths, vote windows — never the configured parameters,
    /// which the receiver reconstructs from the policy's spec. Feeding the
    /// words into [`restore_state`] on a freshly built policy with the same
    /// parameters must yield bit-identical future behaviour, which is what
    /// shard migration relies on.
    ///
    /// Stateless policies (fixed width) export an empty vector.
    ///
    /// [`restore_state`]: PrecisionPolicy::restore_state
    fn export_state(&self) -> Vec<f64> {
        Vec::new()
    }

    /// Restore state previously produced by [`export_state`] on a policy
    /// built from the same spec. Returns `false` when the word shape does
    /// not match this policy (a protocol error — the policy is unchanged).
    ///
    /// [`export_state`]: PrecisionPolicy::export_state
    fn restore_state(&mut self, words: &[f64]) -> bool {
        words.is_empty()
    }
}

/// Internal width bounds shared by all adaptive policies.
///
/// Multiplicative adaptation can never reach zero or infinity on its own;
/// these clamps keep the width a normal positive float so it can always
/// recover (the thresholds provide the semantic 0/∞ snapping).
pub(crate) const MIN_INTERNAL_WIDTH: f64 = 1e-300;
/// Upper clamp for internal widths (see [`MIN_INTERNAL_WIDTH`]).
pub(crate) const MAX_INTERNAL_WIDTH: f64 = 1e300;

/// Clamp an internal width into the representable band.
#[inline]
pub(crate) fn clamp_internal(w: f64) -> f64 {
    w.clamp(MIN_INTERNAL_WIDTH, MAX_INTERNAL_WIDTH)
}

/// Apply the paper's thresholds: widths below `γ0` snap to exactly `0`
/// (cache an exact copy); widths at or above `γ1` snap to `∞` (effectively
/// uncached).
#[inline]
pub(crate) fn apply_thresholds(w: f64, gamma0: f64, gamma1: f64) -> f64 {
    if w < gamma0 {
        0.0
    } else if w >= gamma1 {
        f64::INFINITY
    } else {
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_snap_both_ways() {
        assert_eq!(apply_thresholds(0.5, 1.0, 100.0), 0.0);
        assert_eq!(apply_thresholds(50.0, 1.0, 100.0), 50.0);
        assert_eq!(apply_thresholds(100.0, 1.0, 100.0), f64::INFINITY);
        assert_eq!(apply_thresholds(150.0, 1.0, 100.0), f64::INFINITY);
    }

    #[test]
    fn thresholds_disabled_by_defaults() {
        // γ0 = 0 never snaps down; γ1 = ∞ never snaps up.
        assert_eq!(apply_thresholds(1e-250, 0.0, f64::INFINITY), 1e-250);
        assert_eq!(apply_thresholds(1e250, 0.0, f64::INFINITY), 1e250);
    }

    #[test]
    fn equal_thresholds_give_exact_or_nothing() {
        // γ1 = γ0: every width becomes 0 or ∞ — the exact-caching special
        // case of Section 4.6.
        for w in [0.0, 0.5, 0.999, 1.0, 2.0, 1e9] {
            let eff = apply_thresholds(w, 1.0, 1.0);
            assert!(eff == 0.0 || eff == f64::INFINITY, "w={w} eff={eff}");
        }
        assert_eq!(apply_thresholds(0.999, 1.0, 1.0), 0.0);
        assert_eq!(apply_thresholds(1.0, 1.0, 1.0), f64::INFINITY);
    }

    #[test]
    fn clamp_keeps_widths_positive_finite() {
        assert_eq!(clamp_internal(0.0), MIN_INTERNAL_WIDTH);
        assert_eq!(clamp_internal(f64::INFINITY), MAX_INTERNAL_WIDTH);
        assert_eq!(clamp_internal(5.0), 5.0);
    }
}
