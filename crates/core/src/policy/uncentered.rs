//! Uncentered intervals (Section 4.5, first unsuccessful variation).
//!
//! Instead of one width centered on the value, the source maintains an
//! upper width and a lower width independently. A value-initiated refresh
//! grows only the violated side (with probability `min{θ,1}`); a
//! query-initiated refresh shrinks both sides (with probability
//! `min{1/θ,1}`).
//!
//! The paper found this variant *worse* than centered intervals on both
//! synthetic random walks and the network data, and slightly better only on
//! biased random walks. It is provided for the Section 4.5 ablation.

use super::{apply_thresholds, clamp_internal, ApproxSpec, Escape, PrecisionPolicy};
use crate::error::ParamError;
use crate::interval::Interval;
use crate::policy::AdaptiveParams;
use crate::rng::Rng;
use crate::TimeMs;

/// Adaptive policy with independently adjusted upper and lower half-widths.
#[derive(Debug, Clone)]
pub struct UncenteredPolicy {
    params: AdaptiveParams,
    below: f64,
    above: f64,
}

impl UncenteredPolicy {
    /// Create with symmetric starting half-widths (each side gets half the
    /// given total width).
    pub fn new(params: AdaptiveParams, initial_width: f64) -> Result<Self, ParamError> {
        if !(initial_width.is_finite() && initial_width > 0.0) {
            return Err(ParamError::InvalidWidth(initial_width));
        }
        let half = clamp_internal(initial_width / 2.0);
        Ok(UncenteredPolicy { params, below: half, above: half })
    }

    /// Current lower half-width.
    pub fn below(&self) -> f64 {
        self.below
    }

    /// Current upper half-width.
    pub fn above(&self) -> f64 {
        self.above
    }
}

impl PrecisionPolicy for UncenteredPolicy {
    fn on_value_refresh(&mut self, escape: Escape, rng: &mut Rng) {
        if rng.bernoulli(self.params.grow_probability()) {
            match escape {
                Escape::Above => self.above = clamp_internal(self.above * self.params.step()),
                Escape::Below => self.below = clamp_internal(self.below * self.params.step()),
            }
        }
    }

    fn on_query_refresh(&mut self, rng: &mut Rng) {
        if rng.bernoulli(self.params.shrink_probability()) {
            self.below = clamp_internal(self.below / self.params.step());
            self.above = clamp_internal(self.above / self.params.step());
        }
    }

    fn internal_width(&self) -> f64 {
        self.below + self.above
    }

    fn effective_width(&self) -> f64 {
        apply_thresholds(self.internal_width(), self.params.gamma0(), self.params.gamma1())
    }

    fn export_state(&self) -> Vec<f64> {
        vec![self.below, self.above]
    }

    fn restore_state(&mut self, words: &[f64]) -> bool {
        match words {
            [b, a] if b.is_finite() && *b > 0.0 && a.is_finite() && *a > 0.0 => {
                self.below = clamp_internal(*b);
                self.above = clamp_internal(*a);
                true
            }
            _ => false,
        }
    }

    fn make_spec(&self, value: f64, _now: TimeMs) -> ApproxSpec {
        let eff = self.effective_width();
        if eff == 0.0 {
            return ApproxSpec::constant_centered(value, 0.0);
        }
        if eff.is_infinite() {
            return ApproxSpec::Constant(Interval::unbounded());
        }
        match Interval::with_half_widths(value, self.below, self.above) {
            Ok(iv) => ApproxSpec::Constant(iv),
            Err(_) => ApproxSpec::Constant(Interval::unbounded()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> AdaptiveParams {
        AdaptiveParams::from_theta(1.0, 1.0).unwrap()
    }

    #[test]
    fn grows_only_violated_side() {
        let mut p = UncenteredPolicy::new(params(), 8.0).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        p.on_value_refresh(Escape::Above, &mut rng);
        assert_eq!(p.above(), 8.0);
        assert_eq!(p.below(), 4.0);
        p.on_value_refresh(Escape::Below, &mut rng);
        assert_eq!(p.below(), 8.0);
    }

    #[test]
    fn shrinks_both_sides() {
        let mut p = UncenteredPolicy::new(params(), 8.0).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        p.on_query_refresh(&mut rng);
        assert_eq!(p.above(), 2.0);
        assert_eq!(p.below(), 2.0);
        assert_eq!(p.internal_width(), 4.0);
    }

    #[test]
    fn spec_is_asymmetric_after_one_sided_growth() {
        let mut p = UncenteredPolicy::new(params(), 8.0).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        p.on_value_refresh(Escape::Above, &mut rng);
        match p.make_spec(100.0, 0) {
            ApproxSpec::Constant(iv) => {
                assert_eq!(iv.lo(), 96.0);
                assert_eq!(iv.hi(), 108.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn thresholds_apply_to_total_width() {
        let par = params().with_thresholds(5.0, 100.0).unwrap();
        let p = UncenteredPolicy::new(par, 4.0).unwrap();
        // total width 4 < γ0=5 ⇒ exact
        assert_eq!(p.effective_width(), 0.0);
        match p.make_spec(10.0, 0) {
            ApproxSpec::Constant(iv) => assert!(iv.is_exact()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn validation() {
        assert!(UncenteredPolicy::new(params(), 0.0).is_err());
        assert!(UncenteredPolicy::new(params(), f64::NAN).is_err());
    }
}
