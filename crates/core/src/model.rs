//! Closed-form refresh-probability model (paper, Section 3 & Appendix A).
//!
//! For a cached interval of width `W`:
//!
//! * `P_vr = K1 / W²` — random-walk data escapes a width-`W` interval at a
//!   rate quadratic in the precision (Chebyshev bound on a binomial walk);
//! * `P_qr = K2 · W` — with query precision constraints uniform on
//!   `[0, δ_max]` and one query every `T_q` seconds,
//!   `P_qr = (1/T_q)·(W/δ_max)`.
//!
//! The cost rate `Ω(W) = C_vr·K1/W² + C_qr·K2·W` is minimized at
//! `W* = (θ·K1/K2)^(1/3)` where `θ = 2·C_vr/C_qr` — exactly the point where
//! `θ·P_vr = P_qr`, which is the balance the adaptive algorithm seeks.
//!
//! For *monotonic* deviation metrics (stale-value approximations,
//! Section 4.7) the escape is deterministic, `P_vr = K1/W`, and the optimum
//! shifts to `W* = (θ'·K1/K2)^(1/2)` with `θ' = C_vr/C_qr`.

use crate::cost::CostModel;
use crate::error::ParamError;

/// Validated positive finite model constant.
fn check(which: &'static str, value: f64) -> Result<f64, ParamError> {
    if !(value.is_finite() && value > 0.0) {
        return Err(ParamError::InvalidModelConstant { which, value });
    }
    Ok(value)
}

/// The interval (random-walk) refresh model: `P_vr = K1/W²`, `P_qr = K2·W`.
#[derive(Debug, Clone, Copy)]
pub struct RefreshModel {
    k1: f64,
    k2: f64,
    cost: CostModel,
}

impl RefreshModel {
    /// Build a model from its constants.
    pub fn new(k1: f64, k2: f64, cost: CostModel) -> Result<Self, ParamError> {
        Ok(RefreshModel { k1: check("K1", k1)?, k2: check("K2", k2)?, cost })
    }

    /// `K1` constant.
    pub fn k1(&self) -> f64 {
        self.k1
    }

    /// `K2` constant.
    pub fn k2(&self) -> f64 {
        self.k2
    }

    /// Value-initiated refresh probability per time step (capped at 1).
    pub fn p_vr(&self, w: f64) -> f64 {
        if w <= 0.0 {
            return 1.0;
        }
        (self.k1 / (w * w)).min(1.0)
    }

    /// Query-initiated refresh probability per time step (capped at 1).
    pub fn p_qr(&self, w: f64) -> f64 {
        if w.is_infinite() {
            return 1.0;
        }
        (self.k2 * w).min(1.0)
    }

    /// Expected cost rate `Ω(W)`.
    pub fn omega(&self, w: f64) -> f64 {
        self.cost.c_vr() * self.p_vr(w) + self.cost.c_qr() * self.p_qr(w)
    }

    /// The optimal width `W* = (θ·K1/K2)^(1/3)`.
    pub fn w_star(&self) -> f64 {
        (self.cost.theta() * self.k1 / self.k2).cbrt()
    }

    /// The minimal cost rate `Ω(W*)`.
    pub fn omega_star(&self) -> f64 {
        self.omega(self.w_star())
    }
}

/// The monotonic-deviation refresh model of Section 4.7:
/// `P_vr = K1/W`, `P_qr = K2·W`.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicModel {
    k1: f64,
    k2: f64,
    cost: CostModel,
}

impl MonotonicModel {
    /// Build a model from its constants.
    pub fn new(k1: f64, k2: f64, cost: CostModel) -> Result<Self, ParamError> {
        Ok(MonotonicModel { k1: check("K1", k1)?, k2: check("K2", k2)?, cost })
    }

    /// Value-initiated refresh probability per time step (capped at 1).
    pub fn p_vr(&self, w: f64) -> f64 {
        if w <= 0.0 {
            return 1.0;
        }
        (self.k1 / w).min(1.0)
    }

    /// Query-initiated refresh probability per time step (capped at 1).
    pub fn p_qr(&self, w: f64) -> f64 {
        (self.k2 * w).min(1.0)
    }

    /// Expected cost rate `Ω(W)`.
    pub fn omega(&self, w: f64) -> f64 {
        self.cost.c_vr() * self.p_vr(w) + self.cost.c_qr() * self.p_qr(w)
    }

    /// The optimal divergence bound `W* = (θ'·K1/K2)^(1/2)`.
    pub fn w_star(&self) -> f64 {
        (self.cost.theta_monotonic() * self.k1 / self.k2).sqrt()
    }
}

/// `K1` for a one-dimensional random walk whose per-step displacement is
/// `±s` (Appendix A): Chebyshev on the binomial walk gives
/// `P_vr ≈ (2s/W)²` per step, i.e. `K1 = 4·s²`.
pub fn k1_random_walk(step: f64) -> Result<f64, ParamError> {
    let s = check("step", step)?;
    Ok(4.0 * s * s)
}

/// `K1` for a random walk with uniformly distributed step magnitudes on
/// `[lo, hi]`: uses the second moment `E[s²] = (hi³ − lo³)/(3(hi − lo))`,
/// giving `K1 = 4·E[s²]`.
pub fn k1_uniform_step(lo: f64, hi: f64) -> Result<f64, ParamError> {
    check("step hi", hi)?;
    if !(lo.is_finite() && lo >= 0.0 && lo < hi) {
        return Err(ParamError::InvalidModelConstant { which: "step lo", value: lo });
    }
    let second_moment = (hi * hi * hi - lo * lo * lo) / (3.0 * (hi - lo));
    Ok(4.0 * second_moment)
}

/// `K2` for queries issued every `tq` seconds with precision constraints
/// uniform on `[0, delta_max]` (Appendix A): `P_qr = W/(T_q·δ_max)`.
pub fn k2_uniform_queries(tq: f64, delta_max: f64) -> Result<f64, ParamError> {
    let tq = check("T_q", tq)?;
    let dm = check("delta_max", delta_max)?;
    Ok(1.0 / (tq * dm))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RefreshModel {
        // The Figure 2 constants: K1 = 1, K2 = 1/200, θ = 1.
        RefreshModel::new(1.0, 1.0 / 200.0, CostModel::multiversion()).unwrap()
    }

    #[test]
    fn validation() {
        let cost = CostModel::multiversion();
        assert!(RefreshModel::new(0.0, 1.0, cost).is_err());
        assert!(RefreshModel::new(1.0, f64::NAN, cost).is_err());
        assert!(MonotonicModel::new(-1.0, 1.0, cost).is_err());
    }

    #[test]
    fn probabilities_have_the_right_shape() {
        let m = model();
        // P_vr decreases with W, quadratically.
        assert!((m.p_vr(2.0) / m.p_vr(4.0) - 4.0).abs() < 1e-12);
        // P_qr increases linearly.
        assert!((m.p_qr(4.0) / m.p_qr(2.0) - 2.0).abs() < 1e-12);
        // Caps.
        assert_eq!(m.p_vr(0.0), 1.0);
        assert_eq!(m.p_vr(0.001), 1.0);
        assert_eq!(m.p_qr(1e9), 1.0);
    }

    #[test]
    fn w_star_matches_figure_2() {
        // W* = (θ·K1/K2)^(1/3) = (1·1·200)^(1/3) ≈ 5.848.
        let m = model();
        assert!((m.w_star() - 200f64.cbrt()).abs() < 1e-12);
    }

    #[test]
    fn omega_is_minimized_at_w_star() {
        let m = model();
        let w_star = m.w_star();
        let best = m.omega(w_star);
        for w in [0.5, 1.0, 2.0, 4.0, 5.0, 7.0, 10.0, 20.0] {
            assert!(m.omega(w) >= best - 1e-12, "omega({w}) < omega(W*)");
        }
    }

    #[test]
    fn refresh_probabilities_cross_at_w_star_when_theta_is_one() {
        let m = model();
        let w = m.w_star();
        assert!((m.p_vr(w) - m.p_qr(w)).abs() < 1e-12);
    }

    #[test]
    fn theta_scaled_crossing_for_general_theta() {
        // θ = 4: the optimum satisfies θ·P_vr = P_qr.
        let m = RefreshModel::new(1.0, 1.0 / 200.0, CostModel::two_phase_locking()).unwrap();
        let w = m.w_star();
        let theta = CostModel::two_phase_locking().theta();
        assert!((theta * m.p_vr(w) - m.p_qr(w)).abs() < 1e-12);
    }

    #[test]
    fn monotonic_model_optimum() {
        let cost = CostModel::new(1.0, 2.0).unwrap(); // θ' = 0.5
        let m = MonotonicModel::new(1.0, 0.05, cost).unwrap();
        let w = m.w_star();
        assert!((w - (0.5_f64 * 1.0 / 0.05).sqrt()).abs() < 1e-12);
        // θ'·P_vr = P_qr at the optimum.
        assert!((cost.theta_monotonic() * m.p_vr(w) - m.p_qr(w)).abs() < 1e-12);
        // And it is the minimum.
        let best = m.omega(w);
        for cand in [0.5, 1.0, 2.0, 5.0, 10.0] {
            assert!(m.omega(cand) >= best - 1e-12);
        }
    }

    #[test]
    fn k1_helpers() {
        assert_eq!(k1_random_walk(1.0).unwrap(), 4.0);
        // Uniform [0.5, 1.5]: E[s²] = (1.5³−0.5³)/(3·1) = 3.25/3.
        let k1 = k1_uniform_step(0.5, 1.5).unwrap();
        assert!((k1 - 4.0 * 3.25 / 3.0).abs() < 1e-12);
        assert!(k1_uniform_step(1.5, 0.5).is_err());
        assert!(k1_random_walk(0.0).is_err());
    }

    #[test]
    fn k2_helper() {
        // T_q = 10 s, δ_max = 20 → K2 = 1/200, the Figure 2 setting.
        let k2 = k2_uniform_queries(10.0, 20.0).unwrap();
        assert!((k2 - 1.0 / 200.0).abs() < 1e-15);
        assert!(k2_uniform_queries(0.0, 20.0).is_err());
    }
}
