//! Error types for the core crate.
//!
//! All fallible constructors and operations return structured errors that
//! implement [`std::error::Error`]; library code never panics on bad input.

use std::fmt;

/// Error constructing or manipulating an interval.
#[derive(Debug, Clone, PartialEq)]
pub enum IntervalError {
    /// The lower bound is greater than the upper bound.
    Inverted {
        /// Offending lower bound.
        lo: f64,
        /// Offending upper bound.
        hi: f64,
    },
    /// One of the bounds (or an input value) was NaN.
    NotANumber,
    /// A negative width was supplied where a nonnegative one is required.
    NegativeWidth(f64),
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::Inverted { lo, hi } => {
                write!(f, "inverted interval bounds: lo={lo} > hi={hi}")
            }
            IntervalError::NotANumber => write!(f, "interval bound or value is NaN"),
            IntervalError::NegativeWidth(w) => write!(f, "negative interval width: {w}"),
        }
    }
}

impl std::error::Error for IntervalError {}

/// Error validating algorithm or model parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// A refresh cost was not strictly positive and finite.
    NonPositiveCost {
        /// Name of the offending cost ("C_vr" or "C_qr").
        which: &'static str,
        /// The value supplied.
        value: f64,
    },
    /// The adaptivity parameter α was negative or non-finite.
    InvalidAlpha(f64),
    /// The cost factor θ was not strictly positive and finite.
    InvalidTheta(f64),
    /// Threshold ordering violated: requires `0 <= γ0 <= γ1`.
    InvalidThresholds {
        /// Lower threshold γ0.
        gamma0: f64,
        /// Upper threshold γ1.
        gamma1: f64,
    },
    /// An initial or fixed interval width was negative or NaN.
    InvalidWidth(f64),
    /// A model constant (K1, K2, rate, …) was not strictly positive/finite.
    InvalidModelConstant {
        /// Name of the constant.
        which: &'static str,
        /// The value supplied.
        value: f64,
    },
    /// A history window size of zero was supplied (must be >= 1).
    EmptyHistoryWindow,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::NonPositiveCost { which, value } => {
                write!(f, "refresh cost {which} must be positive and finite, got {value}")
            }
            ParamError::InvalidAlpha(a) => {
                write!(f, "adaptivity parameter alpha must be >= 0 and finite, got {a}")
            }
            ParamError::InvalidTheta(t) => {
                write!(f, "cost factor theta must be > 0 and finite, got {t}")
            }
            ParamError::InvalidThresholds { gamma0, gamma1 } => {
                write!(f, "thresholds must satisfy 0 <= gamma0 <= gamma1, got gamma0={gamma0}, gamma1={gamma1}")
            }
            ParamError::InvalidWidth(w) => {
                write!(f, "interval width must be >= 0 (NaN rejected), got {w}")
            }
            ParamError::InvalidModelConstant { which, value } => {
                write!(f, "model constant {which} must be positive and finite, got {value}")
            }
            ParamError::EmptyHistoryWindow => {
                write!(f, "history window size r must be >= 1")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// Error interacting with protocol objects (sources and caches).
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The source has no approximation registered for the given cache.
    NotRegistered(crate::CacheId),
    /// An approximation is already registered for the given cache.
    AlreadyRegistered(crate::CacheId),
    /// A non-finite exact value was supplied to a source.
    NonFiniteValue(f64),
    /// The cache capacity must be at least one entry.
    ZeroCapacity,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::NotRegistered(c) => {
                write!(f, "no approximation registered for cache {c}")
            }
            ProtocolError::AlreadyRegistered(c) => {
                write!(f, "approximation already registered for cache {c}")
            }
            ProtocolError::NonFiniteValue(v) => {
                write!(f, "source values must be finite, got {v}")
            }
            ProtocolError::ZeroCapacity => write!(f, "cache capacity must be >= 1"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Umbrella error for the core crate.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Interval construction or arithmetic failure.
    Interval(IntervalError),
    /// Parameter validation failure.
    Param(ParamError),
    /// Protocol object misuse.
    Protocol(ProtocolError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Interval(e) => write!(f, "interval error: {e}"),
            CoreError::Param(e) => write!(f, "parameter error: {e}"),
            CoreError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Interval(e) => Some(e),
            CoreError::Param(e) => Some(e),
            CoreError::Protocol(e) => Some(e),
        }
    }
}

impl From<IntervalError> for CoreError {
    fn from(e: IntervalError) -> Self {
        CoreError::Interval(e)
    }
}

impl From<ParamError> for CoreError {
    fn from(e: ParamError) -> Self {
        CoreError::Param(e)
    }
}

impl From<ProtocolError> for CoreError {
    fn from(e: ProtocolError) -> Self {
        CoreError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_messages_are_informative() {
        let e = IntervalError::Inverted { lo: 3.0, hi: 1.0 };
        assert!(e.to_string().contains("lo=3"));
        let e = ParamError::InvalidThresholds { gamma0: 5.0, gamma1: 2.0 };
        assert!(e.to_string().contains("gamma0=5"));
        let e = ProtocolError::NonFiniteValue(f64::NAN);
        assert!(e.to_string().contains("finite"));
    }

    #[test]
    fn umbrella_error_preserves_source() {
        let e: CoreError = IntervalError::NotANumber.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("interval error"));
        let e: CoreError = ParamError::InvalidAlpha(-1.0).into();
        assert!(matches!(e, CoreError::Param(_)));
        let e: CoreError = ProtocolError::ZeroCapacity.into();
        assert!(matches!(e, CoreError::Protocol(_)));
    }
}
