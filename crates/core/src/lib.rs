//! # apcache-core
//!
//! Core implementation of **"Adaptive Precision Setting for Cached
//! Approximate Values"** (Olston, Loo & Widom, ACM SIGMOD 2001).
//!
//! A *source* holds an exact numeric value `V`; a *cache* holds an interval
//! approximation `[L, H]` that is valid while `L <= V <= H`. Keeping the
//! interval narrow makes it useful to queries but causes frequent
//! *value-initiated refreshes* (the value escapes the interval); keeping it
//! wide avoids those but causes *query-initiated refreshes* (queries need
//! more precision than the interval offers and fetch the exact value).
//!
//! The paper's algorithm adjusts the interval width `W` multiplicatively on
//! every refresh so that the two refresh rates balance at the cost-optimal
//! width, without measuring the workload:
//!
//! * cost factor `θ = 2·C_vr / C_qr`
//! * on a value-initiated refresh, with probability `min{θ, 1}`:
//!   `W ← W·(1 + α)`
//! * on a query-initiated refresh, with probability `min{1/θ, 1}`:
//!   `W ← W/(1 + α)`
//! * widths below the lower threshold `γ0` snap to `0` (exact caching);
//!   widths at or above the upper threshold `γ1` snap to `∞` (no caching).
//!   The *internal* width keeps adapting underneath.
//!
//! This crate provides:
//!
//! * [`interval::Interval`] — interval arithmetic with zero and infinite
//!   widths;
//! * [`cost::CostModel`] — refresh costs and the derived cost factors;
//! * [`policy`] — the adaptive policy plus every variant evaluated in the
//!   paper (fixed width, uncentered, time-varying, refresh-history);
//! * [`source::Source`] / [`cache::Cache`] — the refresh protocol objects;
//! * [`model`] — the closed-form refresh-probability model of Section 3 /
//!   Appendix A (used to regenerate Figure 2 and to cross-check the
//!   simulator);
//! * [`rng`] — a small, dependency-free, deterministic random number
//!   generator so simulation runs are bit-for-bit reproducible.
//!
//! ## Quick example
//!
//! ```
//! use apcache_core::cost::CostModel;
//! use apcache_core::policy::{AdaptiveParams, AdaptivePolicy, PrecisionPolicy, Escape};
//! use apcache_core::rng::Rng;
//!
//! let cost = CostModel::new(1.0, 2.0).unwrap();       // C_vr = 1, C_qr = 2
//! let params = AdaptiveParams::new(&cost, 1.0).unwrap(); // α = 1 (doubling)
//! let mut policy = AdaptivePolicy::new(params, 8.0).unwrap();
//! let mut rng = Rng::seed_from_u64(42);
//!
//! // A value-initiated refresh signals "too narrow": the width grows.
//! policy.on_value_refresh(Escape::Above, &mut rng);
//! assert_eq!(policy.internal_width(), 16.0);
//!
//! // A query-initiated refresh signals "too wide": the width shrinks.
//! policy.on_query_refresh(&mut rng);
//! assert_eq!(policy.internal_width(), 8.0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod cost;
pub mod error;
pub mod interval;
pub mod model;
pub mod policy;
pub mod rng;
pub mod source;

pub use cache::{AdmitOutcome, Cache, CacheEntry};
pub use cost::CostModel;
pub use error::{CoreError, ParamError};
pub use interval::Interval;
pub use policy::{AdaptiveParams, AdaptivePolicy, Escape, PrecisionPolicy};
pub use rng::Rng;
pub use source::{ExactResponse, Refresh, Source};

/// Identifier of a source data value (one exact value per source).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub u32);

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Identifier of a cache in a multi-cache deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheId(pub u32);

impl std::fmt::Display for CacheId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Simulation / protocol time in integer milliseconds.
///
/// The paper's time unit is one second; we use milliseconds so sub-second
/// query periods (`T_q = 0.5 s`) stay on an exact integer grid.
pub type TimeMs = u64;

/// Milliseconds per simulated second.
pub const MS_PER_SEC: TimeMs = 1_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_display() {
        assert_eq!(Key(7).to_string(), "k7");
        assert_eq!(CacheId(2).to_string(), "c2");
    }

    #[test]
    fn key_ordering_is_numeric() {
        assert!(Key(2) < Key(10));
        let mut v = vec![Key(3), Key(1), Key(2)];
        v.sort();
        assert_eq!(v, vec![Key(1), Key(2), Key(3)]);
    }
}
