//! Interval approximations to numeric values.
//!
//! An interval `[L, H]` is a *valid* approximation of an exact value `V`
//! iff `L <= V <= H` (paper, Section 2). The paper defines precision as the
//! reciprocal of the width: a zero-width interval is an exact copy
//! (infinite precision), an infinite-width interval carries no information
//! (zero precision).

use crate::error::IntervalError;

/// A closed numeric interval `[lo, hi]`, possibly unbounded on either side.
///
/// Invariants (enforced by every constructor):
/// * `lo <= hi`
/// * neither bound is NaN
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Construct from explicit bounds.
    pub fn new(lo: f64, hi: f64) -> Result<Self, IntervalError> {
        if lo.is_nan() || hi.is_nan() {
            return Err(IntervalError::NotANumber);
        }
        if lo > hi {
            return Err(IntervalError::Inverted { lo, hi });
        }
        Ok(Interval { lo, hi })
    }

    /// The zero-width interval `[v, v]` — an exact copy of `v`.
    pub fn point(v: f64) -> Result<Self, IntervalError> {
        if v.is_nan() {
            return Err(IntervalError::NotANumber);
        }
        Ok(Interval { lo: v, hi: v })
    }

    /// Interval of the given `width` centered on `center`.
    ///
    /// `width = 0` yields a point; `width = ∞` yields [`Interval::unbounded`].
    pub fn centered(center: f64, width: f64) -> Result<Self, IntervalError> {
        if center.is_nan() || width.is_nan() {
            return Err(IntervalError::NotANumber);
        }
        if width < 0.0 {
            return Err(IntervalError::NegativeWidth(width));
        }
        if width.is_infinite() {
            return Ok(Interval::unbounded());
        }
        let half = width / 2.0;
        Ok(Interval { lo: center - half, hi: center + half })
    }

    /// Interval with independent lower and upper half-widths around `center`
    /// (used by the uncentered policy variant of Section 4.5).
    pub fn with_half_widths(center: f64, below: f64, above: f64) -> Result<Self, IntervalError> {
        if center.is_nan() || below.is_nan() || above.is_nan() {
            return Err(IntervalError::NotANumber);
        }
        if below < 0.0 {
            return Err(IntervalError::NegativeWidth(below));
        }
        if above < 0.0 {
            return Err(IntervalError::NegativeWidth(above));
        }
        Ok(Interval { lo: center - below, hi: center + above })
    }

    /// The interval `(-∞, +∞)` of infinite width — no information at all.
    pub const fn unbounded() -> Self {
        Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY }
    }

    /// Lower bound.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `H - L` (`∞` for unbounded intervals, `0` for points).
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Precision as defined in the paper: `1 / width`, with the conventions
    /// `Prec(point) = ∞` and `Prec(unbounded) = 0`.
    #[inline]
    pub fn precision(&self) -> f64 {
        let w = self.width();
        if w == 0.0 {
            f64::INFINITY
        } else {
            1.0 / w
        }
    }

    /// Midpoint. `None` when the interval is unbounded on either side
    /// (the midpoint is undefined there).
    pub fn center(&self) -> Option<f64> {
        if self.lo.is_infinite() || self.hi.is_infinite() {
            return None;
        }
        Some(self.lo / 2.0 + self.hi / 2.0)
    }

    /// Validity test `Valid([L,H], V)` from Section 1.1: true iff
    /// `L <= V <= H`.
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// True iff this interval is an exact copy (zero width).
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// True iff the interval has infinite width.
    #[inline]
    pub fn is_unbounded(&self) -> bool {
        self.width().is_infinite()
    }

    /// Minkowski sum `[a+c, b+d]` — the interval bounding `x + y` for
    /// `x ∈ self`, `y ∈ other`. This is how SUM aggregates propagate bounds.
    #[inline]
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: sum_toward(self.lo, other.lo, f64::NEG_INFINITY),
            hi: sum_toward(self.hi, other.hi, f64::INFINITY),
        }
    }

    /// Convex hull — the smallest interval containing both inputs.
    #[inline]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Intersection, or `None` when the intervals are disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Translate both bounds by `delta`.
    pub fn translate(&self, delta: f64) -> Result<Interval, IntervalError> {
        if delta.is_nan() {
            return Err(IntervalError::NotANumber);
        }
        Interval::new(
            sum_toward(self.lo, delta, f64::NEG_INFINITY),
            sum_toward(self.hi, delta, f64::INFINITY),
        )
    }

    /// Scale both bounds by a nonnegative factor.
    pub fn scale(&self, factor: f64) -> Result<Interval, IntervalError> {
        if factor.is_nan() {
            return Err(IntervalError::NotANumber);
        }
        if factor < 0.0 {
            return Err(IntervalError::NegativeWidth(factor));
        }
        if factor == 0.0 {
            // 0 * ±∞ would be NaN; a zero scale collapses to the point 0.
            return Interval::point(0.0);
        }
        Interval::new(self.lo * factor, self.hi * factor)
    }

    /// Interval bounding the maximum of two approximated values:
    /// `[max(l1,l2), max(h1,h2)]`.
    #[inline]
    pub fn max_of(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.max(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Interval bounding the minimum of two approximated values:
    /// `[min(l1,l2), min(h1,h2)]`.
    #[inline]
    pub fn min_of(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.min(other.hi) }
    }

    /// The raw IEEE-754 bit patterns `(lo, hi)` of the bounds.
    ///
    /// This is the wire representation: serializing bounds as bits (rather
    /// than as decimal text) makes `Interval::from_bits(iv.to_bits())` an
    /// exact identity for every constructible interval, including ±∞
    /// bounds and signed zeros.
    #[inline]
    pub fn to_bits(&self) -> (u64, u64) {
        (self.lo.to_bits(), self.hi.to_bits())
    }

    /// Reconstruct an interval from the bit patterns produced by
    /// [`Interval::to_bits`], re-validating the invariants (no NaN bound,
    /// `lo <= hi`) so arbitrary bytes off a wire cannot forge an invalid
    /// interval.
    pub fn from_bits(lo: u64, hi: u64) -> Result<Self, IntervalError> {
        Interval::new(f64::from_bits(lo), f64::from_bits(hi))
    }
}

/// `a + b`, but when the two addends are opposite infinities the result
/// saturates toward `toward` instead of producing NaN. Needed because a SUM
/// over an unbounded interval must stay unbounded, never NaN.
#[inline]
fn sum_toward(a: f64, b: f64, toward: f64) -> f64 {
    let s = a + b;
    if s.is_nan() {
        toward
    } else {
        s
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert!(Interval::new(1.0, 2.0).is_ok());
        assert!(matches!(Interval::new(2.0, 1.0), Err(IntervalError::Inverted { .. })));
        assert!(matches!(Interval::new(f64::NAN, 1.0), Err(IntervalError::NotANumber)));
        assert!(matches!(Interval::point(f64::NAN), Err(IntervalError::NotANumber)));
        assert!(matches!(Interval::centered(0.0, -1.0), Err(IntervalError::NegativeWidth(_))));
    }

    #[test]
    fn centered_geometry() {
        let i = Interval::centered(10.0, 4.0).unwrap();
        assert_eq!(i.lo(), 8.0);
        assert_eq!(i.hi(), 12.0);
        assert_eq!(i.width(), 4.0);
        assert_eq!(i.center(), Some(10.0));
    }

    #[test]
    fn centered_zero_width_is_point() {
        let i = Interval::centered(5.0, 0.0).unwrap();
        assert!(i.is_exact());
        assert!(i.contains(5.0));
        assert!(!i.contains(5.0 + 1e-9));
        assert_eq!(i.precision(), f64::INFINITY);
    }

    #[test]
    fn centered_infinite_width_is_unbounded() {
        let i = Interval::centered(5.0, f64::INFINITY).unwrap();
        assert!(i.is_unbounded());
        assert!(i.contains(1e300));
        assert!(i.contains(-1e300));
        assert_eq!(i.precision(), 0.0);
        assert_eq!(i.center(), None);
    }

    #[test]
    fn validity_is_inclusive() {
        let i = Interval::new(4.0, 6.0).unwrap();
        assert!(i.contains(4.0));
        assert!(i.contains(6.0));
        assert!(i.contains(5.0));
        assert!(!i.contains(3.999));
        assert!(!i.contains(6.001));
    }

    #[test]
    fn with_half_widths_asymmetric() {
        let i = Interval::with_half_widths(10.0, 1.0, 3.0).unwrap();
        assert_eq!(i.lo(), 9.0);
        assert_eq!(i.hi(), 13.0);
        assert_eq!(i.width(), 4.0);
        assert!(Interval::with_half_widths(0.0, -1.0, 1.0).is_err());
    }

    #[test]
    fn sum_adds_widths() {
        let a = Interval::new(1.0, 3.0).unwrap();
        let b = Interval::new(10.0, 14.0).unwrap();
        let s = a.add(&b);
        assert_eq!(s.lo(), 11.0);
        assert_eq!(s.hi(), 17.0);
        assert_eq!(s.width(), a.width() + b.width());
    }

    #[test]
    fn sum_with_unbounded_stays_unbounded_not_nan() {
        let a = Interval::unbounded();
        let b = Interval::point(5.0).unwrap();
        let s = a.add(&b);
        assert!(s.is_unbounded());
        assert!(!s.lo().is_nan());
        let s2 = a.add(&a);
        assert!(s2.is_unbounded());
    }

    #[test]
    fn hull_and_intersect() {
        let a = Interval::new(0.0, 5.0).unwrap();
        let b = Interval::new(3.0, 8.0).unwrap();
        let h = a.hull(&b);
        assert_eq!((h.lo(), h.hi()), (0.0, 8.0));
        let i = a.intersect(&b).unwrap();
        assert_eq!((i.lo(), i.hi()), (3.0, 5.0));
        let c = Interval::new(6.0, 7.0).unwrap();
        assert!(a.intersect(&c).is_none());
        // Touching intervals intersect in a point.
        let d = Interval::new(5.0, 9.0).unwrap();
        let p = a.intersect(&d).unwrap();
        assert!(p.is_exact());
    }

    #[test]
    fn max_of_semantics() {
        // max of x in [0,10] and y in [4,6] lies in [4,10].
        let a = Interval::new(0.0, 10.0).unwrap();
        let b = Interval::new(4.0, 6.0).unwrap();
        let m = a.max_of(&b);
        assert_eq!((m.lo(), m.hi()), (4.0, 10.0));
    }

    #[test]
    fn min_of_semantics() {
        let a = Interval::new(0.0, 10.0).unwrap();
        let b = Interval::new(4.0, 6.0).unwrap();
        let m = a.min_of(&b);
        assert_eq!((m.lo(), m.hi()), (0.0, 6.0));
    }

    #[test]
    fn translate_and_scale() {
        let a = Interval::new(2.0, 4.0).unwrap();
        let t = a.translate(10.0).unwrap();
        assert_eq!((t.lo(), t.hi()), (12.0, 14.0));
        let s = a.scale(3.0).unwrap();
        assert_eq!((s.lo(), s.hi()), (6.0, 12.0));
        let z = a.scale(0.0).unwrap();
        assert!(z.is_exact());
        assert!(a.scale(-1.0).is_err());
        // Unbounded intervals survive both operations.
        let u = Interval::unbounded();
        assert!(u.translate(5.0).unwrap().is_unbounded());
        assert!(u.scale(2.0).unwrap().is_unbounded());
        assert!(u.scale(0.0).unwrap().is_exact());
    }

    #[test]
    fn display_format() {
        let i = Interval::new(1.5, 2.5).unwrap();
        assert_eq!(i.to_string(), "[1.5, 2.5]");
    }

    #[test]
    fn bits_round_trip_is_exact() {
        let cases = [
            Interval::new(1.5, 2.5).unwrap(),
            Interval::point(-0.0).unwrap(),
            Interval::new(-0.0, 0.0).unwrap(),
            Interval::new(f64::MIN, f64::MAX).unwrap(),
            Interval::new(f64::NEG_INFINITY, 3.0).unwrap(),
            Interval::new(3.0, f64::INFINITY).unwrap(),
            Interval::unbounded(),
            Interval::new(5e-324, 1e-300).unwrap(), // subnormal lower bound
        ];
        for iv in cases {
            let (lo, hi) = iv.to_bits();
            let back = Interval::from_bits(lo, hi).unwrap();
            // Bit-identical, not merely ==: signed zeros must survive.
            assert_eq!(back.to_bits(), (lo, hi));
            assert_eq!(back, iv);
        }
    }

    #[test]
    fn from_bits_revalidates() {
        let nan = f64::NAN.to_bits();
        assert!(matches!(Interval::from_bits(nan, 0), Err(IntervalError::NotANumber)));
        assert!(matches!(Interval::from_bits(0, nan), Err(IntervalError::NotANumber)));
        let two = 2.0f64.to_bits();
        let one = 1.0f64.to_bits();
        assert!(matches!(Interval::from_bits(two, one), Err(IntervalError::Inverted { .. })));
    }
}
