//! Property-based tests for the core data structures: interval algebra,
//! policy invariants, and cache/eviction behaviour (checked against a
//! naive model implementation).

use proptest::prelude::*;

use apcache_core::cache::{AdmitOutcome, Cache};
use apcache_core::policy::{
    AdaptiveParams, AdaptivePolicy, ApproxSpec, Escape, PrecisionPolicy, UncenteredPolicy,
};
use apcache_core::source::Refresh;
use apcache_core::{CacheId, Interval, Key, Rng};

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e12..1e12f64
}

fn width() -> impl Strategy<Value = f64> {
    0.0..1e9f64
}

proptest! {
    #[test]
    fn interval_centered_contains_center(c in finite_f64(), w in width()) {
        let iv = Interval::centered(c, w).unwrap();
        prop_assert!(iv.contains(c));
        prop_assert!(iv.width() >= 0.0);
        // Width is preserved up to floating rounding.
        prop_assert!((iv.width() - w).abs() <= w.abs() * 1e-9 + 1e-6);
    }

    #[test]
    fn interval_sum_width_is_additive(
        a in finite_f64(), wa in width(),
        b in finite_f64(), wb in width(),
    ) {
        let ia = Interval::centered(a, wa).unwrap();
        let ib = Interval::centered(b, wb).unwrap();
        let s = ia.add(&ib);
        prop_assert!((s.width() - (wa + wb)).abs() <= (wa + wb) * 1e-9 + 1e-6);
        // Soundness: sum of any contained points is contained.
        prop_assert!(s.contains(a + b));
        prop_assert!(s.contains(ia.lo() + ib.lo()));
        prop_assert!(s.contains(ia.hi() + ib.hi()));
    }

    #[test]
    fn interval_hull_contains_both(
        a in finite_f64(), wa in width(),
        b in finite_f64(), wb in width(),
    ) {
        let ia = Interval::centered(a, wa).unwrap();
        let ib = Interval::centered(b, wb).unwrap();
        let h = ia.hull(&ib);
        prop_assert!(h.contains(ia.lo()) && h.contains(ia.hi()));
        prop_assert!(h.contains(ib.lo()) && h.contains(ib.hi()));
        prop_assert!(h.width() >= ia.width().max(ib.width()) - 1e-9);
    }

    #[test]
    fn interval_intersect_is_contained_in_both(
        a in finite_f64(), wa in width(),
        b in finite_f64(), wb in width(),
    ) {
        let ia = Interval::centered(a, wa).unwrap();
        let ib = Interval::centered(b, wb).unwrap();
        if let Some(i) = ia.intersect(&ib) {
            prop_assert!(ia.contains(i.lo()) && ia.contains(i.hi()));
            prop_assert!(ib.contains(i.lo()) && ib.contains(i.hi()));
        } else {
            // Disjoint: hull wider than the sum of halves guarantees a gap.
            prop_assert!(ia.hi() < ib.lo() || ib.hi() < ia.lo());
        }
    }

    #[test]
    fn max_of_bounds_the_maximum(
        a in finite_f64(), wa in width(),
        b in finite_f64(), wb in width(),
        ta in 0.0..1.0f64, tb in 0.0..1.0f64,
    ) {
        let ia = Interval::centered(a, wa).unwrap();
        let ib = Interval::centered(b, wb).unwrap();
        let m = ia.max_of(&ib);
        // Any pair of contained points has its max contained.
        let pa = ia.lo() + ta * ia.width();
        let pb = ib.lo() + tb * ib.width();
        prop_assert!(m.contains(pa.max(pb)),
            "max_of {m} missing max({pa}, {pb})");
    }

    #[test]
    fn policy_width_moves_exactly_by_step(
        w0 in 1e-3..1e6f64,
        alpha in 0.01..10.0f64,
        grow in proptest::bool::ANY,
    ) {
        // theta = 1 makes adjustments deterministic.
        let params = AdaptiveParams::from_theta(1.0, alpha).unwrap();
        let mut p = AdaptivePolicy::new(params, w0).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        if grow {
            p.on_value_refresh(Escape::Above, &mut rng);
            prop_assert!((p.internal_width() - w0 * (1.0 + alpha)).abs()
                <= w0 * (1.0 + alpha) * 1e-12);
        } else {
            p.on_query_refresh(&mut rng);
            prop_assert!((p.internal_width() - w0 / (1.0 + alpha)).abs()
                <= w0 / (1.0 + alpha) * 1e-12);
        }
    }

    #[test]
    fn policy_width_stays_positive_finite_under_any_sequence(
        seed in 0..u64::MAX,
        alpha in 0.0..10.0f64,
        theta in 0.1..10.0f64,
        ops in proptest::collection::vec(proptest::bool::ANY, 0..200),
    ) {
        let params = AdaptiveParams::from_theta(theta, alpha).unwrap();
        let mut p = AdaptivePolicy::new(params, 1.0).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        for grow in ops {
            if grow {
                p.on_value_refresh(Escape::Below, &mut rng);
            } else {
                p.on_query_refresh(&mut rng);
            }
            prop_assert!(p.internal_width() > 0.0);
            prop_assert!(p.internal_width().is_finite());
        }
    }

    #[test]
    fn thresholds_partition_effective_widths(
        w0 in 1e-3..1e6f64,
        gamma0 in 0.0..1e3f64,
        extra in 0.0..1e3f64,
    ) {
        let gamma1 = gamma0 + extra;
        let params = AdaptiveParams::from_theta(1.0, 1.0)
            .unwrap()
            .with_thresholds(gamma0, gamma1)
            .unwrap();
        let p = AdaptivePolicy::new(params, w0).unwrap();
        let eff = p.effective_width();
        if w0 < gamma0 {
            prop_assert_eq!(eff, 0.0);
        } else if w0 >= gamma1 {
            prop_assert!(eff.is_infinite());
        } else {
            prop_assert_eq!(eff, w0);
        }
    }

    #[test]
    fn uncentered_total_width_tracks_sides(
        w0 in 1e-3..1e6f64,
        ops in proptest::collection::vec(0u8..3, 0..100),
    ) {
        let params = AdaptiveParams::from_theta(1.0, 1.0).unwrap();
        let mut p = UncenteredPolicy::new(params, w0).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        for op in ops {
            match op {
                0 => p.on_value_refresh(Escape::Above, &mut rng),
                1 => p.on_value_refresh(Escape::Below, &mut rng),
                _ => p.on_query_refresh(&mut rng),
            }
            prop_assert!((p.internal_width() - (p.below() + p.above())).abs() < 1e-9);
            // The spec must always contain the value it is built around.
            let spec = p.make_spec(42.0, 0);
            prop_assert!(spec.contains(42.0, 0));
        }
    }

    #[test]
    fn cache_never_exceeds_capacity_and_evicts_widest(
        capacity in 1usize..16,
        refreshes in proptest::collection::vec((0u32..32, 0.0..100.0f64), 1..200),
    ) {
        let mut cache = Cache::new(CacheId(0), capacity).unwrap();
        // Naive model: map key -> width, evicting the (widest, largest-key)
        // entry when full.
        let mut model: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        for (key, w) in refreshes {
            let refresh = Refresh {
                key: Key(key),
                spec: ApproxSpec::constant_centered(0.0, w),
                internal_width: w,
            };
            let outcome = cache.apply_refresh(refresh);
            // Model transition.
            if model.contains_key(&key) {
                model.insert(key, w);
                prop_assert_eq!(outcome, AdmitOutcome::Updated);
            } else if model.len() < capacity {
                model.insert(key, w);
                prop_assert_eq!(outcome, AdmitOutcome::Inserted);
            } else {
                let (&vk, &vw) = model
                    .iter()
                    .max_by(|(ka, wa), (kb, wb)| {
                        wa.total_cmp(wb).then_with(|| ka.cmp(kb))
                    })
                    .unwrap();
                if w < vw {
                    model.remove(&vk);
                    model.insert(key, w);
                    prop_assert_eq!(outcome, AdmitOutcome::InsertedEvicting(Key(vk)));
                } else {
                    prop_assert_eq!(outcome, AdmitOutcome::Rejected);
                }
            }
            prop_assert!(cache.len() <= capacity);
            prop_assert_eq!(cache.len(), model.len());
            for (&k, &mw) in &model {
                let entry = cache.get(Key(k));
                prop_assert!(entry.is_some(), "model has {k} but cache lost it");
                prop_assert_eq!(entry.unwrap().internal_width, mw);
            }
        }
    }

    #[test]
    fn spec_validity_matches_interval_containment(
        center in finite_f64(),
        w in width(),
        probe in finite_f64(),
        t in 0u64..1_000_000,
    ) {
        let spec = ApproxSpec::constant_centered(center, w);
        let iv = spec.interval_at(t);
        prop_assert_eq!(spec.contains(probe, t), iv.contains(probe));
    }
}
