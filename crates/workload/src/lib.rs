//! # apcache-workload
//!
//! Workload generators for the SIGMOD 2001 evaluation:
//!
//! * [`walk`] — one-dimensional random walks (the synthetic data of
//!   Section 4.2: every second the value moves by ±U\[0.5, 1.5\]), plus
//!   biased variants used by the Section 4.5 ablations;
//! * [`trace`] — synthetic wide-area network traffic traces standing in
//!   for the Paxson–Floyd \[PF95\] data of Section 4.3 (self-similar ON/OFF
//!   construction, 1-minute moving-window averages per second, 50 hosts,
//!   two hours), with CSV import/export so real traces can be substituted;
//! * [`query`] — the query workload of Section 4.1: every `T_q` seconds a
//!   SUM or MAX over 10 randomly chosen sources with a precision
//!   constraint drawn uniformly from `[δ_avg(1−ρ), δ_avg(1+ρ)]`.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod query;
pub mod trace;
pub mod walk;

pub use query::{GeneratedQuery, KindMix, QueryConfig, QueryGenerator};
pub use trace::{TraceConfig, TraceError, TraceSet};
pub use walk::{ConstantProcess, RandomWalk, TraceProcess, ValueProcess, WalkConfig};
