//! Bounded-aggregate query workload generation (paper, Section 4.1).
//!
//! Every `T_q` seconds a query asks for the SUM or MAX of a set of
//! approximate values (10 randomly selected sources in the trace
//! experiments), accompanied by a precision constraint `δ` sampled
//! uniformly from `[δ_min, δ_max] = [δ_avg(1−ρ), δ_avg(1+ρ)]`.

use apcache_core::error::ParamError;
use apcache_core::{Key, Rng};
use apcache_queries::AggregateKind;

/// Which aggregate kinds the workload issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KindMix {
    /// Only SUM queries (most of the paper's experiments).
    SumOnly,
    /// Only MAX queries (the Section 4.4/4.6 MAX experiments).
    MaxOnly,
    /// Only MIN queries (extension).
    MinOnly,
    /// Only AVG queries (extension).
    AvgOnly,
    /// A fair coin flip between SUM and MAX per query (the paper's
    /// general description: "each query asks for either the SUM or MAX").
    SumOrMax,
}

/// Query workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryConfig {
    /// Query period `T_q` in seconds (may be fractional, e.g. `0.5`).
    pub period_secs: f64,
    /// Number of distinct sources each query reads (10 in the paper's
    /// trace experiments).
    pub fanout: usize,
    /// Average precision constraint `δ_avg`.
    pub delta_avg: f64,
    /// Constraint variation `ρ ∈ [0, 1]`: constraints are uniform on
    /// `[δ_avg(1−ρ), δ_avg(1+ρ)]`.
    pub delta_rho: f64,
    /// Aggregate kinds to issue.
    pub kind_mix: KindMix,
}

impl QueryConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), ParamError> {
        if !(self.period_secs.is_finite() && self.period_secs > 0.0) {
            return Err(ParamError::InvalidModelConstant {
                which: "query period",
                value: self.period_secs,
            });
        }
        if self.fanout == 0 {
            return Err(ParamError::InvalidModelConstant { which: "query fanout", value: 0.0 });
        }
        if !(self.delta_avg.is_finite() && self.delta_avg >= 0.0) {
            return Err(ParamError::InvalidModelConstant {
                which: "delta_avg",
                value: self.delta_avg,
            });
        }
        if !(0.0..=1.0).contains(&self.delta_rho) || self.delta_rho.is_nan() {
            return Err(ParamError::InvalidModelConstant {
                which: "delta_rho",
                value: self.delta_rho,
            });
        }
        Ok(())
    }

    /// Lower end of the constraint distribution, `δ_avg(1−ρ)`.
    pub fn delta_min(&self) -> f64 {
        self.delta_avg * (1.0 - self.delta_rho)
    }

    /// Upper end of the constraint distribution, `δ_avg(1+ρ)`.
    pub fn delta_max(&self) -> f64 {
        self.delta_avg * (1.0 + self.delta_rho)
    }
}

/// One generated query.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// Aggregate to compute.
    pub kind: AggregateKind,
    /// Keys the query reads (distinct).
    pub keys: Vec<Key>,
    /// Precision constraint `δ` for this query.
    pub delta: f64,
}

/// Deterministic generator of the paper's query workload.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    cfg: QueryConfig,
    n_sources: usize,
    rng: Rng,
}

impl QueryGenerator {
    /// Create a generator over `n_sources` sources.
    pub fn new(cfg: QueryConfig, n_sources: usize, rng: Rng) -> Result<Self, ParamError> {
        cfg.validate()?;
        if n_sources == 0 {
            return Err(ParamError::InvalidModelConstant { which: "n_sources", value: 0.0 });
        }
        Ok(QueryGenerator { cfg, n_sources, rng })
    }

    /// The configuration this generator runs with.
    pub fn config(&self) -> &QueryConfig {
        &self.cfg
    }

    /// Produce the next query.
    pub fn next_query(&mut self) -> GeneratedQuery {
        let kind = match self.cfg.kind_mix {
            KindMix::SumOnly => AggregateKind::Sum,
            KindMix::MaxOnly => AggregateKind::Max,
            KindMix::MinOnly => AggregateKind::Min,
            KindMix::AvgOnly => AggregateKind::Avg,
            KindMix::SumOrMax => {
                if self.rng.flip() {
                    AggregateKind::Sum
                } else {
                    AggregateKind::Max
                }
            }
        };
        let keys = self
            .rng
            .sample_indices(self.n_sources, self.cfg.fanout)
            .into_iter()
            .map(|i| Key(i as u32))
            .collect();
        let delta = if self.cfg.delta_avg == 0.0 {
            0.0
        } else {
            self.rng.uniform(self.cfg.delta_min(), self.cfg.delta_max())
        };
        GeneratedQuery { kind, keys, delta }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> QueryConfig {
        QueryConfig {
            period_secs: 1.0,
            fanout: 10,
            delta_avg: 100.0,
            delta_rho: 0.5,
            kind_mix: KindMix::SumOnly,
        }
    }

    #[test]
    fn validation() {
        assert!(cfg().validate().is_ok());
        assert!(QueryConfig { period_secs: 0.0, ..cfg() }.validate().is_err());
        assert!(QueryConfig { fanout: 0, ..cfg() }.validate().is_err());
        assert!(QueryConfig { delta_avg: -1.0, ..cfg() }.validate().is_err());
        assert!(QueryConfig { delta_rho: 1.5, ..cfg() }.validate().is_err());
        assert!(QueryGenerator::new(cfg(), 0, Rng::seed_from_u64(0)).is_err());
    }

    #[test]
    fn delta_range_derivation() {
        let c = cfg();
        assert_eq!(c.delta_min(), 50.0);
        assert_eq!(c.delta_max(), 150.0);
        let exact = QueryConfig { delta_avg: 0.0, delta_rho: 1.0, ..cfg() };
        assert_eq!(exact.delta_min(), 0.0);
        assert_eq!(exact.delta_max(), 0.0);
    }

    #[test]
    fn queries_have_distinct_keys_in_range() {
        let mut g = QueryGenerator::new(cfg(), 50, Rng::seed_from_u64(1)).unwrap();
        for _ in 0..100 {
            let q = g.next_query();
            assert_eq!(q.kind, AggregateKind::Sum);
            assert_eq!(q.keys.len(), 10);
            let mut sorted = q.keys.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 10);
            assert!(q.keys.iter().all(|k| k.0 < 50));
            assert!((50.0..=150.0).contains(&q.delta));
        }
    }

    #[test]
    fn fanout_larger_than_sources_is_clamped() {
        let c = QueryConfig { fanout: 10, ..cfg() };
        let mut g = QueryGenerator::new(c, 3, Rng::seed_from_u64(1)).unwrap();
        let q = g.next_query();
        assert_eq!(q.keys.len(), 3);
    }

    #[test]
    fn sum_or_max_mix_is_roughly_fair() {
        let c = QueryConfig { kind_mix: KindMix::SumOrMax, ..cfg() };
        let mut g = QueryGenerator::new(c, 50, Rng::seed_from_u64(2)).unwrap();
        let n = 10_000;
        let sums = (0..n).filter(|_| g.next_query().kind == AggregateKind::Sum).count();
        let frac = sums as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "frac={frac}");
    }

    #[test]
    fn zero_delta_avg_always_exact() {
        let c = QueryConfig { delta_avg: 0.0, delta_rho: 1.0, ..cfg() };
        let mut g = QueryGenerator::new(c, 50, Rng::seed_from_u64(3)).unwrap();
        for _ in 0..100 {
            assert_eq!(g.next_query().delta, 0.0);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = QueryGenerator::new(cfg(), 50, Rng::seed_from_u64(7)).unwrap();
        let mut b = QueryGenerator::new(cfg(), 50, Rng::seed_from_u64(7)).unwrap();
        for _ in 0..100 {
            let qa = a.next_query();
            let qb = b.next_query();
            assert_eq!(qa.keys, qb.keys);
            assert_eq!(qa.delta, qb.delta);
        }
    }

    #[test]
    fn other_kind_mixes() {
        for (mix, kind) in [
            (KindMix::MaxOnly, AggregateKind::Max),
            (KindMix::MinOnly, AggregateKind::Min),
            (KindMix::AvgOnly, AggregateKind::Avg),
        ] {
            let c = QueryConfig { kind_mix: mix, ..cfg() };
            let mut g = QueryGenerator::new(c, 50, Rng::seed_from_u64(4)).unwrap();
            assert_eq!(g.next_query().kind, kind);
        }
    }
}
