//! Value processes: how source values evolve over (one-second) time steps.

use apcache_core::error::ParamError;
use apcache_core::Rng;

/// A source-value process advanced in one-second steps.
///
/// Implementations must be deterministic given their seed.
pub trait ValueProcess: Send {
    /// Advance one second and return the new value. The simulator treats a
    /// returned value equal to the previous one as "no update".
    fn step(&mut self) -> f64;

    /// The current value (the value returned by the last `step`, or the
    /// initial value before any step).
    fn value(&self) -> f64;
}

/// Configuration of a one-dimensional random walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkConfig {
    /// Starting value.
    pub initial: f64,
    /// Minimum step magnitude.
    pub step_lo: f64,
    /// Maximum step magnitude.
    pub step_hi: f64,
    /// Probability the step is upward (`0.5` = unbiased).
    pub p_up: f64,
}

impl WalkConfig {
    /// The paper's synthetic workload (Section 4.2): every second the
    /// value moves up or down by an amount uniform on `[0.5, 1.5]`.
    pub fn paper_default() -> Self {
        WalkConfig { initial: 0.0, step_lo: 0.5, step_hi: 1.5, p_up: 0.5 }
    }

    /// A biased walk (Section 4.5's "values much more likely to go up than
    /// down") with the paper's step magnitudes.
    pub fn biased(p_up: f64) -> Self {
        WalkConfig { p_up, ..Self::paper_default() }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), ParamError> {
        if !self.initial.is_finite() {
            return Err(ParamError::InvalidModelConstant {
                which: "walk initial",
                value: self.initial,
            });
        }
        if !(self.step_lo.is_finite() && self.step_lo >= 0.0) {
            return Err(ParamError::InvalidModelConstant {
                which: "walk step_lo",
                value: self.step_lo,
            });
        }
        if !(self.step_hi.is_finite() && self.step_hi >= self.step_lo) {
            return Err(ParamError::InvalidModelConstant {
                which: "walk step_hi",
                value: self.step_hi,
            });
        }
        if !(0.0..=1.0).contains(&self.p_up) || self.p_up.is_nan() {
            return Err(ParamError::InvalidModelConstant { which: "walk p_up", value: self.p_up });
        }
        Ok(())
    }

    /// Second moment `E[s²]` of the step magnitude (used to parameterize
    /// the analytic model's `K1`).
    pub fn step_second_moment(&self) -> f64 {
        let (lo, hi) = (self.step_lo, self.step_hi);
        if hi == lo {
            return lo * lo;
        }
        (hi * hi * hi - lo * lo * lo) / (3.0 * (hi - lo))
    }

    /// Expected per-second drift (`0` for an unbiased walk).
    pub fn drift(&self) -> f64 {
        let mean_step = (self.step_lo + self.step_hi) / 2.0;
        (2.0 * self.p_up - 1.0) * mean_step
    }
}

/// A one-dimensional random walk value process.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    cfg: WalkConfig,
    value: f64,
    rng: Rng,
}

impl RandomWalk {
    /// Create a walk with its own RNG stream.
    pub fn new(cfg: WalkConfig, rng: Rng) -> Result<Self, ParamError> {
        cfg.validate()?;
        Ok(RandomWalk { value: cfg.initial, cfg, rng })
    }

    /// Create a walk seeded directly.
    pub fn seeded(cfg: WalkConfig, seed: u64) -> Result<Self, ParamError> {
        Self::new(cfg, Rng::seed_from_u64(seed))
    }
}

impl ValueProcess for RandomWalk {
    fn step(&mut self) -> f64 {
        let magnitude = self.rng.uniform(self.cfg.step_lo, self.cfg.step_hi);
        let up = self.rng.bernoulli(self.cfg.p_up);
        self.value += if up { magnitude } else { -magnitude };
        self.value
    }

    fn value(&self) -> f64 {
        self.value
    }
}

/// A process replaying a precomputed series (one sample per second); holds
/// the last value once the series is exhausted.
#[derive(Debug, Clone)]
pub struct TraceProcess {
    values: Vec<f64>,
    /// Index of the *next* sample to emit.
    next: usize,
    current: f64,
}

impl TraceProcess {
    /// Create from a non-empty series. The process starts at the first
    /// sample; each `step` advances to the next.
    pub fn new(values: Vec<f64>) -> Result<Self, ParamError> {
        let Some(&first) = values.first() else {
            return Err(ParamError::InvalidModelConstant { which: "trace length", value: 0.0 });
        };
        if let Some(&bad) = values.iter().find(|v| !v.is_finite()) {
            return Err(ParamError::InvalidModelConstant { which: "trace sample", value: bad });
        }
        Ok(TraceProcess { values, next: 1, current: first })
    }

    /// Number of samples in the underlying series.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the replay has reached the final sample.
    pub fn exhausted(&self) -> bool {
        self.next >= self.values.len()
    }
}

impl ValueProcess for TraceProcess {
    fn step(&mut self) -> f64 {
        if self.next < self.values.len() {
            self.current = self.values[self.next];
            self.next += 1;
        }
        self.current
    }

    fn value(&self) -> f64 {
        self.current
    }
}

/// A process that never changes — useful for tests and as the degenerate
/// "no updates" workload.
#[derive(Debug, Clone, Copy)]
pub struct ConstantProcess(pub f64);

impl ValueProcess for ConstantProcess {
    fn step(&mut self) -> f64 {
        self.0
    }

    fn value(&self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(WalkConfig::paper_default().validate().is_ok());
        assert!(WalkConfig { step_lo: -1.0, ..WalkConfig::paper_default() }.validate().is_err());
        assert!(WalkConfig { step_lo: 2.0, step_hi: 1.0, ..WalkConfig::paper_default() }
            .validate()
            .is_err());
        assert!(WalkConfig { p_up: 1.5, ..WalkConfig::paper_default() }.validate().is_err());
        assert!(WalkConfig { initial: f64::NAN, ..WalkConfig::paper_default() }
            .validate()
            .is_err());
    }

    #[test]
    fn paper_walk_steps_in_range() {
        let mut w = RandomWalk::seeded(WalkConfig::paper_default(), 1).unwrap();
        let mut prev = w.value();
        for _ in 0..10_000 {
            let v = w.step();
            let d = (v - prev).abs();
            assert!((0.5..=1.5).contains(&d), "step magnitude {d}");
            prev = v;
        }
    }

    #[test]
    fn unbiased_walk_has_no_drift() {
        let mut w = RandomWalk::seeded(WalkConfig::paper_default(), 2).unwrap();
        let n = 200_000;
        for _ in 0..n {
            w.step();
        }
        // Std dev of the endpoint is ~ sqrt(n·E[s²]) ≈ 466; the mean path
        // should end well within a few sigma of 0.
        assert!(w.value().abs() < 2_000.0, "drifted to {}", w.value());
    }

    #[test]
    fn biased_walk_drifts_up() {
        let cfg = WalkConfig::biased(0.9);
        let mut w = RandomWalk::seeded(cfg, 3).unwrap();
        let n = 10_000;
        for _ in 0..n {
            w.step();
        }
        let expected = cfg.drift() * n as f64;
        assert!(expected > 0.0);
        assert!((w.value() - expected).abs() < expected * 0.1, "value={}", w.value());
    }

    #[test]
    fn second_moment_matches_closed_form() {
        let cfg = WalkConfig::paper_default();
        // E[s²] for U[0.5,1.5] = (1.5³ − 0.5³)/3 = 3.25/3.
        assert!((cfg.step_second_moment() - 3.25 / 3.0).abs() < 1e-12);
        let degenerate = WalkConfig { step_lo: 2.0, step_hi: 2.0, ..cfg };
        assert_eq!(degenerate.step_second_moment(), 4.0);
    }

    #[test]
    fn walks_are_deterministic_per_seed() {
        let mut a = RandomWalk::seeded(WalkConfig::paper_default(), 42).unwrap();
        let mut b = RandomWalk::seeded(WalkConfig::paper_default(), 42).unwrap();
        for _ in 0..1000 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn trace_process_replays_and_holds() {
        let mut t = TraceProcess::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(t.value(), 1.0);
        assert_eq!(t.step(), 2.0);
        assert_eq!(t.step(), 3.0);
        assert!(t.exhausted());
        assert_eq!(t.step(), 3.0); // holds last
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn trace_process_validation() {
        assert!(TraceProcess::new(vec![]).is_err());
        assert!(TraceProcess::new(vec![1.0, f64::NAN]).is_err());
        assert!(TraceProcess::new(vec![1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn constant_process_never_changes() {
        let mut c = ConstantProcess(5.0);
        assert_eq!(c.value(), 5.0);
        for _ in 0..10 {
            assert_eq!(c.step(), 5.0);
        }
    }
}
