//! Synthetic wide-area network traffic traces.
//!
//! The paper's real-world experiments (Section 4.3) replay two hours of
//! Paxson–Floyd \[PF95\] wide-area traces: for each of the 50 most heavily
//! trafficked hosts, the data value is a one-minute moving-window average
//! of traffic, sampled every second, ranging from 0 to 5.2·10⁶ bytes/s.
//! Those traces are not redistributable, so this module generates a
//! faithful synthetic stand-in — and \[PF95\]'s own result tells us what
//! "faithful" means: wide-area traffic is *self-similar*, well modelled by
//! superposing ON/OFF sources with heavy-tailed (Pareto) sojourn times.
//!
//! Per host the generator:
//!
//! 1. draws a heavy-tailed host intensity (a few hosts dominate, most are
//!    quiet — matching "the 50 most heavily trafficked hosts" of a larger
//!    population);
//! 2. alternates OFF and ON periods with Pareto-distributed durations;
//!    during ON periods it emits a per-burst rate with per-second jitter;
//! 3. applies the same one-minute moving average the paper uses;
//! 4. rescales so the busiest host peaks at `peak_rate` (5.2·10⁶ B/s).
//!
//! The long OFF periods reproduce the "host became active after a period
//! of inactivity" dynamics of Figures 4 and 5. Users with access to real
//! traces can load them via [`TraceSet::from_csv_str`] /
//! [`TraceSet::from_csv_path`] instead.

use std::fmt;
use std::path::Path;

use apcache_core::error::ParamError;
use apcache_core::Rng;

use crate::walk::TraceProcess;

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Number of hosts (sources). Paper: 50.
    pub n_hosts: usize,
    /// Trace duration in seconds. Paper: two hours = 7200.
    pub duration_secs: usize,
    /// Moving-average window in seconds. Paper: one minute = 60.
    pub window_secs: usize,
    /// Pareto tail index for ON/OFF durations; `1 < shape <= 2` yields the
    /// heavy tails behind self-similar aggregate traffic.
    pub pareto_shape: f64,
    /// Mean ON-period duration in seconds.
    pub mean_on_secs: f64,
    /// Mean OFF-period duration in seconds.
    pub mean_off_secs: f64,
    /// Peak traffic level after rescaling (B/s). Paper: 5.2·10⁶.
    pub peak_rate: f64,
    /// Pareto tail index for the cross-host intensity distribution
    /// (smaller = more skew between heavy and light hosts).
    pub host_skew_shape: f64,
}

impl TraceConfig {
    /// Parameters matching the paper's setting: 50 hosts, 2 hours, 60 s
    /// window, peak 5.2·10⁶ B/s, classical Pareto shape 1.4. ON/OFF
    /// sojourns are on multi-minute timescales so the minute-averaged
    /// values slew gently relative to their magnitude, as the paper's
    /// plotted host does (Figures 4–5).
    pub fn paper_like() -> Self {
        TraceConfig {
            n_hosts: 50,
            duration_secs: 7_200,
            window_secs: 60,
            pareto_shape: 1.4,
            mean_on_secs: 90.0,
            mean_off_secs: 240.0,
            peak_rate: 5.2e6,
            host_skew_shape: 1.2,
        }
    }

    /// A small/fast configuration for tests (short bursts so even short
    /// traces exercise both ON and OFF periods).
    pub fn small() -> Self {
        TraceConfig {
            n_hosts: 8,
            duration_secs: 600,
            mean_on_secs: 20.0,
            mean_off_secs: 40.0,
            ..Self::paper_like()
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), ParamError> {
        fn pos(which: &'static str, v: f64) -> Result<(), ParamError> {
            if !(v.is_finite() && v > 0.0) {
                return Err(ParamError::InvalidModelConstant { which, value: v });
            }
            Ok(())
        }
        if self.n_hosts == 0 {
            return Err(ParamError::InvalidModelConstant { which: "n_hosts", value: 0.0 });
        }
        if self.duration_secs == 0 {
            return Err(ParamError::InvalidModelConstant { which: "duration_secs", value: 0.0 });
        }
        if self.window_secs == 0 {
            return Err(ParamError::InvalidModelConstant { which: "window_secs", value: 0.0 });
        }
        pos("pareto_shape", self.pareto_shape)?;
        if self.pareto_shape <= 1.0 {
            // Mean would be infinite; the generator needs finite means to
            // target mean_on/mean_off.
            return Err(ParamError::InvalidModelConstant {
                which: "pareto_shape",
                value: self.pareto_shape,
            });
        }
        pos("mean_on_secs", self.mean_on_secs)?;
        pos("mean_off_secs", self.mean_off_secs)?;
        pos("peak_rate", self.peak_rate)?;
        pos("host_skew_shape", self.host_skew_shape)?;
        Ok(())
    }
}

/// Errors loading traces from CSV.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed CSV line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Host series have inconsistent lengths or indices.
    Inconsistent(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace CSV parse error at line {line}: {message}")
            }
            TraceError::Inconsistent(m) => write!(f, "inconsistent trace data: {m}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A set of per-host traffic series (one sample per second per host).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSet {
    /// `hosts[h][t]` = traffic level of host `h` at second `t`.
    hosts: Vec<Vec<f64>>,
}

impl TraceSet {
    /// Generate a synthetic trace set.
    pub fn generate(cfg: &TraceConfig, seed: u64) -> Result<Self, ParamError> {
        cfg.validate()?;
        let mut master = Rng::seed_from_u64(seed ^ 0x7261_6365); // "race"

        // Heavy-tailed intensity per host, sorted descending so host 0 is
        // the busiest ("the 50 most heavily trafficked hosts").
        let mut intensities: Vec<f64> =
            (0..cfg.n_hosts).map(|_| master.pareto(1.0, cfg.host_skew_shape)).collect();
        intensities.sort_by(|a, b| b.total_cmp(a));
        let max_intensity = intensities[0];

        let mut hosts = Vec::with_capacity(cfg.n_hosts);
        for &intensity in &intensities {
            let mut rng = master.fork();
            let raw = generate_raw_host(cfg, intensity / max_intensity, &mut rng);
            hosts.push(moving_average(&raw, cfg.window_secs));
        }
        // Rescale so the global maximum hits peak_rate.
        let global_max = hosts.iter().flat_map(|h| h.iter().copied()).fold(0.0_f64, f64::max);
        if global_max > 0.0 {
            let scale = cfg.peak_rate / global_max;
            for h in &mut hosts {
                for v in h.iter_mut() {
                    *v *= scale;
                }
            }
        }
        Ok(TraceSet { hosts })
    }

    /// Build directly from per-host series (used by tests and loaders).
    pub fn from_series(hosts: Vec<Vec<f64>>) -> Result<Self, TraceError> {
        if hosts.is_empty() {
            return Err(TraceError::Inconsistent("no hosts".into()));
        }
        let len = hosts[0].len();
        if len == 0 {
            return Err(TraceError::Inconsistent("empty series".into()));
        }
        for (i, h) in hosts.iter().enumerate() {
            if h.len() != len {
                return Err(TraceError::Inconsistent(format!(
                    "host {i} has {} samples, expected {len}",
                    h.len()
                )));
            }
            if let Some(bad) = h.iter().find(|v| !v.is_finite()) {
                return Err(TraceError::Inconsistent(format!(
                    "host {i} contains non-finite sample {bad}"
                )));
            }
        }
        Ok(TraceSet { hosts })
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Trace duration in seconds.
    pub fn duration_secs(&self) -> usize {
        self.hosts[0].len()
    }

    /// The series for one host.
    pub fn host(&self, h: usize) -> &[f64] {
        &self.hosts[h]
    }

    /// A replayable [`TraceProcess`] for one host.
    pub fn process(&self, h: usize) -> TraceProcess {
        TraceProcess::new(self.hosts[h].clone()).expect("validated non-empty finite series")
    }

    /// Global maximum sample.
    pub fn peak(&self) -> f64 {
        self.hosts.iter().flat_map(|h| h.iter().copied()).fold(0.0_f64, f64::max)
    }

    /// Per-host count of seconds at which the value *changed* — the
    /// "update" events of the protocol (used by the divergence-caching
    /// experiments and the WJH97 write counters).
    pub fn change_counts(&self) -> Vec<usize> {
        self.hosts.iter().map(|h| h.windows(2).filter(|w| w[0] != w[1]).count()).collect()
    }

    /// Serialize as CSV (`host,second,value` with a header row).
    pub fn to_csv_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.n_hosts() * self.duration_secs() * 16);
        out.push_str("host,second,value\n");
        for (h, series) in self.hosts.iter().enumerate() {
            for (t, v) in series.iter().enumerate() {
                // Plain decimal keeps the file loadable by anything.
                let _ = writeln!(out, "{h},{t},{v}");
            }
        }
        out
    }

    /// Parse the CSV format produced by [`TraceSet::to_csv_string`]
    /// (also accepts real-trace exports in the same shape).
    pub fn from_csv_str(s: &str) -> Result<Self, TraceError> {
        let mut rows: Vec<(usize, usize, f64)> = Vec::new();
        for (lineno, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (lineno == 0 && line.starts_with("host")) {
                continue;
            }
            let mut parts = line.split(',');
            let parse_err = |message: String| TraceError::Parse { line: lineno + 1, message };
            let host: usize = parts
                .next()
                .ok_or_else(|| parse_err("missing host".into()))?
                .trim()
                .parse()
                .map_err(|e| parse_err(format!("bad host: {e}")))?;
            let second: usize = parts
                .next()
                .ok_or_else(|| parse_err("missing second".into()))?
                .trim()
                .parse()
                .map_err(|e| parse_err(format!("bad second: {e}")))?;
            let value: f64 = parts
                .next()
                .ok_or_else(|| parse_err("missing value".into()))?
                .trim()
                .parse()
                .map_err(|e| parse_err(format!("bad value: {e}")))?;
            if !value.is_finite() {
                return Err(parse_err(format!("non-finite value {value}")));
            }
            if parts.next().is_some() {
                return Err(parse_err("too many fields".into()));
            }
            rows.push((host, second, value));
        }
        if rows.is_empty() {
            return Err(TraceError::Inconsistent("no data rows".into()));
        }
        let n_hosts = rows.iter().map(|r| r.0).max().expect("nonempty") + 1;
        let duration = rows.iter().map(|r| r.1).max().expect("nonempty") + 1;
        let mut hosts = vec![vec![f64::NAN; duration]; n_hosts];
        for (h, t, v) in rows {
            hosts[h][t] = v;
        }
        for (h, series) in hosts.iter().enumerate() {
            if let Some(t) = series.iter().position(|v| v.is_nan()) {
                return Err(TraceError::Inconsistent(format!("host {h} is missing second {t}")));
            }
        }
        Ok(TraceSet { hosts })
    }

    /// Load a CSV trace file from disk.
    pub fn from_csv_path(path: &Path) -> Result<Self, TraceError> {
        let contents = std::fs::read_to_string(path)?;
        Self::from_csv_str(&contents)
    }

    /// Write the CSV representation to disk.
    pub fn to_csv_path(&self, path: &Path) -> Result<(), TraceError> {
        std::fs::write(path, self.to_csv_string())?;
        Ok(())
    }
}

/// Raw (pre-averaging) per-second traffic for one host.
fn generate_raw_host(cfg: &TraceConfig, rel_intensity: f64, rng: &mut Rng) -> Vec<f64> {
    let shape = cfg.pareto_shape;
    // Pareto(scale, shape) has mean scale·shape/(shape−1); invert for the
    // requested mean durations.
    let on_scale = cfg.mean_on_secs * (shape - 1.0) / shape;
    let off_scale = cfg.mean_off_secs * (shape - 1.0) / shape;
    let mut raw = vec![0.0f64; cfg.duration_secs];
    // Busy hosts spend proportionally more time ON; quiet hosts sleep
    // longer, giving the long-idle-then-activate pattern of Figs 4–5.
    let off_stretch = 1.0 / rel_intensity.max(0.05);
    let mut t = 0usize;
    // Randomize the phase so hosts don't all start in an OFF period edge.
    let mut in_on = rng.bernoulli(0.3);
    while t < cfg.duration_secs {
        if in_on {
            let dur = rng.pareto(on_scale, shape).round().max(1.0) as usize;
            // One nominal rate per burst; the lognormal factor spreads
            // burst sizes over ~2 orders of magnitude, as real flows do.
            // Within a burst the rate wanders slowly (AR(1) with a long
            // memory) so the minute-averaged value slews gently instead of
            // jumping every second.
            let burst_rate = rel_intensity * (rng.normal_with(0.0, 0.8)).exp();
            let end = (t + dur).min(cfg.duration_secs);
            let mut m = 1.0f64;
            for slot in &mut raw[t..end] {
                m = 0.97 * m + 0.03 * rng.uniform(0.6, 1.4);
                *slot = burst_rate * m;
            }
            t = end;
        } else {
            let dur = rng.pareto(off_scale * off_stretch, shape).round().max(1.0) as usize;
            t = (t + dur).min(cfg.duration_secs);
        }
        in_on = !in_on;
    }
    raw
}

/// One-minute (well, `window`-second) moving average sampled every second,
/// with partial windows at the start — matching the paper's "one minute
/// moving window average of network traffic every second".
fn moving_average(raw: &[f64], window: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(raw.len());
    let mut sum = 0.0f64;
    for t in 0..raw.len() {
        sum += raw[t];
        if t >= window {
            sum -= raw[t - window];
        }
        // The running subtract accumulates floating-point error that can
        // leave a tiny negative residue on idle stretches; clamp so idle
        // hosts read exactly 0 (and generate no spurious updates).
        if sum < 1e-9 {
            sum = 0.0;
        }
        let denom = (t + 1).min(window) as f64;
        out.push(sum / denom);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::ValueProcess;

    #[test]
    fn config_validation() {
        assert!(TraceConfig::paper_like().validate().is_ok());
        assert!(TraceConfig { n_hosts: 0, ..TraceConfig::paper_like() }.validate().is_err());
        assert!(TraceConfig { pareto_shape: 0.9, ..TraceConfig::paper_like() }.validate().is_err());
        assert!(TraceConfig { mean_on_secs: 0.0, ..TraceConfig::paper_like() }.validate().is_err());
    }

    #[test]
    fn moving_average_flat_series() {
        let avg = moving_average(&[2.0; 10], 4);
        for v in avg {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn moving_average_step_series() {
        // Raw: 0,0,0,0,4,4,4,4 with window 4.
        let avg = moving_average(&[0.0, 0.0, 0.0, 0.0, 4.0, 4.0, 4.0, 4.0], 4);
        assert_eq!(avg[3], 0.0);
        assert_eq!(avg[4], 1.0);
        assert_eq!(avg[5], 2.0);
        assert_eq!(avg[7], 4.0);
    }

    #[test]
    fn generated_trace_has_paper_shape() {
        let cfg = TraceConfig::small();
        let t = TraceSet::generate(&cfg, 1).unwrap();
        assert_eq!(t.n_hosts(), cfg.n_hosts);
        assert_eq!(t.duration_secs(), cfg.duration_secs);
        // Nonnegative everywhere, peak at the configured level.
        for h in 0..t.n_hosts() {
            assert!(t.host(h).iter().all(|&v| v >= 0.0 && v.is_finite()));
        }
        assert!((t.peak() - cfg.peak_rate).abs() < 1e-6 * cfg.peak_rate);
    }

    #[test]
    fn hosts_are_heterogeneous_and_bursty() {
        let cfg = TraceConfig { n_hosts: 20, duration_secs: 2_000, ..TraceConfig::paper_like() };
        let t = TraceSet::generate(&cfg, 7).unwrap();
        let means: Vec<f64> = (0..t.n_hosts())
            .map(|h| t.host(h).iter().sum::<f64>() / t.duration_secs() as f64)
            .collect();
        // Host 0 (busiest) should dominate the median host by a large
        // factor — heavy-tailed cross-host skew.
        let mut sorted = means.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        assert!(means[0] > 3.0 * median, "means[0]={} median={median}", means[0]);
        // Burstiness: at least one host is idle (exactly zero) for a
        // meaningful stretch.
        let any_idle = (0..t.n_hosts())
            .any(|h| t.host(h).iter().filter(|&&v| v == 0.0).count() > cfg.duration_secs / 20);
        assert!(any_idle, "expected idle stretches in at least one host");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TraceConfig::small();
        let a = TraceSet::generate(&cfg, 99).unwrap();
        let b = TraceSet::generate(&cfg, 99).unwrap();
        assert_eq!(a, b);
        let c = TraceSet::generate(&cfg, 100).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn csv_round_trip() {
        let cfg = TraceConfig { n_hosts: 3, duration_secs: 50, ..TraceConfig::paper_like() };
        let t = TraceSet::generate(&cfg, 5).unwrap();
        let csv = t.to_csv_string();
        let back = TraceSet::from_csv_str(&csv).unwrap();
        assert_eq!(t.n_hosts(), back.n_hosts());
        assert_eq!(t.duration_secs(), back.duration_secs());
        for h in 0..t.n_hosts() {
            for (a, b) in t.host(h).iter().zip(back.host(h)) {
                assert!((a - b).abs() <= a.abs() * 1e-12, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn csv_error_reporting() {
        assert!(matches!(TraceSet::from_csv_str(""), Err(TraceError::Inconsistent(_))));
        assert!(matches!(
            TraceSet::from_csv_str("host,second,value\n0,0,abc"),
            Err(TraceError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            TraceSet::from_csv_str("host,second,value\n0,0,1.0,9"),
            Err(TraceError::Parse { .. })
        ));
        // Missing (0,1) sample while host 0 has second 2.
        assert!(matches!(
            TraceSet::from_csv_str("host,second,value\n0,0,1.0\n0,2,2.0"),
            Err(TraceError::Inconsistent(_))
        ));
    }

    #[test]
    fn from_series_validation() {
        assert!(TraceSet::from_series(vec![]).is_err());
        assert!(TraceSet::from_series(vec![vec![]]).is_err());
        assert!(TraceSet::from_series(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(TraceSet::from_series(vec![vec![1.0, f64::NAN]]).is_err());
        assert!(TraceSet::from_series(vec![vec![1.0, 2.0]]).is_ok());
    }

    #[test]
    fn process_replays_host_series() {
        let cfg = TraceConfig { n_hosts: 2, duration_secs: 30, ..TraceConfig::paper_like() };
        let t = TraceSet::generate(&cfg, 3).unwrap();
        let mut p = t.process(1);
        assert_eq!(p.value(), t.host(1)[0]);
        for expected in &t.host(1)[1..] {
            assert_eq!(p.step(), *expected);
        }
    }

    #[test]
    fn change_counts_detect_updates() {
        let t = TraceSet::from_series(vec![
            vec![1.0, 1.0, 2.0, 2.0, 3.0],
            vec![5.0, 5.0, 5.0, 5.0, 5.0],
        ])
        .unwrap();
        assert_eq!(t.change_counts(), vec![2, 0]);
    }
}
