//! The flat deployment the hierarchy is compared against: every leaf
//! talks to the source directly over the full network path, using the
//! core crate's native multi-cache sources (one registered approximation
//! per leaf).

use apcache_core::cache::Cache;
use apcache_core::cost::CostModel;
use apcache_core::policy::{AdaptiveParams, AdaptivePolicy};
use apcache_core::source::Source;
use apcache_core::{CacheId, Interval, Key, Rng, TimeMs};
use apcache_sim::error::SimError;
use apcache_sim::stats::Stats;
use apcache_sim::system::{CacheSystem, QuerySummary};
use apcache_workload::query::GeneratedQuery;

use crate::system::{LeafId, MultiLevelConfig};

/// Flat fan-out: each of the `n_leaves` caches registers directly at the
/// source; every refresh traverses the full path (upper + lower hop
/// costs combined).
#[derive(Debug)]
pub struct FlatFanoutSystem {
    full_path: CostModel,
    n_leaves: usize,
    sources: Vec<Source>,
    leaves: Vec<Cache>,
    rng: Rng,
}

impl FlatFanoutSystem {
    /// Assemble the flat deployment from the same configuration as the
    /// hierarchy (hop costs are summed into one end-to-end cost).
    pub fn new(
        cfg: &MultiLevelConfig,
        initial_values: &[f64],
        mut rng: Rng,
    ) -> Result<Self, SimError> {
        if cfg.n_leaves == 0 {
            return Err(SimError::Config("need at least one leaf".into()));
        }
        if initial_values.is_empty() {
            return Err(SimError::Config("at least one source required".into()));
        }
        let full_path = CostModel::new(
            cfg.upper_cost.c_vr() + cfg.lower_cost.c_vr(),
            cfg.upper_cost.c_qr() + cfg.lower_cost.c_qr(),
        )?;
        let params =
            AdaptiveParams::new(&full_path, cfg.alpha)?.with_thresholds(cfg.gamma0, cfg.gamma1)?;
        let mut leaves: Vec<Cache> =
            (0..cfg.n_leaves).map(|l| Cache::unbounded(CacheId(l as u32))).collect();
        let mut sources = Vec::with_capacity(initial_values.len());
        for (i, &v) in initial_values.iter().enumerate() {
            let mut source = Source::new(Key(i as u32), v)?;
            for (l, leaf) in leaves.iter_mut().enumerate() {
                let policy = AdaptivePolicy::new(params, cfg.initial_width)?;
                let refresh = source.register(CacheId(l as u32), Box::new(policy), 0)?;
                leaf.apply_refresh(refresh);
            }
            sources.push(source);
        }
        Ok(FlatFanoutSystem { full_path, n_leaves: cfg.n_leaves, sources, leaves, rng: rng.fork() })
    }

    /// Bounded read of `key` at `leaf`.
    pub fn read_bounded(
        &mut self,
        leaf: LeafId,
        key: Key,
        delta: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<Interval, SimError> {
        let li = leaf.0 as usize;
        let ki = key.0 as usize;
        if li >= self.n_leaves || ki >= self.sources.len() {
            return Err(SimError::Config(format!("unknown leaf {} or {key}", leaf.0)));
        }
        let cached = self.leaves[li].interval_at(key, now).unwrap_or_else(Interval::unbounded);
        if cached.width() <= delta {
            return Ok(cached);
        }
        stats.record_qr(self.full_path.c_qr());
        let resp = self.sources[ki].serve_exact(CacheId(leaf.0), now, &mut self.rng)?;
        self.leaves[li].apply_refresh(resp.refresh);
        Ok(Interval::point(resp.value).expect("finite value"))
    }
}

impl CacheSystem for FlatFanoutSystem {
    fn on_update(
        &mut self,
        key: Key,
        value: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let ki = key.0 as usize;
        let source =
            self.sources.get_mut(ki).ok_or_else(|| SimError::Config(format!("unknown {key}")))?;
        // Every escaped leaf pays the full end-to-end refresh.
        for (cache_id, refresh) in source.apply_update(value, now, &mut self.rng)? {
            stats.record_vr(self.full_path.c_vr());
            self.leaves[cache_id.0 as usize].apply_refresh(refresh);
        }
        Ok(())
    }

    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError> {
        let leaf = LeafId(self.rng.below(self.n_leaves as u64) as u32);
        let before = stats.qr_count();
        let mut answer: Option<Interval> = None;
        for &key in &query.keys {
            let iv = self.read_bounded(leaf, key, query.delta, now, stats)?;
            answer = Some(match answer {
                None => iv,
                Some(a) => a.add(&iv),
            });
        }
        Ok(QuerySummary { answer, refreshes: (stats.qr_count() - before) as usize })
    }

    fn interval_of(&self, key: Key, now: TimeMs) -> Option<Interval> {
        self.leaves[0].interval_at(key, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measuring() -> Stats {
        let mut s = Stats::new();
        s.begin_measurement();
        s
    }

    #[test]
    fn every_leaf_pays_full_path_on_escape() {
        let cfg = MultiLevelConfig { n_leaves: 4, ..MultiLevelConfig::default() };
        let mut sys = FlatFanoutSystem::new(&cfg, &[100.0], Rng::seed_from_u64(1)).unwrap();
        let mut stats = measuring();
        sys.on_update(Key(0), 1_000.0, 1_000, &mut stats).unwrap();
        // All 4 leaves escaped; each refresh costs 1 + 0.25.
        assert_eq!(stats.vr_count(), 4);
        assert!((stats.total_cost() - 4.0 * 1.25).abs() < 1e-12);
    }

    #[test]
    fn reads_hit_or_pay_full_path() {
        let cfg = MultiLevelConfig { n_leaves: 2, ..MultiLevelConfig::default() };
        let mut sys = FlatFanoutSystem::new(&cfg, &[100.0], Rng::seed_from_u64(1)).unwrap();
        let mut stats = measuring();
        // Loose read: free.
        let iv = sys.read_bounded(LeafId(0), Key(0), 1e9, 0, &mut stats).unwrap();
        assert!(iv.contains(100.0));
        assert_eq!(stats.qr_count(), 0);
        // Exact read: one full-path QR (2 + 0.5).
        let iv = sys.read_bounded(LeafId(0), Key(0), 0.0, 0, &mut stats).unwrap();
        assert!(iv.is_exact());
        assert!((stats.total_cost() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        let cfg = MultiLevelConfig { n_leaves: 0, ..MultiLevelConfig::default() };
        assert!(FlatFanoutSystem::new(&cfg, &[1.0], Rng::seed_from_u64(0)).is_err());
    }
}
