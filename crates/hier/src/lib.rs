//! # apcache-hier
//!
//! Multi-level approximate caching — the future-work direction sketched in
//! Section 5 of the SIGMOD 2001 paper:
//!
//! > "We also plan to explore algorithms for setting precision in
//! > multi-level data caching environments, where each data object
//! > resides on one source and there is a hierarchy of caches. With
//! > multi-level caching, the precision of an approximation in one cache
//! > may affect the precision of derived approximations in other caches
//! > in the hierarchy."
//!
//! This crate implements a two-level hierarchy (source → mid-tier cache →
//! leaf caches) where the paper's adaptive precision algorithm runs
//! **independently per hop**:
//!
//! * the source-side policy sets the mid-tier interval width to balance
//!   the *upper-hop* refresh costs, exactly as in the single-level paper;
//! * the mid-tier maintains one policy per leaf, setting each leaf's
//!   interval width to balance the *lower-hop* refresh costs.
//!
//! The derived-precision constraint the paper anticipates appears here as
//! an invariant: a mid tier that only knows `V ∈ P` can guarantee a leaf
//! interval `I` only if `I ⊇ P`. Leaf intervals are therefore *wider*
//! approximations derived from the parent's, and a leaf can only be made
//! more precise than the parent by escalating the fetch to the source
//! (which refreshes both levels). The payoff of the hierarchy is upper-hop
//! *sharing*: one source→mid refresh serves every leaf, whereas a flat
//! deployment pays the full source→leaf path per leaf.
//! [`FlatFanoutSystem`] implements that flat deployment (using the core
//! crate's native multi-cache sources) so the benefit is measurable; the
//! `hierarchy_multilevel` bench sweeps the leaf count.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod flat;
pub mod system;

pub use flat::FlatFanoutSystem;
pub use system::{LeafId, MultiLevelConfig, MultiLevelSystem};
