//! The two-level adaptive caching system.

use apcache_core::cache::Cache;
use apcache_core::cost::CostModel;
use apcache_core::policy::{AdaptiveParams, AdaptivePolicy, Escape, PrecisionPolicy};
use apcache_core::source::Source;
use apcache_core::{CacheId, Interval, Key, Rng, TimeMs};
use apcache_sim::error::SimError;
use apcache_sim::stats::Stats;
use apcache_sim::system::{CacheSystem, QuerySummary};
use apcache_workload::query::GeneratedQuery;

/// Identifier of a leaf cache in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeafId(pub u32);

/// The cache id used for the mid tier on the upper hop.
const MID_TIER: CacheId = CacheId(0);

/// Configuration of the two-level system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiLevelConfig {
    /// Refresh costs on the source ↔ mid-tier hop (e.g. a WAN).
    pub upper_cost: CostModel,
    /// Refresh costs on the mid-tier ↔ leaf hop (e.g. a LAN; typically
    /// cheaper).
    pub lower_cost: CostModel,
    /// Adaptivity parameter α used at both levels.
    pub alpha: f64,
    /// Lower snapping threshold γ0 (both levels).
    pub gamma0: f64,
    /// Upper snapping threshold γ1 (both levels).
    pub gamma1: f64,
    /// Number of leaf caches.
    pub n_leaves: usize,
    /// Starting interval width at both levels.
    pub initial_width: f64,
}

impl Default for MultiLevelConfig {
    fn default() -> Self {
        MultiLevelConfig {
            upper_cost: CostModel::new(1.0, 2.0).expect("static costs valid"),
            lower_cost: CostModel::new(0.25, 0.5).expect("static costs valid"),
            alpha: 1.0,
            gamma0: 0.0,
            gamma1: f64::INFINITY,
            n_leaves: 4,
            initial_width: 4.0,
        }
    }
}

impl MultiLevelConfig {
    fn validate(&self) -> Result<(), SimError> {
        if self.n_leaves == 0 {
            return Err(SimError::Config("hierarchy needs at least one leaf".into()));
        }
        if !(self.initial_width.is_finite() && self.initial_width > 0.0) {
            return Err(SimError::Config(format!(
                "initial width must be positive and finite, got {}",
                self.initial_width
            )));
        }
        Ok(())
    }
}

/// Mid-tier state for one (key, leaf) pair: the policy governing the
/// leaf's interval width and the interval currently installed at the leaf.
#[derive(Debug)]
struct LeafApprox {
    policy: AdaptivePolicy,
    interval: Interval,
}

/// Mid-tier state for one key.
#[derive(Debug)]
struct MidEntry {
    leaves: Vec<LeafApprox>,
}

/// The two-level system: sources → mid-tier cache → leaf caches.
///
/// Invariant (checked by `debug_assert` and tests): every leaf interval
/// contains the mid-tier interval for the same key, and therefore the
/// exact value.
#[derive(Debug)]
pub struct MultiLevelSystem {
    cfg: MultiLevelConfig,
    sources: Vec<Source>,
    mid: Cache,
    entries: Vec<MidEntry>,
    rng: Rng,
}

impl MultiLevelSystem {
    /// Assemble the hierarchy for the given initial values.
    pub fn new(
        cfg: &MultiLevelConfig,
        initial_values: &[f64],
        mut rng: Rng,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        if initial_values.is_empty() {
            return Err(SimError::Config("at least one source required".into()));
        }
        let upper_params = AdaptiveParams::new(&cfg.upper_cost, cfg.alpha)?
            .with_thresholds(cfg.gamma0, cfg.gamma1)?;
        let lower_params = AdaptiveParams::new(&cfg.lower_cost, cfg.alpha)?
            .with_thresholds(cfg.gamma0, cfg.gamma1)?;
        let mut mid = Cache::unbounded(MID_TIER);
        let mut sources = Vec::with_capacity(initial_values.len());
        let mut entries = Vec::with_capacity(initial_values.len());
        for (i, &v) in initial_values.iter().enumerate() {
            let mut source = Source::new(Key(i as u32), v)?;
            let policy = AdaptivePolicy::new(upper_params, cfg.initial_width)?;
            let refresh = source.register(MID_TIER, Box::new(policy), 0)?;
            let parent_interval = refresh.spec.interval_at(0);
            mid.apply_refresh(refresh);
            // Each leaf starts with the parent interval widened to its own
            // policy width (leaf intervals must contain the parent's).
            let mut leaves = Vec::with_capacity(cfg.n_leaves);
            for _ in 0..cfg.n_leaves {
                let policy = AdaptivePolicy::new(lower_params, cfg.initial_width * 2.0)?;
                let interval = derive_leaf_interval(&policy, parent_interval);
                leaves.push(LeafApprox { policy, interval });
            }
            sources.push(source);
            entries.push(MidEntry { leaves });
        }
        Ok(MultiLevelSystem { cfg: *cfg, sources, mid, entries, rng: rng.fork() })
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.cfg.n_leaves
    }

    /// The mid-tier interval for `key`.
    pub fn mid_interval(&self, key: Key, now: TimeMs) -> Option<Interval> {
        self.mid.interval_at(key, now)
    }

    /// The interval leaf `leaf` holds for `key`.
    pub fn leaf_interval(&self, leaf: LeafId, key: Key) -> Option<Interval> {
        Some(self.entries.get(key.0 as usize)?.leaves.get(leaf.0 as usize)?.interval)
    }

    /// Serve a bounded read of `key` at `leaf` with tolerance `delta`:
    /// returns an interval of width ≤ `delta` containing the exact value,
    /// charging only the hops that were actually traversed.
    pub fn read_bounded(
        &mut self,
        leaf: LeafId,
        key: Key,
        delta: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<Interval, SimError> {
        let ki = key.0 as usize;
        let li = leaf.0 as usize;
        {
            let entry =
                self.entries.get(ki).ok_or_else(|| SimError::Config(format!("unknown {key}")))?;
            let approx = entry
                .leaves
                .get(li)
                .ok_or_else(|| SimError::Config(format!("unknown leaf {}", leaf.0)))?;
            // Leaf-local hit: free.
            if approx.interval.width() <= delta {
                return Ok(approx.interval);
            }
        }
        // Lower-hop query-initiated refresh: ask the mid tier.
        stats.record_qr(self.cfg.lower_cost.c_qr());
        let parent = self.mid.interval_at(key, now).unwrap_or_else(Interval::unbounded);
        if parent.width() <= delta {
            // The mid tier can serve the request from its own interval.
            let entry = &mut self.entries[ki];
            let approx = &mut entry.leaves[li];
            approx.policy.on_query_refresh(&mut self.rng);
            approx.interval = derive_leaf_interval(&approx.policy, parent);
            debug_assert!(leaf_contains_parent(approx.interval, parent));
            return Ok(parent);
        }
        // Escalate: upper-hop query-initiated refresh to the source.
        stats.record_qr(self.cfg.upper_cost.c_qr());
        let response = self.sources[ki].serve_exact(MID_TIER, now, &mut self.rng)?;
        let new_parent = response.refresh.spec.interval_at(now);
        self.mid.apply_refresh(response.refresh);
        {
            let approx = &mut self.entries[ki].leaves[li];
            approx.policy.on_query_refresh(&mut self.rng);
            // The leaf learns the exact value; its new interval is centered
            // on it and widened to cover the new parent interval.
            let centered = Interval::centered(response.value, approx.policy.effective_width())
                .unwrap_or_else(|_| Interval::unbounded());
            approx.interval = centered.hull(&new_parent);
        }
        // The refreshed parent interval is recentered on the exact value
        // and can poke outside sibling leaves' intervals; push corrective
        // refreshes so every leaf keeps covering the parent (the
        // containment invariant that guarantees leaf validity).
        self.sync_leaves(ki, Some(li), new_parent, stats);
        Ok(Interval::point(response.value).expect("finite value"))
    }

    /// Refresh every leaf of `ki` (except `skip`) whose interval no longer
    /// covers `parent`, charging one lower-hop value-initiated refresh
    /// each.
    fn sync_leaves(&mut self, ki: usize, skip: Option<usize>, parent: Interval, stats: &mut Stats) {
        let rng = &mut self.rng;
        for (l, approx) in self.entries[ki].leaves.iter_mut().enumerate() {
            if Some(l) == skip || leaf_contains_parent(approx.interval, parent) {
                continue;
            }
            stats.record_vr(self.cfg.lower_cost.c_vr());
            let escape =
                if parent.hi() > approx.interval.hi() { Escape::Above } else { Escape::Below };
            approx.policy.on_value_refresh(escape, rng);
            approx.interval = derive_leaf_interval(&approx.policy, parent);
            debug_assert!(leaf_contains_parent(approx.interval, parent));
        }
    }

    /// Propagate a source update through the hierarchy.
    fn propagate_update(
        &mut self,
        key: Key,
        value: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        let ki = key.0 as usize;
        let source =
            self.sources.get_mut(ki).ok_or_else(|| SimError::Config(format!("unknown {key}")))?;
        let refreshes = source.apply_update(value, now, &mut self.rng)?;
        let Some((_, refresh)) = refreshes.into_iter().next() else {
            // Still valid at the mid tier ⇒ still valid at every leaf
            // (leaf intervals contain the parent interval).
            return Ok(());
        };
        // Upper-hop value-initiated refresh.
        stats.record_vr(self.cfg.upper_cost.c_vr());
        let new_parent = refresh.spec.interval_at(now);
        self.mid.apply_refresh(refresh);
        // Lower hop: only leaves whose interval no longer covers the new
        // parent interval must be refreshed — the sharing that makes the
        // hierarchy pay off.
        self.sync_leaves(ki, None, new_parent, stats);
        Ok(())
    }
}

/// A leaf interval derived from the parent's: the policy's effective width
/// centered where the parent is, widened (hull) so it always covers the
/// parent interval — the containment that makes it a valid approximation.
fn derive_leaf_interval(policy: &AdaptivePolicy, parent: Interval) -> Interval {
    let width = policy.effective_width();
    let centered = match parent.center() {
        Some(c) => Interval::centered(c, width).unwrap_or_else(|_| Interval::unbounded()),
        None => Interval::unbounded(),
    };
    centered.hull(&parent)
}

/// Whether a leaf interval covers the parent interval (and therefore is
/// guaranteed to contain the exact value).
fn leaf_contains_parent(leaf: Interval, parent: Interval) -> bool {
    leaf.lo() <= parent.lo() && parent.hi() <= leaf.hi()
}

impl CacheSystem for MultiLevelSystem {
    fn on_update(
        &mut self,
        key: Key,
        value: f64,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        self.propagate_update(key, value, now, stats)
    }

    fn on_query(
        &mut self,
        query: &GeneratedQuery,
        now: TimeMs,
        stats: &mut Stats,
    ) -> Result<QuerySummary, SimError> {
        // Each generated query is served at one leaf (rotating
        // deterministically via the RNG), reading every key it names with
        // the query's tolerance.
        let leaf = LeafId(self.rng.below(self.cfg.n_leaves as u64) as u32);
        let before = stats.qr_count();
        let mut answer: Option<Interval> = None;
        for &key in &query.keys {
            let iv = self.read_bounded(leaf, key, query.delta, now, stats)?;
            answer = Some(match answer {
                None => iv,
                Some(a) => a.add(&iv),
            });
        }
        Ok(QuerySummary { answer, refreshes: (stats.qr_count() - before) as usize })
    }

    fn interval_of(&self, key: Key, now: TimeMs) -> Option<Interval> {
        self.mid.interval_at(key, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measuring() -> Stats {
        let mut s = Stats::new();
        s.begin_measurement();
        s
    }

    fn system(n_leaves: usize) -> MultiLevelSystem {
        let cfg = MultiLevelConfig { n_leaves, ..MultiLevelConfig::default() };
        MultiLevelSystem::new(&cfg, &[100.0, 200.0], Rng::seed_from_u64(1)).expect("builds")
    }

    #[test]
    fn validation() {
        let cfg = MultiLevelConfig { n_leaves: 0, ..MultiLevelConfig::default() };
        assert!(MultiLevelSystem::new(&cfg, &[1.0], Rng::seed_from_u64(0)).is_err());
        let cfg = MultiLevelConfig { initial_width: 0.0, ..MultiLevelConfig::default() };
        assert!(MultiLevelSystem::new(&cfg, &[1.0], Rng::seed_from_u64(0)).is_err());
        assert!(MultiLevelSystem::new(&MultiLevelConfig::default(), &[], Rng::seed_from_u64(0))
            .is_err());
    }

    #[test]
    fn leaf_intervals_contain_parent_at_start() {
        let sys = system(3);
        for key in [Key(0), Key(1)] {
            let parent = sys.mid_interval(key, 0).unwrap();
            for l in 0..3u32 {
                let leaf = sys.leaf_interval(LeafId(l), key).unwrap();
                assert!(leaf_contains_parent(leaf, parent), "leaf {l} {leaf} vs {parent}");
            }
        }
    }

    #[test]
    fn leaf_hit_is_free() {
        let mut sys = system(2);
        let mut stats = measuring();
        let leaf_width = sys.leaf_interval(LeafId(0), Key(0)).unwrap().width();
        let iv = sys.read_bounded(LeafId(0), Key(0), leaf_width + 1.0, 0, &mut stats).unwrap();
        assert_eq!(stats.qr_count(), 0);
        assert!(iv.contains(100.0));
    }

    #[test]
    fn mid_tier_serves_moderate_precision() {
        let mut sys = system(2);
        let mut stats = measuring();
        let parent_width = sys.mid_interval(Key(0), 0).unwrap().width();
        let leaf_width = sys.leaf_interval(LeafId(0), Key(0)).unwrap().width();
        assert!(parent_width < leaf_width);
        // Tolerance between the two widths: one lower-hop QR only.
        let delta = (parent_width + leaf_width) / 2.0;
        let iv = sys.read_bounded(LeafId(0), Key(0), delta, 0, &mut stats).unwrap();
        assert_eq!(stats.qr_count(), 1);
        assert!((stats.total_cost() - 0.5).abs() < 1e-12, "only the lower hop is charged");
        assert!(iv.width() <= delta);
        assert!(iv.contains(100.0));
    }

    #[test]
    fn exact_reads_escalate_to_the_source() {
        let mut sys = system(2);
        let mut stats = measuring();
        let iv = sys.read_bounded(LeafId(0), Key(0), 0.0, 0, &mut stats).unwrap();
        assert!(iv.is_exact());
        assert_eq!(iv.lo(), 100.0);
        // Both hops charged: 0.5 + 2.0.
        assert_eq!(stats.qr_count(), 2);
        assert!((stats.total_cost() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn updates_inside_parent_interval_cost_nothing() {
        let mut sys = system(4);
        let mut stats = measuring();
        let parent = sys.mid_interval(Key(0), 0).unwrap();
        let inside = parent.center().unwrap() + parent.width() / 4.0;
        sys.on_update(Key(0), inside, 1_000, &mut stats).unwrap();
        assert_eq!(stats.vr_count(), 0);
        assert_eq!(stats.total_cost(), 0.0);
    }

    #[test]
    fn escaping_updates_share_the_upper_hop() {
        let mut sys = system(4);
        let mut stats = measuring();
        // Push the value far outside everything.
        sys.on_update(Key(0), 1_000.0, 1_000, &mut stats).unwrap();
        // One upper-hop VR (cost 1) + at most 4 lower-hop VRs (0.25 each):
        // the upper hop is paid once, not once per leaf.
        assert!(stats.vr_count() >= 1);
        let upper_cost = 1.0;
        let max_lower = 4.0 * 0.25;
        assert!(stats.total_cost() <= upper_cost + max_lower + 1e-12);
        // Every leaf still holds a valid interval.
        let parent = sys.mid_interval(Key(0), 1_000).unwrap();
        for l in 0..4u32 {
            let leaf = sys.leaf_interval(LeafId(l), Key(0)).unwrap();
            assert!(leaf_contains_parent(leaf, parent));
            assert!(leaf.contains(1_000.0));
        }
    }

    #[test]
    fn containment_invariant_holds_under_churn() {
        let mut sys = system(3);
        let mut stats = measuring();
        let mut rng = Rng::seed_from_u64(9);
        let mut value = 100.0;
        for t in 1..=500u64 {
            value += rng.uniform(-5.0, 5.0);
            sys.on_update(Key(0), value, t * 1_000, &mut stats).unwrap();
            if t % 3 == 0 {
                let delta = rng.uniform(0.0, 50.0);
                let leaf = LeafId(rng.below(3) as u32);
                let iv = sys.read_bounded(leaf, Key(0), delta, t * 1_000, &mut stats).unwrap();
                assert!(iv.contains(value), "t={t}: {iv} misses {value}");
                assert!(iv.width() <= delta + 1e-9);
            }
            let parent = sys.mid_interval(Key(0), t * 1_000).unwrap();
            assert!(parent.contains(value));
            for l in 0..3u32 {
                let leaf = sys.leaf_interval(LeafId(l), Key(0)).unwrap();
                assert!(
                    leaf_contains_parent(leaf, parent),
                    "t={t} leaf {l}: {leaf} does not cover {parent}"
                );
            }
        }
        assert!(stats.vr_count() > 0);
        assert!(stats.qr_count() > 0);
    }

    #[test]
    fn unknown_keys_and_leaves_error() {
        let mut sys = system(2);
        let mut stats = measuring();
        assert!(sys.read_bounded(LeafId(0), Key(9), 1.0, 0, &mut stats).is_err());
        assert!(sys.read_bounded(LeafId(9), Key(0), 1.0, 0, &mut stats).is_err());
    }
}
