//! Tickets, completions, and the per-handle completion queue.
//!
//! The ticketed submission surface decouples *issuing* a request from
//! *settling* its outcome: every `submit_*` verb on
//! [`RuntimeHandle`](crate::RuntimeHandle) enqueues work on the shard
//! actors and immediately returns a [`Ticket`] — a monotonically
//! assigned request id — while the outcome lands later, out of order, in
//! the handle's [`CompletionQueue`]. Clients harvest with
//! [`poll`](CompletionQueue::poll) (non-blocking),
//! [`wait`](CompletionQueue::wait) (next completion, any ticket), or
//! [`wait_ticket`](CompletionQueue::wait_ticket) (one specific ticket);
//! the blocking verbs are nothing but `submit` + `wait_ticket`, so the
//! two surfaces cannot diverge.
//!
//! Internally every submitted operation is a set of *legs* — one mailbox
//! message per involved shard. Single-shard verbs complete directly when
//! their leg replies; scatter verbs (batch writes, metrics) fold their
//! legs as they land; deployment-wide aggregates park an
//! [`AggregatePlan`] here and re-issue its refinement rounds from
//! whichever client thread harvests next — the probe → escalate rounds
//! interleave with unrelated traffic instead of holding a caller. Actors
//! only ever *push* leg replies (a brief lock, never a blocking wait),
//! so the queue adds no deadlock cycles to the runtime.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use apcache_core::{Interval, TimeMs};
use apcache_push::{PushEvent, PushReport, PushSink};
use apcache_queries::AggregateKind;
use apcache_shard::plan::{AggregatePlan, RoundSpec};
use apcache_store::{
    AggregateOutcome, Constraint, ReadResult, StoreError, StoreMetrics, WriteOutcome,
};
use apcache_telemetry::TraceKind;

use crate::error::RuntimeError;
use crate::request::Request;
use crate::runtime::{RuntimeMetrics, Shared, Topology};

/// A monotonically assigned request id, returned by the `submit_*` verbs
/// and redeemed at the handle's [`CompletionQueue`]. Tickets are never
/// reused within a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(pub u64);

impl fmt::Display for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ticket#{}", self.0)
    }
}

/// The settled result of a submitted request, tagged by verb.
#[derive(Debug)]
pub enum Outcome<K> {
    /// Outcome of [`submit_read`](crate::RuntimeHandle::submit_read).
    Read(ReadResult),
    /// Outcome of [`submit_write`](crate::RuntimeHandle::submit_write)
    /// or [`submit_write_batch`](crate::RuntimeHandle::submit_write_batch).
    Write(WriteOutcome),
    /// Outcome of [`submit_aggregate`](crate::RuntimeHandle::submit_aggregate).
    Aggregate(AggregateOutcome<K>),
    /// Outcome of [`submit_metrics`](crate::RuntimeHandle::submit_metrics).
    Metrics(RuntimeMetrics<K>),
    /// First completion of a
    /// [`submit_subscribe`](crate::RuntimeHandle::submit_subscribe)
    /// ticket: the subscription is live, `interval` is the cached
    /// snapshot at subscribe time. Non-settling — the ticket stays
    /// outstanding and streams [`Outcome::Push`] completions.
    Subscribed {
        /// The cached interval at subscribe time.
        interval: Interval,
    },
    /// One streamed push on a live subscription ticket (non-settling).
    Push(PushEvent<K>),
    /// Terminal completion of a subscription ticket: the stream ended —
    /// an unsubscribe landed, or the owning actor shut down. Redeeming
    /// the ticket again afterwards errors with
    /// [`RuntimeError::UnknownTicket`].
    SubscriptionEnded,
    /// Outcome of
    /// [`submit_unsubscribe`](crate::RuntimeHandle::submit_unsubscribe).
    Unsubscribed {
        /// Whether a live subscription existed to close.
        existed: bool,
    },
    /// Outcome of [`submit_lease`](crate::RuntimeHandle::submit_lease) /
    /// [`submit_release_lease`](crate::RuntimeHandle::submit_release_lease).
    Leased {
        /// For a grant: `true` (the lease is armed). For a release:
        /// whether a lease existed to drop.
        active: bool,
    },
    /// Outcome of
    /// [`submit_advance_time`](crate::RuntimeHandle::submit_advance_time)
    /// or [`push_stats`](crate::RuntimeHandle::push_stats): the merged
    /// push-side occupancy report.
    TimeAdvanced(PushReport),
    /// Outcome of
    /// [`submit_exposition`](crate::RuntimeHandle::submit_exposition):
    /// the deployment's full Prometheus text exposition, rendered at
    /// submit time and settled immediately.
    Exposition(String),
}

/// One harvested completion: the ticket it settles and what happened.
#[derive(Debug)]
pub struct Completion<K> {
    /// The ticket returned by the originating `submit_*` call.
    pub ticket: Ticket,
    /// The request's outcome — the same success/error surface the
    /// blocking verbs expose.
    pub outcome: Result<Outcome<K>, RuntimeError>,
}

/// One shard actor's reply to one leg of a submitted request. The actor
/// wraps its store's verb result verbatim; the queue does the folding.
#[derive(Debug)]
pub enum LegReply<K> {
    /// Reply to a [`Request::Read`] leg.
    Read(Result<ReadResult, StoreError>),
    /// Reply to a [`Request::Write`] / [`Request::WriteBatch`] leg.
    Write(Result<WriteOutcome, StoreError>),
    /// Reply to a [`Request::Aggregate`] leg.
    Aggregate(Result<AggregateOutcome<K>, StoreError>),
    /// Reply to a [`Request::Metrics`] leg.
    Metrics(StoreMetrics<K>),
    /// Reply to a [`Request::Unsubscribe`] leg: whether a subscription
    /// existed.
    Unsubscribed(bool),
    /// Reply to a [`Request::Lease`] leg.
    Leased(Result<bool, StoreError>),
    /// Reply to a [`Request::Tick`] leg: this shard's push report.
    Tick(PushReport),
}

/// The fulfilling half of one leg, carried inside the queued [`Request`].
/// Dropping it unfulfilled (the actor died with the request queued)
/// settles the owning ticket with [`RuntimeError::ActorGone`] instead of
/// stranding a waiter.
pub struct LegSender<K> {
    core: Arc<QueueCore<K>>,
    ticket: u64,
    leg: u32,
    fulfilled: bool,
}

impl<K: Ord + Clone> LegSender<K> {
    /// Fulfill this leg (runs on the actor thread: one brief lock, one
    /// condvar notify — never a blocking wait).
    pub fn send(mut self, reply: LegReply<K>) {
        self.fulfilled = true;
        self.core.leg_arrived(self.ticket, self.leg, reply);
    }
}

impl<K> Drop for LegSender<K> {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.core.leg_dropped(self.ticket, self.leg);
        }
    }
}

impl<K> fmt::Debug for LegSender<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LegSender({}#{})", Ticket(self.ticket), self.leg)
    }
}

/// The streaming half of a subscription ticket, carried inside
/// [`Request::Subscribe`] and retained by the shard actor's subscriber
/// registry for the subscription's lifetime. Unlike a [`LegSender`] it
/// settles nothing when used: [`ack`](SubscriptionSender::ack) and
/// [`deliver`](PushSink::deliver) push *non-settling* completions, so the
/// ticket keeps streaming. Dropping it (unsubscribe, registry teardown,
/// actor death) settles the ticket with [`Outcome::SubscriptionEnded`].
pub struct SubscriptionSender<K> {
    core: Arc<QueueCore<K>>,
    ticket: u64,
}

impl<K> SubscriptionSender<K> {
    /// The subscription's identity in the actor's registry — the ticket
    /// id, which [`Request::Unsubscribe`] quotes to close the stream.
    pub fn id(&self) -> u64 {
        self.ticket
    }

    /// Acknowledge the subscription with the cached snapshot at
    /// subscribe time (the stream's first, non-settling completion).
    pub fn ack(&self, interval: Interval) {
        self.core.push_streaming(self.ticket, Outcome::Subscribed { interval });
    }
}

impl<K> PushSink<K> for SubscriptionSender<K> {
    fn deliver(&self, event: PushEvent<K>) {
        self.core.push_streaming(self.ticket, Outcome::Push(event));
    }
}

impl<K> Drop for SubscriptionSender<K> {
    fn drop(&mut self) {
        self.core.subscription_ended(self.ticket);
    }
}

impl<K> fmt::Debug for SubscriptionSender<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubscriptionSender({})", Ticket(self.ticket))
    }
}

/// A multi-shard aggregate in flight: the shared refinement state
/// machine plus this round's partial answers.
struct AggOp<K> {
    plan: AggregatePlan<K>,
    /// `(ring id, keys)` parts, fixed for the query's lifetime; every
    /// round fans one leg per part, and merges fold in part order — the
    /// same order the synchronous façades use. Parts name *ring ids*, not
    /// slots: slots shift when the topology reshards, ids never do. A
    /// part whose shard retires mid-query settles the ticket with an
    /// error (re-planning across a flip is a documented follow-on).
    parts: Vec<(u32, Vec<K>)>,
    now: TimeMs,
    partials: Vec<Option<Interval>>,
    fetched: Vec<Vec<K>>,
    remaining: usize,
    /// A harvesting thread is currently issuing the next round's legs
    /// (outside the lock); it re-checks completion when it finishes.
    advancing: bool,
    /// Scatter rounds issued so far (for the trace ring).
    rounds: u32,
}

/// What the queue tracks per outstanding ticket.
enum OpState<K> {
    /// One leg; its reply maps directly onto the completion.
    Direct,
    /// Scattered batch write: remaining legs and the folded refresh count.
    Batch { remaining: usize, refreshes: usize },
    /// Metrics gather: one leg per shard, slotted by shard id.
    Metrics { slots: Vec<Option<StoreMetrics<K>>>, remaining: usize },
    /// Multi-shard aggregate refinement.
    Aggregate(Box<AggOp<K>>),
    /// A live push subscription: the op stays outstanding (streaming
    /// completions arrive via [`SubscriptionSender`], not legs) until the
    /// actor drops the sender. `key` is what unsubscribe routes by —
    /// migration may have moved the watch off the shard it was opened on,
    /// so the subscribe-time shard would be a stale address.
    Subscription { key: K },
    /// Push-side tick/stats gather: one leg per shard, reports merged.
    Tick { remaining: usize, report: PushReport },
}

struct QueueState<K> {
    next_ticket: u64,
    ops: HashMap<u64, OpState<K>>,
    ready: VecDeque<Completion<K>>,
    /// Aggregates whose current round has fully landed and whose plan
    /// must be advanced (fed + next round issued) by a harvester.
    runnable: Vec<u64>,
    /// Submit-time verb + clock per outstanding ticket, consumed when
    /// the op settles to feed the per-verb latency histograms.
    inflight: HashMap<u64, (&'static str, Instant)>,
}

struct QueueCore<K> {
    state: Mutex<QueueState<K>>,
    cv: Condvar,
    /// An optional external readiness hook (see
    /// [`CompletionQueue::set_waker`]): invoked — outside every queue
    /// lock — whenever completions become ready, so an event loop parked
    /// in a poller (not on this queue's condvar) still learns instantly.
    waker: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
    /// The runtime's shared state: the (elastic) topology and key
    /// directory. Every submission routes under a topology *read* guard —
    /// route resolution and mailbox admission are atomic with respect to
    /// resharding, which holds the write half across export → install →
    /// ring flip. A read that races a migration of its key simply blocks
    /// on the guard and then routes to the key's new owner: block-or-
    /// forward, never a torn read.
    shared: Arc<Shared<K>>,
}

/// The harvest side of a handle's ticketed submissions: an out-of-order
/// completion queue in the io_uring mold. Cloning shares the queue (e.g.
/// to dedicate a harvester thread); a *handle* clone, by contrast, gets a
/// fresh queue — each logical client owns its completions.
pub struct CompletionQueue<K> {
    core: Arc<QueueCore<K>>,
}

impl<K> Clone for CompletionQueue<K> {
    fn clone(&self) -> Self {
        CompletionQueue { core: Arc::clone(&self.core) }
    }
}

impl<K> QueueCore<K> {
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<K>> {
        self.state.lock().expect("completion queue lock poisoned")
    }

    /// Wake every harvester: threads parked on the condvar, and — when a
    /// waker is installed — an event loop parked in its own poller. Must
    /// be called with the state lock *released*: the waker may take
    /// foreign locks (an eventfd write, a poller mailbox).
    fn notify(&self) {
        self.cv.notify_all();
        let waker = self.waker.lock().expect("waker lock poisoned").clone();
        if let Some(waker) = waker {
            waker();
        }
    }

    /// Latency + trace bookkeeping for a ticket that just settled.
    /// `timing` is the entry removed from `inflight` under the lock; this
    /// runs after the lock is dropped.
    fn finish_op(&self, ticket: u64, timing: Option<(&'static str, Instant)>) {
        if let Some((verb, started)) = timing {
            let telemetry = &self.shared.telemetry;
            telemetry.observe_verb(verb, started.elapsed());
            telemetry.record(TraceKind::Completion, ticket, verb, None);
        }
    }

    /// A leg's sender was dropped unfulfilled: the owning actor exited or
    /// was torn down with the request still queued. Whatever the op, its
    /// caller can no longer get a complete answer — settle as
    /// [`RuntimeError::ActorGone`]. (Bound-free so [`LegSender`]'s `Drop`
    /// can call it for any `K`.)
    fn leg_dropped(&self, ticket: u64, _leg: u32) {
        let mut st = self.lock();
        if st.ops.remove(&ticket).is_some() {
            let timing = st.inflight.remove(&ticket);
            st.ready.push_back(Completion {
                ticket: Ticket(ticket),
                outcome: Err(RuntimeError::ActorGone),
            });
            drop(st);
            self.finish_op(ticket, timing);
            self.notify();
        }
    }

    /// Queue a *non-settling* completion on a live subscription ticket
    /// (the subscribe ack or a push). The op stays outstanding so the
    /// ticket keeps streaming; if the op is gone (queue-side teardown
    /// raced the actor) the event is silently dropped — the subscriber no
    /// longer exists to hear it.
    fn push_streaming(&self, ticket: u64, outcome: Outcome<K>) {
        let is_ack = matches!(outcome, Outcome::Subscribed { .. });
        let is_push = matches!(outcome, Outcome::Push(_));
        let mut st = self.lock();
        if !st.ops.contains_key(&ticket) {
            return;
        }
        // The subscribe ack stops the submit clock (the ticket itself
        // stays outstanding and streams); pushes bump the fan-out counter.
        let timing = if is_ack { st.inflight.remove(&ticket) } else { None };
        st.ready.push_back(Completion { ticket: Ticket(ticket), outcome: Ok(outcome) });
        drop(st);
        if let Some((verb, started)) = timing {
            self.shared.telemetry.observe_verb(verb, started.elapsed());
        }
        if is_push {
            self.shared.telemetry.push_delivered();
        }
        self.notify();
    }

    /// The actor dropped a subscription's sender: settle its ticket with
    /// [`Outcome::SubscriptionEnded`] (terminal).
    fn subscription_ended(&self, ticket: u64) {
        let mut st = self.lock();
        if st.ops.remove(&ticket).is_some() {
            let timing = st.inflight.remove(&ticket);
            st.ready.push_back(Completion {
                ticket: Ticket(ticket),
                outcome: Ok(Outcome::SubscriptionEnded),
            });
            drop(st);
            // The ack usually consumed the timing already; either way the
            // stream's end is the ticket's terminal trace event.
            if let Some((verb, started)) = timing {
                self.shared.telemetry.observe_verb(verb, started.elapsed());
            }
            self.shared.telemetry.record(TraceKind::Completion, ticket, "subscribe", None);
            self.notify();
        }
    }
}

impl<K: Ord + Clone> QueueCore<K> {
    /// A leg replied. Folds it into its op; completes the ticket when the
    /// op is done. Runs on actor threads — must never block.
    fn leg_arrived(&self, ticket: u64, leg: u32, reply: LegReply<K>) {
        let mut st = self.lock();
        let Some(op) = st.ops.get_mut(&ticket) else {
            return; // op already settled (earlier leg error); straggler
        };
        let mut round_complete = false;
        let mut lease_expired = 0usize;
        // A reply kind that does not match the op kind cannot be
        // constructed by the actors (each Request variant maps onto
        // exactly one LegReply variant); the mismatch arms settle
        // defensively as ActorGone rather than panicking on an actor
        // thread.
        let settled: Option<Result<Outcome<K>, RuntimeError>> = match op {
            OpState::Direct => Some(match reply {
                LegReply::Read(r) => r.map(Outcome::Read).map_err(RuntimeError::Store),
                LegReply::Write(r) => r.map(Outcome::Write).map_err(RuntimeError::Store),
                LegReply::Aggregate(r) => r.map(Outcome::Aggregate).map_err(RuntimeError::Store),
                LegReply::Metrics(m) => Ok(Outcome::Metrics(RuntimeMetrics::from_shards(vec![m]))),
                LegReply::Unsubscribed(existed) => Ok(Outcome::Unsubscribed { existed }),
                LegReply::Leased(r) => {
                    r.map(|active| Outcome::Leased { active }).map_err(RuntimeError::Store)
                }
                LegReply::Tick(report) => Ok(Outcome::TimeAdvanced(report)),
            }),
            OpState::Batch { remaining, refreshes } => match reply {
                LegReply::Write(Ok(outcome)) => {
                    *refreshes += outcome.refreshes;
                    *remaining -= 1;
                    (*remaining == 0)
                        .then(|| Ok(Outcome::Write(WriteOutcome { refreshes: *refreshes })))
                }
                LegReply::Write(Err(e)) => Some(Err(RuntimeError::Store(e))),
                _ => Some(Err(RuntimeError::ActorGone)),
            },
            OpState::Metrics { slots, remaining } => match reply {
                LegReply::Metrics(m) => {
                    slots[leg as usize] = Some(m);
                    *remaining -= 1;
                    (*remaining == 0).then(|| {
                        let per_shard: Vec<StoreMetrics<K>> = slots
                            .iter_mut()
                            .map(|slot| slot.take().expect("all metric legs landed"))
                            .collect();
                        Ok(Outcome::Metrics(RuntimeMetrics::from_shards(per_shard)))
                    })
                }
                _ => Some(Err(RuntimeError::ActorGone)),
            },
            OpState::Aggregate(agg) => match reply {
                LegReply::Aggregate(Ok(outcome)) => {
                    agg.partials[leg as usize] = Some(outcome.answer);
                    agg.fetched[leg as usize] = outcome.refreshed;
                    agg.remaining -= 1;
                    round_complete = agg.remaining == 0 && !agg.advancing;
                    None
                }
                LegReply::Aggregate(Err(e)) => Some(Err(RuntimeError::Store(e))),
                _ => Some(Err(RuntimeError::ActorGone)),
            },
            // Subscriptions never receive legs — their traffic flows
            // through `push_streaming`/`subscription_ended`.
            OpState::Subscription { .. } => Some(Err(RuntimeError::ActorGone)),
            OpState::Tick { remaining, report } => match reply {
                LegReply::Tick(r) => {
                    lease_expired = r.expired;
                    report.merge(&r);
                    *remaining -= 1;
                    (*remaining == 0).then(|| Ok(Outcome::TimeAdvanced(*report)))
                }
                _ => Some(Err(RuntimeError::ActorGone)),
            },
        };
        let mut wake = false;
        let mut timing = None;
        if let Some(outcome) = settled {
            st.ops.remove(&ticket);
            timing = st.inflight.remove(&ticket);
            st.ready.push_back(Completion { ticket: Ticket(ticket), outcome });
            wake = true;
        } else if round_complete {
            st.runnable.push(ticket);
            wake = true;
        }
        drop(st);
        self.shared.telemetry.leases_expired(lease_expired);
        self.finish_op(ticket, timing);
        if wake {
            self.notify();
        }
    }
}

impl<K: Hash + Ord + Clone + Send + Sync + 'static> CompletionQueue<K> {
    pub(crate) fn new(shared: Arc<Shared<K>>) -> Self {
        CompletionQueue {
            core: Arc::new(QueueCore {
                state: Mutex::new(QueueState {
                    next_ticket: 1,
                    ops: HashMap::new(),
                    ready: VecDeque::new(),
                    runnable: Vec::new(),
                    inflight: HashMap::new(),
                }),
                cv: Condvar::new(),
                waker: Mutex::new(None),
                shared,
            }),
        }
    }

    /// The current topology, read-locked for the duration of one routed
    /// submission.
    fn topology(&self) -> std::sync::RwLockReadGuard<'_, Topology<K>> {
        self.core.shared.topology.read().expect("topology lock poisoned")
    }

    /// Register a new op and hand back its ticket (still locked state).
    /// Starts the submit clock and records the submit trace event.
    fn register(&self, op: OpState<K>, verb: &'static str) -> u64 {
        let mut st = self.core.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.ops.insert(ticket, op);
        st.inflight.insert(ticket, (verb, Instant::now()));
        drop(st);
        self.core.shared.telemetry.record(TraceKind::Submit, ticket, verb, None);
        ticket
    }

    fn leg(&self, ticket: u64, leg: u32) -> LegSender<K> {
        LegSender { core: Arc::clone(&self.core), ticket, leg, fulfilled: false }
    }

    /// Abort a registered op whose leg could not be enqueued (closed
    /// mailbox): unregister first so the rejected request's dropped
    /// [`LegSender`] does not settle the ticket, then surface `Closed`.
    fn abort_submit<T>(&self, ticket: u64, rejected: T) -> Result<Ticket, RuntimeError> {
        let mut st = self.core.lock();
        st.ops.remove(&ticket);
        st.inflight.remove(&ticket);
        drop(st);
        drop(rejected);
        Err(RuntimeError::Closed)
    }

    /// Submit a single-leg op routed to `key`'s owning shard (resolved
    /// and enqueued under one topology guard, so the send cannot race a
    /// resharding flip).
    pub(crate) fn submit_keyed(
        &self,
        key: &K,
        verb: &'static str,
        build: impl FnOnce(LegSender<K>) -> Request<K>,
    ) -> Result<Ticket, RuntimeError> {
        let ticket = self.register(OpState::Direct, verb);
        let topo = self.topology();
        let slot = topo.slot_for_key(key);
        match topo.senders[slot].send(build(self.leg(ticket, 0))) {
            Ok(()) => {
                self.core.shared.telemetry.record(
                    TraceKind::Dispatch,
                    ticket,
                    verb,
                    Some(topo.ids[slot]),
                );
                Ok(Ticket(ticket))
            }
            Err(rejected) => self.abort_submit(ticket, rejected),
        }
    }

    /// Submit a push subscription on `key`: registers a streaming op and
    /// hands the owning actor the [`SubscriptionSender`] it will retain.
    pub(crate) fn submit_subscription(
        &self,
        key: &K,
        build: impl FnOnce(SubscriptionSender<K>) -> Request<K>,
    ) -> Result<Ticket, RuntimeError> {
        let ticket = self.register(OpState::Subscription { key: key.clone() }, "subscribe");
        let sub = SubscriptionSender { core: Arc::clone(&self.core), ticket };
        let topo = self.topology();
        let slot = topo.slot_for_key(key);
        match topo.senders[slot].send(build(sub)) {
            Ok(()) => {
                self.core.shared.telemetry.record(
                    TraceKind::Dispatch,
                    ticket,
                    "subscribe",
                    Some(topo.ids[slot]),
                );
                Ok(Ticket(ticket))
            }
            Err(rejected) => {
                // Unregister before dropping the rejected request, so the
                // sender's Drop finds no op and settles nothing.
                let mut st = self.core.lock();
                st.ops.remove(&ticket);
                st.inflight.remove(&ticket);
                drop(st);
                drop(rejected);
                Err(RuntimeError::Closed)
            }
        }
    }

    /// The key a live subscription ticket watches, or `None` if the
    /// ticket is not a live subscription on this queue. Unsubscribes
    /// route by this key — the watch follows the key across migrations.
    pub(crate) fn subscription_key(&self, ticket: Ticket) -> Option<K> {
        match self.core.lock().ops.get(&ticket.0) {
            Some(OpState::Subscription { key }) => Some(key.clone()),
            _ => None,
        }
    }

    /// Submit a push-side tick/stats gather: one [`Request::Tick`] leg
    /// per shard, reports merged as they land.
    pub(crate) fn submit_tick(&self, now: Option<TimeMs>) -> Result<Ticket, RuntimeError> {
        let topo = self.topology();
        let shards = topo.senders.len();
        let ticket = self
            .register(OpState::Tick { remaining: shards, report: PushReport::default() }, "tick");
        for slot in 0..shards {
            let reply = Some(self.leg(ticket, slot as u32));
            if let Err(rejected) = topo.senders[slot].send(Request::Tick { now, reply }) {
                return self.abort_submit(ticket, rejected);
            }
            self.core.shared.telemetry.record(
                TraceKind::Dispatch,
                ticket,
                "tick",
                Some(topo.ids[slot]),
            );
        }
        Ok(Ticket(ticket))
    }

    /// Submit a scattered batch write: the (pre-validated) items are
    /// partitioned by owning shard and enqueued under one topology guard,
    /// so the whole batch lands on one consistent topology.
    pub(crate) fn submit_batch(
        &self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        let topo = self.topology();
        let mut per_slot: Vec<Vec<(K, f64)>> = vec![Vec::new(); topo.senders.len()];
        for (key, value) in items {
            per_slot[topo.slot_for_key(key)].push((key.clone(), *value));
        }
        let parts: Vec<(usize, Vec<(K, f64)>)> =
            per_slot.into_iter().enumerate().filter(|(_, items)| !items.is_empty()).collect();
        let ticket =
            self.register(OpState::Batch { remaining: parts.len(), refreshes: 0 }, "write_batch");
        for (leg, (slot, items)) in parts.into_iter().enumerate() {
            let reply = self.leg(ticket, leg as u32);
            if let Err(rejected) =
                topo.senders[slot].send(Request::WriteBatch { items, now, reply })
            {
                return self.abort_submit(ticket, rejected);
            }
            self.core.shared.telemetry.record(
                TraceKind::Dispatch,
                ticket,
                "write_batch",
                Some(topo.ids[slot]),
            );
        }
        Ok(Ticket(ticket))
    }

    /// Submit a metrics gather: one [`Request::Metrics`] leg per shard.
    pub(crate) fn submit_metrics(&self) -> Result<Ticket, RuntimeError> {
        let topo = self.topology();
        let shards = topo.senders.len();
        let ticket = self
            .register(OpState::Metrics { slots: vec![None; shards], remaining: shards }, "metrics");
        for slot in 0..shards {
            let reply = self.leg(ticket, slot as u32);
            if let Err(rejected) = topo.senders[slot].send(Request::Metrics { reply }) {
                return self.abort_submit(ticket, rejected);
            }
            self.core.shared.telemetry.record(
                TraceKind::Dispatch,
                ticket,
                "metrics",
                Some(topo.ids[slot]),
            );
        }
        Ok(Ticket(ticket))
    }

    /// Submit a deployment-wide aggregate over (pre-validated, non-empty)
    /// `keys`: partitioned by owning shard under one topology guard.
    /// Single-shard key sets delegate the original constraint untouched
    /// (bit-identical to the unsharded store); multi-shard sets park an
    /// [`AggregatePlan`] whose refinement rounds are issued by harvesting
    /// threads.
    pub(crate) fn submit_aggregate(
        &self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        let topo = self.topology();
        // Partition by ring id (stable across reshards), preserving the
        // caller's key order within each part.
        let mut parts: Vec<(u32, Vec<K>)> = Vec::new();
        for key in keys {
            let id = topo.router.route(key);
            match parts.iter_mut().find(|(part, _)| *part == id) {
                Some((_, part_keys)) => part_keys.push(key.clone()),
                None => parts.push((id, vec![key.clone()])),
            }
        }
        // Order parts by slot index so partials/fetched concatenate in the
        // same order as `ShardedStore`'s synchronous fan-out (bit-identical
        // `refreshed` lists); the ids themselves stay stable across flips.
        parts.sort_by_key(|(id, _)| topo.slot_of_id(*id));
        if let [(id, part_keys)] = parts.as_slice() {
            let ticket = self.register(OpState::Direct, "aggregate");
            let slot = topo.slot_of_id(*id).expect("routed id is on the ring");
            let request = Request::Aggregate {
                kind,
                keys: part_keys.clone(),
                constraint,
                now,
                reply: self.leg(ticket, 0),
            };
            return match topo.senders[slot].send(request) {
                Ok(()) => {
                    self.core.shared.telemetry.record(
                        TraceKind::Dispatch,
                        ticket,
                        "aggregate",
                        Some(topo.ids[slot]),
                    );
                    Ok(Ticket(ticket))
                }
                Err(rejected) => self.abort_submit(ticket, rejected),
            };
        }
        let (plan, round) =
            AggregatePlan::start(kind, constraint, keys.len()).map_err(RuntimeError::Store)?;
        let n_parts = parts.len();
        let op = AggOp {
            plan,
            parts,
            now,
            partials: vec![None; n_parts],
            fetched: vec![Vec::new(); n_parts],
            remaining: n_parts,
            advancing: false,
            rounds: 0,
        };
        let ticket = self.register(OpState::Aggregate(Box::new(op)), "aggregate");
        self.issue_round_under(&topo, ticket, round).map(|()| Ticket(ticket))
    }

    /// Send one aggregate round's legs (one per part). On a closed
    /// mailbox — or a part whose shard retired mid-query — the op is
    /// settled/aborted with `Closed`.
    fn issue_round(&self, ticket: u64, round: RoundSpec) -> Result<(), RuntimeError> {
        let topo = self.topology();
        self.issue_round_under(&topo, ticket, round)
    }

    /// The round-issuing body, under an already-held topology guard.
    fn issue_round_under(
        &self,
        topo: &Topology<K>,
        ticket: u64,
        round: RoundSpec,
    ) -> Result<(), RuntimeError> {
        // Snapshot the legs to send under the queue lock, then send
        // unlocked — a full mailbox parks the sender, and parking while
        // holding the queue lock would stop actors from delivering
        // replies. (The topology guard stays held: actors never take it.)
        let (sends, now, round_idx) = {
            let mut st = self.core.lock();
            let Some(OpState::Aggregate(agg)) = st.ops.get_mut(&ticket) else {
                return Ok(()); // settled concurrently (leg error)
            };
            let sends: Vec<(u32, Vec<K>, Constraint)> = agg
                .parts
                .iter()
                .map(|(id, keys)| (*id, keys.clone(), round.budget.constraint_for(keys.len())))
                .collect();
            let round_idx = agg.rounds;
            agg.rounds += 1;
            (sends, agg.now, round_idx)
        };
        self.core.shared.telemetry.record(
            TraceKind::AggregateRound,
            ticket,
            "aggregate",
            Some(round_idx),
        );
        for (leg, (id, keys, constraint)) in sends.into_iter().enumerate() {
            let Some(slot) = topo.slot_of_id(id) else {
                // The shard retired between rounds; its keys now live
                // elsewhere. Settle visibly rather than answer from a
                // stale plan (re-planning across a flip is a follow-on).
                return self.abort_submit(ticket, ()).map(|_| ());
            };
            let reply = self.leg(ticket, leg as u32);
            let request =
                Request::Aggregate { kind: round.local_kind, keys, constraint, now, reply };
            if let Err(rejected) = topo.senders[slot].send(request) {
                return self.abort_submit(ticket, rejected).map(|_| ());
            }
            self.core.shared.telemetry.record(
                TraceKind::Dispatch,
                ticket,
                "aggregate",
                Some(topo.ids[slot]),
            );
        }
        Ok(())
    }

    /// Complete a ticket immediately (no legs — e.g. the empty-SUM
    /// aggregate, answered locally like the synchronous façades).
    pub(crate) fn complete_immediately(&self, outcome: Outcome<K>, verb: &'static str) -> Ticket {
        let mut st = self.core.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.ready.push_back(Completion { ticket: Ticket(ticket), outcome: Ok(outcome) });
        drop(st);
        let telemetry = &self.core.shared.telemetry;
        telemetry.record(TraceKind::Submit, ticket, verb, None);
        telemetry.observe_verb(verb, std::time::Duration::ZERO);
        telemetry.record(TraceKind::Completion, ticket, verb, None);
        self.core.notify();
        Ticket(ticket)
    }

    /// Advance every aggregate whose round has fully landed: feed the
    /// plan, and either settle the ticket or issue the next round. Runs
    /// on harvesting client threads (never on actors).
    fn advance(&self) {
        loop {
            let mut st = self.core.lock();
            let Some(ticket) = st.runnable.pop() else { return };
            let Some(OpState::Aggregate(agg)) = st.ops.get_mut(&ticket) else { continue };
            if agg.advancing {
                continue; // the issuing thread re-checks on finish
            }
            let partials: Vec<Interval> =
                agg.partials.iter_mut().map(|p| p.take().expect("round complete")).collect();
            let fetched: Vec<K> = agg.fetched.iter_mut().flat_map(std::mem::take).collect();
            match agg.plan.feed(&partials, fetched) {
                Err(e) => {
                    st.ops.remove(&ticket);
                    let timing = st.inflight.remove(&ticket);
                    st.ready.push_back(Completion {
                        ticket: Ticket(ticket),
                        outcome: Err(RuntimeError::Store(e)),
                    });
                    drop(st);
                    self.core.finish_op(ticket, timing);
                    self.core.notify();
                }
                Ok(None) => {
                    let Some(OpState::Aggregate(agg)) = st.ops.remove(&ticket) else {
                        unreachable!("op verified above")
                    };
                    let timing = st.inflight.remove(&ticket);
                    let outcome =
                        agg.plan.finish().map(Outcome::Aggregate).map_err(RuntimeError::Store);
                    st.ready.push_back(Completion { ticket: Ticket(ticket), outcome });
                    drop(st);
                    self.core.finish_op(ticket, timing);
                    self.core.notify();
                }
                Ok(Some(round)) => {
                    let n_parts = agg.parts.len();
                    agg.remaining = n_parts;
                    agg.partials = vec![None; n_parts];
                    agg.fetched = vec![Vec::new(); n_parts];
                    agg.advancing = true;
                    drop(st);
                    if self.issue_round(ticket, round).is_err() {
                        // The mailboxes closed between rounds: issue_round
                        // already unregistered the op, but — unlike the
                        // submit paths, where the error returns to the
                        // submitter — this ticket is already out in the
                        // wild, so it MUST settle: deliver Closed as its
                        // completion instead of losing it silently.
                        // (abort_submit already cleared the inflight
                        // timing, so no latency is observed here.)
                        let mut st = self.core.lock();
                        st.ready.push_back(Completion {
                            ticket: Ticket(ticket),
                            outcome: Err(RuntimeError::Closed),
                        });
                        drop(st);
                        self.core.shared.telemetry.record(
                            TraceKind::Completion,
                            ticket,
                            "aggregate",
                            None,
                        );
                        self.core.notify();
                        continue;
                    }
                    let mut st = self.core.lock();
                    if let Some(OpState::Aggregate(agg)) = st.ops.get_mut(&ticket) {
                        agg.advancing = false;
                        if agg.remaining == 0 {
                            st.runnable.push(ticket);
                            drop(st);
                            self.core.notify();
                        }
                    }
                }
            }
        }
    }

    /// Harvest the next finished completion without blocking. Advances
    /// pending aggregate rounds first, so progress never depends on a
    /// parked thread.
    pub fn poll(&self) -> Option<Completion<K>> {
        self.advance();
        self.core.lock().ready.pop_front()
    }

    /// Block until the next completion (any ticket) is ready. Returns
    /// `None` when nothing is outstanding — a queue with no submitted
    /// work has nothing to wait for.
    pub fn wait(&self) -> Option<Completion<K>> {
        loop {
            self.advance();
            let mut st = self.core.lock();
            loop {
                if let Some(completion) = st.ready.pop_front() {
                    return Some(completion);
                }
                if st.ops.is_empty() {
                    return None;
                }
                if !st.runnable.is_empty() {
                    break; // advance() outside the lock
                }
                st = self.core.cv.wait(st).expect("completion queue lock poisoned");
            }
        }
    }

    /// Block until `ticket` specifically completes and return its
    /// outcome, leaving other completions queued for `poll`/`wait`.
    /// Fails with [`RuntimeError::UnknownTicket`] if this queue never
    /// issued the ticket or it was already harvested.
    pub fn wait_ticket(&self, ticket: Ticket) -> Result<Outcome<K>, RuntimeError> {
        loop {
            self.advance();
            let mut st = self.core.lock();
            loop {
                if let Some(pos) = st.ready.iter().position(|c| c.ticket == ticket) {
                    let completion = st.ready.remove(pos).expect("position valid");
                    return completion.outcome;
                }
                if !st.ops.contains_key(&ticket.0) {
                    return Err(RuntimeError::UnknownTicket(ticket));
                }
                if !st.runnable.is_empty() {
                    break; // advance() outside the lock
                }
                st = self.core.cv.wait(st).expect("completion queue lock poisoned");
            }
        }
    }

    /// Install (or clear) a readiness waker: a hook invoked — with no
    /// queue lock held — every time completions become ready to harvest.
    /// An event-driven server parks in a *poller* (epoll, a readiness
    /// mailbox), not on this queue's condvar; the waker bridges the two,
    /// so completions interrupt the poll instead of waiting out its
    /// timeout. One waker per queue: installing replaces the previous.
    pub fn set_waker(&self, waker: Option<Arc<dyn Fn() + Send + Sync>>) {
        *self.core.waker.lock().expect("waker lock poisoned") = waker;
    }

    /// Harvest every ready completion (up to `max`) into `out` without
    /// ever parking — the batch surface for an event loop that must get
    /// back to its sockets. Advances pending aggregate rounds first,
    /// exactly like [`poll`](Self::poll). Returns the number harvested.
    pub fn drain_ready_into(&self, out: &mut Vec<Completion<K>>, max: usize) -> usize {
        self.advance();
        let mut st = self.core.lock();
        let mut n = 0;
        while n < max {
            match st.ready.pop_front() {
                Some(completion) => {
                    out.push(completion);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Convenience form of [`drain_ready_into`](Self::drain_ready_into)
    /// returning a fresh `Vec`.
    pub fn drain_ready(&self, max: usize) -> Vec<Completion<K>> {
        let mut out = Vec::new();
        self.drain_ready_into(&mut out, max);
        out
    }

    /// Block until the next completion is ready or `timeout` elapses.
    /// Unlike [`wait`](Self::wait) this never parks unbounded and does
    /// *not* return early when nothing is outstanding — a bounded park is
    /// safe, and work submitted concurrently (another clone of this
    /// queue) still wakes it. `None` means the timeout ran out.
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Option<Completion<K>> {
        let deadline = Instant::now() + timeout;
        loop {
            self.advance();
            let mut st = self.core.lock();
            loop {
                if let Some(completion) = st.ready.pop_front() {
                    return Some(completion);
                }
                if !st.runnable.is_empty() {
                    break; // advance() outside the lock
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return None;
                }
                let (guard, _timed_out) = self
                    .core
                    .cv
                    .wait_timeout(st, remaining)
                    .expect("completion queue lock poisoned");
                st = guard;
            }
        }
    }

    /// Number of submitted tickets not yet settled.
    pub fn outstanding(&self) -> usize {
        self.core.lock().ops.len()
    }

    /// Number of settled completions not yet harvested.
    pub fn ready_len(&self) -> usize {
        self.core.lock().ready.len()
    }
}

impl<K> fmt::Debug for CompletionQueue<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompletionQueue").finish_non_exhaustive()
    }
}
