//! The per-shard actor: a `PrecisionStore` plus the push-side state that
//! turns it into a streaming server — the subscriber registry fanned out
//! on every interval change, and the TTL lease table whose lapses widen
//! cached intervals to their fallback.
//!
//! Everything here runs on the actor's own thread. Push deliveries are
//! non-blocking pushes into each subscriber's completion queue, and they
//! are queued *before* the triggering request's reply is sent — so a
//! client that observes a write acknowledgement can rely on the pushes it
//! caused being already in (or ahead of) its completion queue.

use std::hash::Hash;

use apcache_core::{Interval, TimeMs};
use apcache_push::{LeaseTable, PushReason, PushReport, SubscriberRegistry};
use apcache_store::PrecisionStore;

use crate::completion::{LegReply, SubscriptionSender};
use crate::request::{MigrationBundle, Request};

/// One shard's serving state: the store plus push-side registries.
pub(crate) struct ShardActor<K> {
    store: PrecisionStore<K>,
    registry: SubscriberRegistry<K, SubscriptionSender<K>>,
    leases: LeaseTable<K>,
}

impl<K: Hash + Ord + Clone> ShardActor<K> {
    /// Wrap a shard's store. `lease_resolution_ms` is the lease timer
    /// wheel's tick width (lapses are detected on the wheel's grid).
    pub(crate) fn new(store: PrecisionStore<K>, lease_resolution_ms: u64) -> Self {
        ShardActor {
            store,
            registry: SubscriberRegistry::new(),
            leases: LeaseTable::new(0, lease_resolution_ms),
        }
    }

    /// Surrender the store at shutdown. Dropping the registry drops every
    /// retained [`SubscriptionSender`], which settles each live
    /// subscription ticket with `SubscriptionEnded` — no waiter strands.
    pub(crate) fn into_store(self) -> PrecisionStore<K> {
        self.store
    }

    /// Expire every lease whose TTL lapsed by `now`: widen the cached
    /// interval to the lease's fallback (truth-preserving — the stored
    /// interval only grows) and push exactly one `LeaseExpired` event per
    /// lapse. The lease stays configured but disarmed, so a lapse never
    /// double-fires; the next source contact re-arms it.
    fn expire_due(&mut self, now: TimeMs) -> usize {
        let mut expired = 0;
        for (key, fallback) in self.leases.advance(now) {
            let current =
                self.store.cached_interval(&key, now).map_or(f64::INFINITY, |iv| iv.width());
            let target = fallback.target_width(current);
            if let Ok(Some(widened)) = self.store.widen_cached(&key, target, now) {
                self.registry.notify(&key, widened, PushReason::LeaseExpired, now);
            }
            expired += 1;
        }
        expired
    }

    /// A request touched `key` at the source (write, refresh-on-read,
    /// aggregate refresh): renew its lease and fan the new cached
    /// interval out to subscribers. The registry dedups by interval bits,
    /// so renewals that change nothing push nothing.
    fn touched(&mut self, key: &K, now: TimeMs) {
        self.leases.renew(key, now);
        let interval = self.store.cached_interval(key, now).unwrap_or_else(Interval::unbounded);
        self.registry.notify(key, interval, PushReason::Changed, now);
    }

    /// Dispatch one mailbox request (see [`Request`] for the protocol).
    /// Requests that carry a logical time first expire due leases — the
    /// shard's push-side clock only moves forward through served traffic
    /// and ticks.
    pub(crate) fn serve(&mut self, request: Request<K>) {
        match request {
            Request::Read { key, constraint, now, reply } => {
                self.expire_due(now);
                let result = self.store.read(&key, constraint, now);
                if let Ok(r) = &result {
                    if r.refreshed {
                        self.touched(&key, now);
                    }
                }
                reply.send(LegReply::Read(result));
            }
            Request::Write { key, value, now, reply } => {
                self.expire_due(now);
                let outcome = self.store.write(&key, value, now);
                if outcome.is_ok() {
                    // Every write is a source contact — renew/notify even
                    // when refreshes == 0 (the registry dedups unchanged
                    // intervals).
                    self.touched(&key, now);
                }
                if let Some(reply) = reply {
                    reply.send(LegReply::Write(outcome));
                }
            }
            Request::WriteBatch { items, now, reply } => {
                self.expire_due(now);
                let outcome = self.store.write_batch(&items, now);
                if outcome.is_ok() {
                    for (key, _) in &items {
                        self.touched(key, now);
                    }
                }
                reply.send(LegReply::Write(outcome));
            }
            Request::Aggregate { kind, keys, constraint, now, reply } => {
                self.expire_due(now);
                let result = self.store.aggregate(kind, &keys, constraint, now);
                if let Ok(outcome) = &result {
                    for key in outcome.refreshed.clone() {
                        self.touched(&key, now);
                    }
                }
                reply.send(LegReply::Aggregate(result));
            }
            Request::Metrics { reply } => {
                reply.send(LegReply::Metrics(self.store.metrics().clone()));
            }
            Request::Subscribe { key, filter, now, sub } => {
                self.expire_due(now);
                let snapshot =
                    self.store.cached_interval(&key, now).unwrap_or_else(Interval::unbounded);
                sub.ack(snapshot);
                self.registry.subscribe(key, sub.id(), snapshot, filter, sub);
            }
            Request::Unsubscribe { id, key: _, reply } => {
                let removed = self.registry.unsubscribe(id);
                let existed = removed.is_some();
                // Settle the subscription ticket (SubscriptionEnded, via
                // the sender's Drop) before acknowledging the
                // unsubscribe, so the stream is observably closed by the
                // time the ack lands.
                drop(removed);
                reply.send(LegReply::Unsubscribed(existed));
            }
            Request::Lease { key, cfg, now, reply } => {
                self.expire_due(now);
                let result = match cfg {
                    Some(cfg) => {
                        if self.store.contains_key(&key) {
                            self.leases.grant(key, cfg, now);
                            Ok(true)
                        } else {
                            Err(apcache_store::StoreError::UnknownKey)
                        }
                    }
                    None => Ok(self.leases.release(&key)),
                };
                reply.send(LegReply::Leased(result));
            }
            Request::Tick { now, reply } => {
                let expired = now.map_or(0, |now| self.expire_due(now));
                if let Some(reply) = reply {
                    reply.send(LegReply::Tick(PushReport {
                        subscribers: self.registry.subscribers(),
                        watched_keys: self.registry.watched_keys(),
                        leases: self.leases.len(),
                        expired,
                    }));
                }
            }
            Request::Export { keys, reply } => {
                reply.send(self.export(keys));
            }
            Request::Install { bundle, ack } => {
                ack.send(self.install(bundle));
            }
            Request::Checkpoint { ack } => {
                ack.send(self.store.checkpoint());
            }
            Request::Shutdown { ack } => {
                ack.send(());
            }
        }
    }

    /// Detach `keys` with their full protocol state: store entry, TTL
    /// lease (absolute deadline preserved), and subscription watch (dedup
    /// bits + live sinks). The whole set is checked first so an unknown
    /// key detaches nothing.
    fn export(&mut self, keys: Vec<K>) -> Result<MigrationBundle<K>, apcache_store::StoreError> {
        for key in &keys {
            if !self.store.contains_key(key) {
                return Err(apcache_store::StoreError::UnknownKey);
            }
        }
        let mut bundle = MigrationBundle::default();
        for key in keys {
            let entry = self.store.export_key(&key)?;
            if let Some((cfg, deadline)) = self.leases.export_lease(&key) {
                bundle.leases.push((key.clone(), cfg, deadline));
            }
            if let Some((last, subs)) = self.registry.extract_key(&key) {
                bundle.watches.push((key.clone(), last, subs));
            }
            bundle.entries.push(entry);
        }
        Ok(bundle)
    }

    /// Attach a bundle detached elsewhere. Leases keep their absolute
    /// deadlines (the logical clock is deployment-wide, so a lease that
    /// lapsed mid-migration fires on this shard's next time advance);
    /// watches keep their dedup bits, so subscriber streams continue
    /// without re-delivery or a swallowed change.
    fn install(&mut self, bundle: MigrationBundle<K>) -> Result<(), apcache_store::StoreError> {
        for entry in bundle.entries {
            self.store.import_key(entry)?;
        }
        for (key, cfg, deadline) in bundle.leases {
            self.leases.install_lease(key, cfg, deadline);
        }
        for (key, last, subs) in bundle.watches {
            self.registry.install_key(key, last, subs);
        }
        Ok(())
    }
}
