//! # apcache-runtime
//!
//! The **concurrent serving layer** of the workspace: an actor-per-shard
//! runtime that turns the synchronous [`ShardedStore`] fleet into a
//! non-blocking front-end for many client threads — hand-rolled on `std`
//! threads, mutexes, and condvars only (no async executor), so it builds
//! offline anywhere the rest of the workspace does.
//!
//! ## Design
//!
//! * **One OS-thread actor per shard.** Each actor exclusively owns one
//!   [`PrecisionStore`], which therefore
//!   stays exactly as single-threaded and lock-free as the paper's
//!   per-cache protocol; all concurrency lives in the mailboxes. This is
//!   the classical isolation of per-domain precision state: protocol
//!   state never crosses a thread boundary, messages do.
//! * **Bounded mailboxes with backpressure.** Every actor drains a FIFO
//!   [`mailbox`](mailbox::mailbox) of [`Request`]s; producers that
//!   outrun a shard park on its full mailbox until the actor catches up.
//!   [`RuntimeHandle::write_nowait`] is the fire-and-forget path: it pays
//!   only the admission toll, never waits for the outcome.
//! * **Tickets and completions.** Every verb has a non-blocking
//!   `submit_*` form returning a [`Ticket`]; outcomes land out of order
//!   in the handle's [`CompletionQueue`], harvested with
//!   [`poll`](CompletionQueue::poll) / [`wait`](CompletionQueue::wait) /
//!   [`wait_ticket`](CompletionQueue::wait_ticket) — an io_uring-style
//!   split of *issuing* from *settling* that decouples logical client
//!   count from thread count. The blocking verbs are `submit` +
//!   `wait_ticket` wrappers, nothing more.
//! * **Scatter/gather aggregates.** A deployment-wide aggregate splits
//!   its precision budget by the rules in [`apcache_shard::plan`]
//!   (`δ·n_s/n` for SUM, `δ·n_s` for AVG-as-SUM, full `δ` for MAX/MIN),
//!   enqueues every shard's leg before awaiting any reply (the shards
//!   work concurrently), and merges the bounded partial answers with the
//!   same interval arithmetic as [`ShardedStore`] — the shared
//!   [`AggregatePlan`](apcache_shard::plan::AggregatePlan) state machine
//!   runs the Relative probe → local-certificates → derived-budget
//!   refinement as up to three rounds of submitted tickets, parked in
//!   the completion queue and advanced by whichever thread harvests, so
//!   a long refinement interleaves with unrelated traffic instead of
//!   holding a client thread. Actors never message each other, so the
//!   runtime has no deadlock cycles by construction.
//! * **Push subscriptions, leases, and the shard timer wheel.** A
//!   [`RuntimeHandle::subscribe`] returns a long-lived streaming [`Ticket`]
//!   whose completion queue receives one [`Outcome::Push`] per filtered
//!   change of the watched key's cached interval — turning the poll-based
//!   server into the paper's push-at-heart refresh stream. TTL **leases**
//!   ([`RuntimeHandle::lease`]) ride each shard's hierarchical timer wheel
//!   (`apcache_push::timeq`): a leased interval whose TTL lapses without a
//!   source contact is widened, truth-preservingly, to the lease's
//!   fallback and pushed exactly once. The push-side clock is the logical
//!   time carried by served traffic plus explicit
//!   [`advance_time`](RuntimeHandle::advance_time) calls (deterministic),
//!   optionally backed by a wall-clock tick thread
//!   ([`RuntimeConfig::tick_interval`]).
//! * **Draining shutdown.** [`Runtime::shutdown`] acknowledges, per
//!   shard, that every previously enqueued request has been served, then
//!   closes the mailboxes and joins the actors — no accepted write is
//!   ever lost. [`Runtime::into_store`] additionally hands back the
//!   reassembled [`ShardedStore`] in the runtime's exact final state.
//!
//! With a single client the runtime is **bit-identical** to a
//! [`ShardedStore`] under θ = 1 (see `tests/runtime_conformance.rs`): the
//! mailboxes impose the caller's order per shard, the budget splits and
//! merge folds are the same code, and the single-shard delegation path is
//! preserved.
//!
//! ## Quick example
//!
//! ```
//! use apcache_runtime::Runtime;
//! use apcache_shard::{AggregateKind, Constraint, ShardedStoreBuilder};
//!
//! let store = ShardedStoreBuilder::new()
//!     .shards(4)
//!     .source("cpu_load", 40.0)
//!     .source("mem_used", 900.0)
//!     .source("disk_io", 120.0)
//!     .build()
//!     .unwrap();
//! let runtime = Runtime::launch(store).unwrap();
//!
//! // Clone one handle per client thread; all verbs are thread-safe.
//! let handle = runtime.handle();
//! let reader = {
//!     let handle = handle.clone();
//!     std::thread::spawn(move || {
//!         handle.read(&"cpu_load", Constraint::Absolute(5.0), 0).unwrap()
//!     })
//! };
//! handle.write_nowait(&"mem_used", 905.0, 0).unwrap(); // fire-and-forget
//! assert!(reader.join().unwrap().answer.contains(40.0));
//!
//! // Aggregates scatter to the shard actors and gather the merged bound.
//! let out = handle
//!     .aggregate(
//!         AggregateKind::Sum,
//!         &["cpu_load", "mem_used", "disk_io"],
//!         Constraint::Absolute(50.0),
//!         1_000,
//!     )
//!     .unwrap();
//! assert!(out.answer.width() <= 50.0 + 1e-9);
//!
//! // Draining shutdown: the write above is guaranteed applied.
//! let store = runtime.into_store().unwrap();
//! assert_eq!(store.value(&"mem_used"), Some(905.0));
//! ```
//!
//! [`ShardedStore`]: apcache_shard::ShardedStore
//! [`Request`]: request::Request

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

mod actor;
pub mod backend;
pub mod completion;
pub mod error;
pub mod mailbox;
pub mod oneshot;
pub mod request;
pub mod runtime;
pub mod telemetry;

pub use completion::{Completion, CompletionQueue, Outcome, SubscriptionSender, Ticket};
pub use error::RuntimeError;
pub use request::Request;
pub use runtime::{
    Runtime, RuntimeConfig, RuntimeHandle, RuntimeMetrics, DEFAULT_LEASE_RESOLUTION_MS,
    DEFAULT_MAILBOX_CAPACITY,
};
pub use telemetry::{RuntimeTelemetry, DEFAULT_TRACE_CAPACITY, VERBS};

// Observability vocabulary, re-exported so wire-layer and operator code
// need one import root.
pub use apcache_telemetry::{Exposition, MetricKind, Registry, TraceEvent, TraceKind, TraceRing};

// Re-export the serving vocabulary so runtime callers need one import root.
pub use apcache_push::{FallbackWidth, LeaseConfig, PushEvent, PushFilter, PushReason, PushReport};
pub use apcache_queries::AggregateKind;
pub use apcache_shard::{ShardRouter, ShardedStore, ShardedStoreBuilder};
pub use apcache_store::{
    AggregateOutcome, Answer, Constraint, InitialWidth, PolicySpec, PrecisionStore, ReadResult,
    StoreBuilder, StoreError, StoreMetrics, WriteOutcome,
};

#[cfg(test)]
mod tests {
    use super::*;
    use apcache_core::Rng;

    fn fleet(shards: usize, n_keys: u64) -> ShardedStore<u64> {
        let mut b = ShardedStoreBuilder::new()
            .shards(shards)
            .rng(Rng::seed_from_u64(7))
            .initial_width(InitialWidth::Fixed(10.0));
        for k in 0..n_keys {
            b = b.source(k, 100.0 * k as f64);
        }
        b.build().unwrap()
    }

    #[test]
    fn reads_writes_and_metrics_route_to_actors() {
        let runtime = Runtime::launch(fleet(4, 16)).unwrap();
        let h = runtime.handle();
        assert_eq!(h.shard_count(), 4);
        assert_eq!(h.len(), 16);
        let r = h.read(&3, Constraint::Absolute(10.0), 0).unwrap();
        assert!(!r.refreshed);
        assert!(r.answer.contains(300.0));
        let w = h.write(&3, 600.0, 1_000).unwrap(); // escapes [295, 305]
        assert!(w.escaped());
        h.write_nowait(&5, 501.0, 1_000).unwrap();
        let m = h.metrics().unwrap();
        assert_eq!(m.merged().totals().reads, 1);
        assert_eq!(m.merged().vr_count(), 1);
        assert_eq!(m.per_shard().len(), 4);
        // The fire-and-forget write has been applied once we observe the
        // final store.
        let store = runtime.into_store().unwrap();
        assert_eq!(store.value(&5), Some(501.0));
        assert_eq!(store.value(&3), Some(600.0));
    }

    #[test]
    fn unknown_keys_rejected_without_messaging_any_actor() {
        let runtime = Runtime::launch(fleet(2, 4)).unwrap();
        let h = runtime.handle();
        assert!(matches!(
            h.read(&99, Constraint::Exact, 0),
            Err(RuntimeError::Store(StoreError::UnknownKey))
        ));
        assert!(matches!(h.write(&99, 0.0, 0), Err(RuntimeError::Store(StoreError::UnknownKey))));
        assert!(matches!(
            h.write_nowait(&99, 0.0, 0),
            Err(RuntimeError::Store(StoreError::UnknownKey))
        ));
        assert!(h.write_nowait(&0, f64::NAN, 0).is_err());
        assert!(matches!(
            h.aggregate(AggregateKind::Sum, &[0, 99], Constraint::Exact, 0),
            Err(RuntimeError::Store(StoreError::UnknownKey))
        ));
        assert_eq!(h.metrics().unwrap().merged().total_cost(), 0.0);
    }

    #[test]
    fn aggregates_scatter_and_merge_within_budget() {
        let runtime = Runtime::launch(fleet(4, 16)).unwrap();
        let h = runtime.handle();
        let keys: Vec<u64> = (0..16).collect();
        let truth: f64 = (0..16).map(|k| 100.0 * k as f64).sum();
        for delta in [1_000.0, 40.0, 8.0, 0.0] {
            let out =
                h.aggregate(AggregateKind::Sum, &keys, Constraint::Absolute(delta), 0).unwrap();
            assert!(out.answer.width() <= delta + 1e-9, "delta={delta}");
            assert!(out.answer.contains(truth), "delta={delta}");
        }
        // Relative: loose ρ certified from cache, tight ρ escalates.
        let out = h.aggregate(AggregateKind::Sum, &keys, Constraint::Relative(0.5), 0).unwrap();
        assert!(out.refreshed.is_empty());
        let out = h.aggregate(AggregateKind::Sum, &keys, Constraint::Relative(0.001), 0).unwrap();
        assert!(!out.refreshed.is_empty());
        assert!(out.answer.contains(truth));
        // Empty aggregates mirror the synchronous façades.
        let none: &[u64] = &[];
        let out = h.aggregate(AggregateKind::Sum, none, Constraint::Absolute(1.0), 0).unwrap();
        assert_eq!((out.answer.lo(), out.answer.hi()), (0.0, 0.0));
        assert!(h.aggregate(AggregateKind::Avg, none, Constraint::Absolute(1.0), 0).is_err());
        runtime.shutdown().unwrap();
    }

    #[test]
    fn checkpoint_fans_out_and_recovery_resumes_the_fleet() {
        let dir =
            std::env::temp_dir().join(format!("apcache-runtime-spool-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir = dir.to_str().unwrap().to_string();
        let mut b = ShardedStoreBuilder::new()
            .shards(2)
            .rng(Rng::seed_from_u64(7))
            .initial_width(InitialWidth::Fixed(10.0))
            .with_spool(dir.clone());
        for k in 0..8u64 {
            b = b.source(k, 100.0 * k as f64);
        }
        let runtime = Runtime::launch(b.build().unwrap()).unwrap();
        let h = runtime.handle();
        for k in 0..8u64 {
            h.write(&k, 100.0 * k as f64 + 500.0, 10).unwrap(); // escape → VR
            h.read(&k, Constraint::Absolute(50.0), 20).unwrap(); // QR
        }
        // Fan the checkpoint out to every actor; each snapshot is a
        // consistent cut of its shard's mailbox history.
        h.checkpoint().unwrap();
        let reference = runtime.into_store().unwrap();
        let recovered = ShardedStore::<u64>::recover(&dir).unwrap();
        assert_eq!(recovered.shard_count(), 2);
        for k in 0..8u64 {
            assert_eq!(recovered.value(&k), reference.value(&k), "key {k}");
            assert_eq!(recovered.internal_width(&k), reference.internal_width(&k), "key {k}");
            assert_eq!(
                recovered.cached_interval(&k, 20),
                reference.cached_interval(&k, 20),
                "key {k}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn handles_error_after_shutdown() {
        let runtime = Runtime::launch(fleet(2, 4)).unwrap();
        let h = runtime.handle();
        runtime.shutdown().unwrap();
        assert!(matches!(h.read(&0, Constraint::Exact, 0), Err(RuntimeError::Closed)));
        assert!(matches!(h.write_nowait(&0, 1.0, 0), Err(RuntimeError::Closed)));
        assert!(matches!(h.metrics(), Err(RuntimeError::Closed)));
    }

    #[test]
    fn concurrent_clients_on_disjoint_keys_all_land() {
        let runtime = Runtime::launch(fleet(4, 64)).unwrap();
        let clients: Vec<_> = (0..8u64)
            .map(|c| {
                let h = runtime.handle();
                std::thread::spawn(move || {
                    let mine: Vec<u64> = (0..64).filter(|k| k % 8 == c).collect();
                    for t in 1..=50u64 {
                        for &k in &mine {
                            h.write_nowait(&k, k as f64 + t as f64, t * 1_000).unwrap();
                        }
                        let r =
                            h.read(&mine[(t % 8) as usize], Constraint::Exact, t * 1_000).unwrap();
                        assert!(r.answer.is_exact());
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        let m = runtime.handle().metrics().unwrap();
        assert_eq!(m.merged().totals().writes, 8 * 50 * 8);
        assert_eq!(m.merged().totals().reads, 8 * 50);
        runtime.shutdown().unwrap();
    }

    #[test]
    fn tickets_settle_out_of_order_on_one_thread() {
        let runtime = Runtime::launch(fleet(4, 16)).unwrap();
        let h = runtime.handle();
        // Fill a window of heterogeneous submissions without blocking.
        let writes: Vec<Ticket> =
            (0..16).map(|k| h.submit_write(&k, 1_000.0 + k as f64, 500).unwrap()).collect();
        let reads: Vec<Ticket> =
            (0..16).map(|k| h.submit_read(&k, Constraint::Absolute(5.0), 500).unwrap()).collect();
        let keys: Vec<u64> = (0..16).collect();
        let agg = h.submit_aggregate(AggregateKind::Sum, &keys, Constraint::Exact, 500).unwrap();
        let m = h.submit_metrics().unwrap();
        // Tickets are monotone within the queue.
        let mut all: Vec<u64> = writes.iter().chain(&reads).map(|t| t.0).collect();
        all.push(agg.0);
        all.push(m.0);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        // Harvest out of order: the aggregate first, then whatever comes.
        match h.wait_ticket(agg).unwrap() {
            Outcome::Aggregate(out) => {
                assert!(out.answer.is_exact());
            }
            other => panic!("unexpected {other:?}"),
        }
        let mut harvested = 0;
        while let Some(completion) = h.wait() {
            completion.outcome.unwrap();
            harvested += 1;
        }
        assert_eq!(harvested, 16 + 16 + 1); // writes + reads + metrics
        assert_eq!(h.completions().outstanding(), 0);
        // Settled tickets cannot be redeemed twice.
        assert!(matches!(h.wait_ticket(agg), Err(RuntimeError::UnknownTicket(t)) if t == agg));
        runtime.shutdown().unwrap();
    }

    #[test]
    fn blocking_verbs_and_tickets_share_one_queue_without_stealing() {
        let runtime = Runtime::launch(fleet(2, 8)).unwrap();
        let h = runtime.handle();
        // A pending ticket survives interleaved blocking calls on the
        // same handle: wait_ticket targets its own completion only.
        let pending = h.submit_read(&3, Constraint::Absolute(1e9), 100).unwrap();
        for t in 1..=10u64 {
            h.write(&(t % 8), t as f64 * 3.0, t * 1_000).unwrap();
        }
        let keys: Vec<u64> = (0..8).collect();
        h.aggregate(AggregateKind::Max, &keys, Constraint::Relative(0.01), 20_000).unwrap();
        match h.wait_ticket(pending).unwrap() {
            Outcome::Read(r) => assert!(r.answer.contains(300.0)),
            other => panic!("unexpected {other:?}"),
        }
        // Handle clones are independent logical clients: their queues
        // and ticket sequences do not interfere.
        let other = h.clone();
        let t_other = other.submit_read(&0, Constraint::Exact, 30_000).unwrap();
        assert!(matches!(h.wait_ticket(t_other), Err(RuntimeError::UnknownTicket(_))));
        assert!(matches!(other.wait_ticket(t_other).unwrap(), Outcome::Read(_)));
        runtime.shutdown().unwrap();
    }

    #[test]
    fn relative_aggregate_rounds_interleave_with_unrelated_tickets() {
        // A tight-ρ multi-shard Relative aggregate needs escalation
        // rounds; submitting unrelated traffic after it and harvesting
        // everything must settle all tickets (the rounds advance from
        // the harvesting calls, not from a parked client thread).
        let runtime = Runtime::launch(fleet(4, 16)).unwrap();
        let h = runtime.handle();
        let keys: Vec<u64> = (0..16).collect();
        let agg =
            h.submit_aggregate(AggregateKind::Sum, &keys, Constraint::Relative(0.001), 0).unwrap();
        let unrelated: Vec<Ticket> =
            (0..16).map(|k| h.submit_read(&k, Constraint::Absolute(50.0), 0).unwrap()).collect();
        for t in unrelated {
            assert!(matches!(h.wait_ticket(t).unwrap(), Outcome::Read(_)));
        }
        match h.wait_ticket(agg).unwrap() {
            Outcome::Aggregate(out) => {
                assert!(!out.refreshed.is_empty(), "tight rho must escalate");
                let truth: f64 = (0..16).map(|k| 100.0 * k as f64).sum();
                assert!(out.answer.contains(truth));
            }
            other => panic!("unexpected {other:?}"),
        }
        runtime.shutdown().unwrap();
    }

    #[test]
    fn aggregate_ticket_settles_closed_when_shutdown_lands_between_rounds() {
        // A tight-ρ multi-shard aggregate needs an escalation round.
        // Shut the runtime down after round 1 has drained but before any
        // harvest advances the plan: issuing round 2 then fails on the
        // closed mailboxes, and the ticket must settle with Closed — not
        // vanish (the regression was wait_ticket reporting UnknownTicket
        // and wait() seeing an idle queue).
        let runtime = Runtime::launch(fleet(4, 16)).unwrap();
        let h = runtime.handle();
        let keys: Vec<u64> = (0..16).collect();
        let agg =
            h.submit_aggregate(AggregateKind::Sum, &keys, Constraint::Relative(0.0001), 0).unwrap();
        runtime.shutdown().unwrap(); // drains the probe legs, closes mailboxes
        match h.wait_ticket(agg) {
            Err(RuntimeError::Closed) => {}
            other => panic!("ticket lost across shutdown: {other:?}"),
        }
        assert_eq!(h.completions().outstanding(), 0);
    }

    #[test]
    fn poll_is_nonblocking_and_wait_drains_to_none() {
        let runtime = Runtime::launch(fleet(2, 4)).unwrap();
        let h = runtime.handle();
        assert!(h.wait().is_none(), "empty queue has nothing to wait for");
        let t = h.submit_write(&0, 5.0, 0).unwrap();
        // Poll until it settles (the actor runs concurrently).
        let completion = loop {
            if let Some(c) = h.poll() {
                break c;
            }
            std::thread::yield_now();
        };
        assert_eq!(completion.ticket, t);
        assert!(h.poll().is_none());
        runtime.shutdown().unwrap();
    }

    #[test]
    fn drain_ready_and_wait_timeout_serve_an_event_loop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let runtime = Runtime::launch(fleet(2, 8)).unwrap();
        let h = runtime.handle();
        // An empty queue: drain_ready never parks, wait_timeout expires.
        assert!(h.completions().drain_ready(16).is_empty());
        let started = std::time::Instant::now();
        assert!(h.completions().wait_timeout(std::time::Duration::from_millis(5)).is_none());
        assert!(started.elapsed() >= std::time::Duration::from_millis(5));
        // The waker fires (outside the queue locks) when completions land.
        let wakes = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&wakes);
        h.completions().set_waker(Some(Arc::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        })));
        let tickets: Vec<Ticket> =
            (0..8).map(|k| h.submit_write(&k, 7.0 * k as f64, 100).unwrap()).collect();
        // Harvest in bounded batches without ever blocking; a poller
        // woken by the hook would interleave exactly like this spin.
        let mut batch = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while batch.len() < tickets.len() {
            let n = h.completions().drain_ready_into(&mut batch, 3);
            assert!(n <= 3);
            assert!(std::time::Instant::now() < deadline, "completions never surfaced");
            std::thread::yield_now();
        }
        assert!(wakes.load(Ordering::SeqCst) >= 1, "waker must fire on readiness");
        let mut settled: Vec<u64> = batch.iter().map(|c| c.ticket.0).collect();
        settled.sort_unstable();
        let mut expected: Vec<u64> = tickets.iter().map(|t| t.0).collect();
        expected.sort_unstable();
        assert_eq!(settled, expected);
        // wait_timeout returns a completion promptly when one is pending,
        // even with nothing outstanding at call time on another clone.
        let t = h.submit_read(&0, Constraint::Absolute(5.0), 200).unwrap();
        let completion = h
            .completions()
            .wait_timeout(std::time::Duration::from_secs(10))
            .expect("pending ticket settles within the timeout");
        assert_eq!(completion.ticket, t);
        h.completions().set_waker(None);
        runtime.shutdown().unwrap();
    }

    #[test]
    fn tiny_mailboxes_exercise_backpressure_without_deadlock() {
        let cfg = RuntimeConfig { mailbox_capacity: 1, ..RuntimeConfig::default() };
        let runtime = Runtime::launch_with(fleet(2, 8), cfg).unwrap();
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let h = runtime.handle();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        h.write_nowait(&(i % 8), (w * 1_000 + i) as f64, i).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let store = runtime.into_store().unwrap();
        assert_eq!(store.metrics().merged().totals().writes, 4 * 500);
    }

    #[test]
    fn subscriptions_stream_filtered_pushes_until_unsubscribed() {
        let runtime = Runtime::launch(fleet(2, 8)).unwrap();
        let h = runtime.handle();
        let (sub, snapshot) = h.subscribe(&3, PushFilter::Always, 0).unwrap();
        assert!(snapshot.contains(300.0)); // seeded cache: [295, 305]
                                           // An in-bound write leaves the cached interval untouched (no
                                           // refresh), and the registry dedups unchanged bits: no push.
        let w = h.write(&3, 304.0, 500).unwrap();
        assert!(!w.escaped());
        assert!(h.poll().is_none(), "unchanged interval must not push");
        // An escaping write triggers a value-initiated refresh, and the
        // actor queues the push before acking the write — so it is
        // already harvestable once the blocking write returns.
        let w = h.write(&3, 600.0, 1_000).unwrap();
        assert!(w.escaped());
        let completion = h.poll().expect("push queued before write ack");
        assert_eq!(completion.ticket, sub);
        match completion.outcome.unwrap() {
            Outcome::Push(event) => {
                assert_eq!(event.key, 3);
                assert_eq!(event.reason, PushReason::Changed);
                assert!(event.interval.contains(600.0));
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = h.push_stats().unwrap();
        assert_eq!(stats.subscribers, 1);
        assert_eq!(stats.watched_keys, 1);
        // Close the stream: the ack says it existed, the subscription
        // ticket settles with SubscriptionEnded, and a second
        // unsubscribe of the dead ticket is rejected locally.
        assert!(h.unsubscribe(sub).unwrap());
        match h.wait_ticket(sub).unwrap() {
            Outcome::SubscriptionEnded => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            matches!(h.submit_unsubscribe(sub), Err(RuntimeError::UnknownTicket(t)) if t == sub)
        );
        assert_eq!(h.push_stats().unwrap().subscribers, 0);
        runtime.shutdown().unwrap();
    }

    #[test]
    fn violates_filter_only_pushes_constraint_escapes() {
        let runtime = Runtime::launch(fleet(1, 4)).unwrap();
        let h = runtime.handle();
        // Only care when the interval gets wider than 12.
        let (sub, _) =
            h.subscribe(&2, PushFilter::Violates(Constraint::Absolute(12.0)), 0).unwrap();
        let w = h.write(&2, 204.0, 100).unwrap(); // inside [195, 205]: QR shrinks
        assert!(!w.escaped());
        assert!(h.poll().is_none(), "narrowing stays within the constraint");
        let w = h.write(&2, 500.0, 200).unwrap(); // escape: VR recenters + grows
        assert!(w.escaped());
        // Growth alone need not violate 12.0; force it wide via repeated escapes.
        let mut pushed = h.poll().is_some();
        let mut value = 500.0;
        let mut now = 300;
        while !pushed {
            value = -value;
            assert!(h.write(&2, value, now).unwrap().escaped());
            pushed = h.poll().is_some();
            now += 100;
        }
        h.unsubscribe(sub).unwrap();
        runtime.shutdown().unwrap();
    }

    #[test]
    fn lapsed_leases_widen_to_fallback_and_push_exactly_once() {
        let runtime = Runtime::launch(fleet(2, 8)).unwrap();
        let h = runtime.handle();
        let (sub, snapshot) = h.subscribe(&5, PushFilter::Always, 0).unwrap();
        assert!((snapshot.width() - 10.0).abs() < 1e-12);
        let cfg = LeaseConfig { ttl_ms: 1_000, fallback: FallbackWidth::Fixed(40.0) };
        h.lease(&5, cfg, 0).unwrap();
        assert_eq!(h.push_stats().unwrap().leases, 1);
        // Within TTL: nothing lapses.
        let report = h.advance_time(900).unwrap();
        assert_eq!(report.expired, 0);
        assert!(h.poll().is_none());
        // Past TTL: the interval widens to the fallback, one push.
        let report = h.advance_time(2_000).unwrap();
        assert_eq!(report.expired, 1);
        let completion = h.poll().expect("lease lapse pushes");
        assert_eq!(completion.ticket, sub);
        match completion.outcome.unwrap() {
            Outcome::Push(event) => {
                assert_eq!(event.reason, PushReason::LeaseExpired);
                assert!((event.interval.width() - 40.0).abs() < 1e-12);
                assert!(event.interval.contains(500.0));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The lapse fired once; further advances push nothing new.
        let report = h.advance_time(10_000).unwrap();
        assert_eq!(report.expired, 0);
        assert!(h.poll().is_none());
        // A source contact that escapes the widened interval refreshes
        // (recentring it) and pushes the post-write interval.
        assert!(h.write(&5, 600.0, 11_000).unwrap().escaped());
        assert!(h.poll().is_some());
        // Release: the next lapse horizon never fires.
        assert!(h.release_lease(&5, 11_000).unwrap());
        assert_eq!(h.push_stats().unwrap().leases, 0);
        assert_eq!(h.advance_time(100_000).unwrap().expired, 0);
        h.unsubscribe(sub).unwrap();
        runtime.shutdown().unwrap();
    }

    #[test]
    fn invalid_lease_configs_and_unknown_keys_rejected_before_enqueue() {
        let runtime = Runtime::launch(fleet(1, 2)).unwrap();
        let h = runtime.handle();
        let bad = LeaseConfig { ttl_ms: 0, fallback: FallbackWidth::Unbounded };
        assert!(matches!(
            h.submit_lease(&0, bad, 0),
            Err(RuntimeError::Store(StoreError::Config(_)))
        ));
        let cfg = LeaseConfig { ttl_ms: 100, fallback: FallbackWidth::Factor(2.0) };
        assert!(matches!(
            h.submit_lease(&99, cfg, 0),
            Err(RuntimeError::Store(StoreError::UnknownKey))
        ));
        assert!(matches!(
            h.submit_subscribe(&99, PushFilter::Always, 0),
            Err(RuntimeError::Store(StoreError::UnknownKey))
        ));
        // Releasing a never-granted lease is a clean false.
        assert!(!h.release_lease(&0, 0).unwrap());
        runtime.shutdown().unwrap();
    }

    #[test]
    fn runtime_shutdown_ends_live_subscriptions() {
        let runtime = Runtime::launch(fleet(2, 4)).unwrap();
        let h = runtime.handle();
        let (sub, _) = h.subscribe(&1, PushFilter::Always, 0).unwrap();
        runtime.shutdown().unwrap();
        // The actor dropped its registry on drain; the streaming ticket
        // settles with SubscriptionEnded instead of stranding a waiter.
        match h.wait_ticket(sub).unwrap() {
            Outcome::SubscriptionEnded => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(h.completions().outstanding(), 0);
    }

    #[test]
    fn wall_clock_ticker_expires_leases_without_traffic() {
        let cfg = RuntimeConfig {
            tick_interval: Some(std::time::Duration::from_millis(5)),
            ..RuntimeConfig::default()
        };
        let runtime = Runtime::launch_with(fleet(1, 2), cfg).unwrap();
        let h = runtime.handle();
        let (sub, _) = h.subscribe(&0, PushFilter::Always, 0).unwrap();
        let cfg = LeaseConfig { ttl_ms: 20, fallback: FallbackWidth::Fixed(99.0) };
        h.lease(&0, cfg, 0).unwrap();
        // No traffic at all: the tick thread's wall clock must lapse the
        // lease and deliver the widening push.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let event = loop {
            if let Some(completion) = h.poll() {
                match completion.outcome.unwrap() {
                    Outcome::Push(event) => break event,
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert!(std::time::Instant::now() < deadline, "ticker never fired");
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        assert_eq!(event.reason, PushReason::LeaseExpired);
        assert!((event.interval.width() - 99.0).abs() < 1e-12);
        h.unsubscribe(sub).unwrap();
        runtime.shutdown().unwrap();
    }

    /// An empty store with the fleet's tuning, for elastic growth.
    fn empty_store() -> PrecisionStore<u64> {
        StoreBuilder::new().initial_width(InitialWidth::Fixed(10.0)).build().unwrap()
    }

    #[test]
    fn add_shard_live_migrates_keys_and_converged_widths() {
        // Two identical fleets take identical traffic; one reshards
        // mid-stream. Every key's final value AND adaptive width must be
        // bit-identical — migration carries protocol state, not just data.
        let reference = Runtime::launch(fleet(2, 32)).unwrap();
        let mut elastic = Runtime::launch(fleet(2, 32)).unwrap();
        let rh = reference.handle();
        let eh = elastic.handle();
        let drive = |h: &RuntimeHandle<u64>, t: u64| {
            for k in 0..32u64 {
                let v = 100.0 * k as f64 + if t % 3 == 0 { 400.0 } else { t as f64 };
                h.write(&k, v, t * 1_000).unwrap();
            }
        };
        for t in 1..=20u64 {
            drive(&rh, t);
            drive(&eh, t);
        }
        let new_id = elastic.add_shard(empty_store()).unwrap();
        assert_eq!(elastic.shard_count(), 3);
        assert_eq!(elastic.shard_ids(), vec![0, 1, new_id]);
        for t in 21..=40u64 {
            drive(&rh, t);
            drive(&eh, t);
        }
        let ref_store = reference.into_store().unwrap();
        let el_store = elastic.into_store().unwrap();
        let mut moved = 0;
        for k in 0..32u64 {
            assert_eq!(el_store.value(&k), ref_store.value(&k), "key {k}");
            assert_eq!(el_store.internal_width(&k), ref_store.internal_width(&k), "key {k}");
            if el_store.shard_of(&k) == new_id as usize {
                moved += 1;
            }
        }
        assert!(moved > 0, "the new shard must have taken ownership of some keys");
    }

    #[test]
    fn remove_shard_rehomes_residents_and_returns_drained_store() {
        let mut runtime = Runtime::launch(fleet(3, 24)).unwrap();
        let h = runtime.handle();
        for k in 0..24u64 {
            h.write(&k, 5.0 * k as f64, 1_000).unwrap();
        }
        let drained = runtime.remove_shard(1).unwrap();
        assert!(drained.is_empty(), "every resident must have been rehomed");
        assert_eq!(runtime.shard_count(), 2);
        assert_eq!(runtime.shard_ids(), vec![0, 2]);
        for k in 0..24u64 {
            let r = h.read(&k, Constraint::Exact, 2_000).unwrap();
            assert!(r.answer.contains(5.0 * k as f64), "key {k} lost its last write");
        }
        // Shrink to one shard; the last one is irremovable, as is an id
        // that is not on the ring.
        runtime.remove_shard(0).unwrap();
        assert!(matches!(runtime.remove_shard(2), Err(RuntimeError::Store(StoreError::Config(_)))));
        assert!(matches!(
            runtime.remove_shard(99),
            Err(RuntimeError::Store(StoreError::Config(_)))
        ));
        for k in 0..24u64 {
            assert!(h.read(&k, Constraint::Exact, 3_000).is_ok());
        }
        runtime.shutdown().unwrap();
    }

    #[test]
    fn add_shard_rejects_nonempty_store() {
        let mut runtime = Runtime::launch(fleet(2, 8)).unwrap();
        let populated = StoreBuilder::new().source(999u64, 1.0).build().unwrap();
        assert!(matches!(
            runtime.add_shard(populated),
            Err(RuntimeError::Store(StoreError::Config(_)))
        ));
        assert_eq!(runtime.shard_count(), 2);
    }

    #[test]
    fn subscriptions_and_leases_survive_migration() {
        let mut runtime = Runtime::launch(fleet(1, 16)).unwrap();
        let h = runtime.handle();
        // Watch and lease every key, then grow the ring so some keys
        // migrate off shard 0 mid-subscription.
        let subs: Vec<(u64, Ticket)> =
            (0..16u64).map(|k| (k, h.subscribe(&k, PushFilter::Always, 0).unwrap().0)).collect();
        let cfg = LeaseConfig { ttl_ms: 5_000, fallback: FallbackWidth::Fixed(77.0) };
        for k in 0..16u64 {
            h.lease(&k, cfg, 0).unwrap();
        }
        let new_id = runtime.add_shard(empty_store()).unwrap();
        let migrated: Vec<u64> = (0..16u64).filter(|k| h.shard_of(k) == new_id as usize).collect();
        assert!(!migrated.is_empty(), "growth must remap some watched keys");
        // Push-side occupancy moved with the keys, not dropped.
        let stats = h.push_stats().unwrap();
        assert_eq!(stats.subscribers, 16);
        assert_eq!(stats.watched_keys, 16);
        assert_eq!(stats.leases, 16);
        // A migrated key's stream keeps flowing from its new shard.
        let k = migrated[0];
        let sub = subs.iter().find(|(key, _)| *key == k).unwrap().1;
        assert!(h.write(&k, 100.0 * k as f64 + 600.0, 1_000).unwrap().escaped());
        let completion = h.poll().expect("push queued before write ack");
        assert_eq!(completion.ticket, sub);
        match completion.outcome.unwrap() {
            Outcome::Push(event) => {
                assert_eq!(event.key, k);
                assert_eq!(event.reason, PushReason::Changed);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Its lease migrated with its absolute deadline: renewed by the
        // write above at t=1000, it lapses past 6000 and pushes once.
        let report = h.advance_time(10_000).unwrap();
        assert_eq!(report.expired, 16);
        let mut lease_pushes = 0;
        while let Some(completion) = h.poll() {
            match completion.outcome.unwrap() {
                Outcome::Push(event) => {
                    if event.reason == PushReason::LeaseExpired {
                        lease_pushes += 1;
                        if event.key == k {
                            assert!((event.interval.width() - 77.0).abs() < 1e-12);
                        }
                    }
                }
                Outcome::TimeAdvanced(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(lease_pushes, 16, "every lease lapses exactly once, wherever its key lives");
        // Unsubscribing a migrated stream routes by key and finds it.
        assert!(h.unsubscribe(sub).unwrap());
        match h.wait_ticket(sub).unwrap() {
            Outcome::SubscriptionEnded => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(h.push_stats().unwrap().subscribers, 15);
        runtime.shutdown().unwrap();
    }

    #[test]
    fn reads_racing_reshards_block_or_forward_never_tear() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        // Four reader threads hammer exact reads while the main thread
        // grows and shrinks the ring. Every read must land on whichever
        // shard owns the key when the topology guard admits it — never an
        // UnknownKey from a half-flipped ring, never a stale value.
        let mut runtime = Runtime::launch(fleet(2, 32)).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let h = runtime.handle();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for k in 0..32u64 {
                            let r = h.read(&k, Constraint::Exact, 1_000).unwrap();
                            assert!(r.answer.contains(100.0 * k as f64));
                            reads += 1;
                        }
                    }
                    reads
                })
            })
            .collect();
        let mut added = Vec::new();
        for _ in 0..3 {
            added.push(runtime.add_shard(empty_store()).unwrap());
        }
        runtime.remove_shard(0).unwrap();
        runtime.remove_shard(added[0]).unwrap();
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().unwrap() > 0);
        }
        assert_eq!(runtime.shard_count(), 3);
        // The fleet still answers for every key after the churn.
        let store = runtime.into_store().unwrap();
        for k in 0..32u64 {
            assert_eq!(store.value(&k), Some(100.0 * k as f64));
        }
    }
}
