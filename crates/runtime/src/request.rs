//! The mailbox protocol between [`RuntimeHandle`](crate::RuntimeHandle)
//! and the shard actors.

use apcache_core::TimeMs;
use apcache_push::{LeaseConfig, PushFilter};
use apcache_queries::AggregateKind;
use apcache_store::{Constraint, KeyState, StoreError};

use crate::completion::{LegSender, SubscriptionSender};
use crate::oneshot::ReplySender;

/// Everything a migrating key carries between shard actors: the store
/// entry with full protocol state, plus the push-side bindings — the TTL
/// lease (with its *absolute* deadline, so a lease that lapses
/// mid-migration still degrades exactly once) and the live subscription
/// watch (with its fan-out dedup bits, so the move neither re-delivers
/// nor swallows the interval in force).
pub struct MigrationBundle<K> {
    /// Store entries: value, policy spec + adaptive state, source spec,
    /// cached interval, per-key metrics.
    pub entries: Vec<KeyState<K>>,
    /// TTL leases: `(key, config, armed absolute deadline)`.
    pub leases: Vec<(K, LeaseConfig, Option<TimeMs>)>,
    /// Subscription watches: `(key, dedup bits, (id, filter, sink))` —
    /// the sinks move intact, so subscriber streams survive the
    /// migration without an end/resubscribe cycle.
    #[allow(clippy::type_complexity)]
    pub watches: Vec<(K, (u64, u64), Vec<(u64, PushFilter, SubscriptionSender<K>)>)>,
}

impl<K> Default for MigrationBundle<K> {
    fn default() -> Self {
        MigrationBundle { entries: Vec::new(), leases: Vec::new(), watches: Vec::new() }
    }
}

impl<K> std::fmt::Debug for MigrationBundle<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigrationBundle")
            .field("entries", &self.entries.len())
            .field("leases", &self.leases.len())
            .field("watches", &self.watches.len())
            .finish()
    }
}

/// One message in a shard actor's mailbox.
///
/// Every variant maps onto a `PrecisionStore` verb on the shard's own
/// store; cross-shard operations (deployment-wide aggregates, batch
/// writes, the merged metrics rollup) are composed by the handle out of
/// these per-shard messages — the actors themselves never talk to each
/// other, which is what keeps the runtime deadlock-free by construction.
///
/// Each verb-carrying variant holds a [`LegSender`]: the actor fulfills
/// it with the store's result, and the handle's completion queue folds
/// the legs into [`Completion`](crate::Completion)s — whether the caller
/// is harvesting tickets out of order or blocking in a `submit` +
/// `wait_ticket` wrapper.
pub enum Request<K> {
    /// Point read to the given precision.
    Read {
        /// Key to read (owned by this shard).
        key: K,
        /// Required precision.
        constraint: Constraint,
        /// Logical time of the read.
        now: TimeMs,
        /// Where the answer goes.
        reply: LegSender<K>,
    },
    /// A new exact value arrives at the source. `reply: None` is the
    /// fire-and-forget path: the caller paid its backpressure toll at the
    /// mailbox and does not wait for the outcome.
    Write {
        /// Key to write (owned by this shard).
        key: K,
        /// The new exact value.
        value: f64,
        /// Logical time of the write.
        now: TimeMs,
        /// Where the outcome goes; `None` for fire-and-forget.
        reply: Option<LegSender<K>>,
    },
    /// A batch of writes for this shard, applied in order.
    WriteBatch {
        /// `(key, value)` pairs, all owned by this shard.
        items: Vec<(K, f64)>,
        /// Logical time of the batch.
        now: TimeMs,
        /// Where the summed outcome goes.
        reply: LegSender<K>,
    },
    /// One shard-local leg of a deployment-wide aggregate (the
    /// completion queue splits the budget and merges the partial
    /// answers by the shared [`plan`](apcache_shard::plan) rules).
    Aggregate {
        /// The shard-local aggregate kind (AVG arrives as SUM).
        kind: AggregateKind,
        /// The queried keys owned by this shard.
        keys: Vec<K>,
        /// This shard's slice of the precision budget.
        constraint: Constraint,
        /// Logical time of the query.
        now: TimeMs,
        /// Where the partial answer goes.
        reply: LegSender<K>,
    },
    /// Snapshot this shard's serving metrics.
    Metrics {
        /// Where the snapshot goes.
        reply: LegSender<K>,
    },
    /// Open a push subscription on `key`: the actor acks with the current
    /// cached interval, then streams a push completion through `sub`
    /// every time the interval changes (or a lease lapse widens it) and
    /// the filter matches.
    Subscribe {
        /// Key to watch (owned by this shard).
        key: K,
        /// Which interval changes the subscriber wants delivered.
        filter: PushFilter,
        /// Logical time of the subscribe (snapshot time).
        now: TimeMs,
        /// The streaming half of the subscription's ticket.
        sub: SubscriptionSender<K>,
    },
    /// Close the subscription whose ticket id is `id` on this shard.
    Unsubscribe {
        /// The subscription's ticket id (as returned at subscribe time).
        id: u64,
        /// The watched key — routing only: migration may have moved the
        /// watch to a different shard than the one it was opened on, so
        /// unsubscribes follow the key, not the subscribe-time shard.
        key: K,
        /// Where the `existed` acknowledgement goes.
        reply: LegSender<K>,
    },
    /// Grant/renew (`cfg: Some`) or release (`cfg: None`) a TTL lease on
    /// `key`'s cached interval.
    Lease {
        /// Key to lease (owned by this shard).
        key: K,
        /// The lease policy, or `None` to release.
        cfg: Option<LeaseConfig>,
        /// Logical time of the operation.
        now: TimeMs,
        /// Where the acknowledgement goes.
        reply: LegSender<K>,
    },
    /// Advance the shard's push-side logical clock (`now: Some`) so
    /// lapsed leases expire, and/or snapshot push-side occupancy.
    /// `reply: None` is the fire-and-forget form the wall-clock tick
    /// thread uses.
    Tick {
        /// New logical time, or `None` for a pure stats snapshot.
        now: Option<TimeMs>,
        /// Where the shard's push report goes, if anyone is asking.
        reply: Option<LegSender<K>>,
    },
    /// Detach `keys` — store entries, leases, watches — for migration to
    /// another shard. Mailbox FIFO is the drain barrier: every request
    /// enqueued before this one is fully served first, so the exported
    /// state reflects all prior traffic. Fails atomically (an unknown key
    /// exports nothing).
    Export {
        /// The keys to detach (all must be resident on this shard).
        keys: Vec<K>,
        /// Where the detached state goes.
        reply: ReplySender<Result<MigrationBundle<K>, StoreError>>,
    },
    /// Attach a bundle detached from another shard via
    /// [`Request::Export`]. Keys resume the paper's protocol exactly
    /// where they left off.
    Install {
        /// The detached state to attach.
        bundle: MigrationBundle<K>,
        /// Acknowledged once every key is resident.
        ack: ReplySender<Result<(), StoreError>>,
    },
    /// Snapshot this shard's store into its durable spool and compact
    /// the log (a no-op `Ok` when the store has no spool). Mailbox FIFO
    /// makes the snapshot a consistent cut: it reflects every request
    /// enqueued before this one and none after.
    Checkpoint {
        /// Acknowledged once the snapshot is durable (or skipped).
        ack: ReplySender<Result<(), StoreError>>,
    },
    /// Orderly shutdown marker: the actor acknowledges that every request
    /// enqueued before this one has been fully processed. (The actor
    /// keeps draining afterwards until its mailbox is closed and empty.)
    Shutdown {
        /// Acknowledged once the preceding requests have drained.
        ack: ReplySender<()>,
    },
}
