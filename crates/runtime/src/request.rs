//! The mailbox protocol between [`RuntimeHandle`](crate::RuntimeHandle)
//! and the shard actors.

use apcache_core::TimeMs;
use apcache_push::{LeaseConfig, PushFilter};
use apcache_queries::AggregateKind;
use apcache_store::Constraint;

use crate::completion::{LegSender, SubscriptionSender};
use crate::oneshot::ReplySender;

/// One message in a shard actor's mailbox.
///
/// Every variant maps onto a `PrecisionStore` verb on the shard's own
/// store; cross-shard operations (deployment-wide aggregates, batch
/// writes, the merged metrics rollup) are composed by the handle out of
/// these per-shard messages — the actors themselves never talk to each
/// other, which is what keeps the runtime deadlock-free by construction.
///
/// Each verb-carrying variant holds a [`LegSender`]: the actor fulfills
/// it with the store's result, and the handle's completion queue folds
/// the legs into [`Completion`](crate::Completion)s — whether the caller
/// is harvesting tickets out of order or blocking in a `submit` +
/// `wait_ticket` wrapper.
pub enum Request<K> {
    /// Point read to the given precision.
    Read {
        /// Key to read (owned by this shard).
        key: K,
        /// Required precision.
        constraint: Constraint,
        /// Logical time of the read.
        now: TimeMs,
        /// Where the answer goes.
        reply: LegSender<K>,
    },
    /// A new exact value arrives at the source. `reply: None` is the
    /// fire-and-forget path: the caller paid its backpressure toll at the
    /// mailbox and does not wait for the outcome.
    Write {
        /// Key to write (owned by this shard).
        key: K,
        /// The new exact value.
        value: f64,
        /// Logical time of the write.
        now: TimeMs,
        /// Where the outcome goes; `None` for fire-and-forget.
        reply: Option<LegSender<K>>,
    },
    /// A batch of writes for this shard, applied in order.
    WriteBatch {
        /// `(key, value)` pairs, all owned by this shard.
        items: Vec<(K, f64)>,
        /// Logical time of the batch.
        now: TimeMs,
        /// Where the summed outcome goes.
        reply: LegSender<K>,
    },
    /// One shard-local leg of a deployment-wide aggregate (the
    /// completion queue splits the budget and merges the partial
    /// answers by the shared [`plan`](apcache_shard::plan) rules).
    Aggregate {
        /// The shard-local aggregate kind (AVG arrives as SUM).
        kind: AggregateKind,
        /// The queried keys owned by this shard.
        keys: Vec<K>,
        /// This shard's slice of the precision budget.
        constraint: Constraint,
        /// Logical time of the query.
        now: TimeMs,
        /// Where the partial answer goes.
        reply: LegSender<K>,
    },
    /// Snapshot this shard's serving metrics.
    Metrics {
        /// Where the snapshot goes.
        reply: LegSender<K>,
    },
    /// Open a push subscription on `key`: the actor acks with the current
    /// cached interval, then streams a push completion through `sub`
    /// every time the interval changes (or a lease lapse widens it) and
    /// the filter matches.
    Subscribe {
        /// Key to watch (owned by this shard).
        key: K,
        /// Which interval changes the subscriber wants delivered.
        filter: PushFilter,
        /// Logical time of the subscribe (snapshot time).
        now: TimeMs,
        /// The streaming half of the subscription's ticket.
        sub: SubscriptionSender<K>,
    },
    /// Close the subscription whose ticket id is `id` on this shard.
    Unsubscribe {
        /// The subscription's ticket id (as returned at subscribe time).
        id: u64,
        /// Where the `existed` acknowledgement goes.
        reply: LegSender<K>,
    },
    /// Grant/renew (`cfg: Some`) or release (`cfg: None`) a TTL lease on
    /// `key`'s cached interval.
    Lease {
        /// Key to lease (owned by this shard).
        key: K,
        /// The lease policy, or `None` to release.
        cfg: Option<LeaseConfig>,
        /// Logical time of the operation.
        now: TimeMs,
        /// Where the acknowledgement goes.
        reply: LegSender<K>,
    },
    /// Advance the shard's push-side logical clock (`now: Some`) so
    /// lapsed leases expire, and/or snapshot push-side occupancy.
    /// `reply: None` is the fire-and-forget form the wall-clock tick
    /// thread uses.
    Tick {
        /// New logical time, or `None` for a pure stats snapshot.
        now: Option<TimeMs>,
        /// Where the shard's push report goes, if anyone is asking.
        reply: Option<LegSender<K>>,
    },
    /// Orderly shutdown marker: the actor acknowledges that every request
    /// enqueued before this one has been fully processed. (The actor
    /// keeps draining afterwards until its mailbox is closed and empty.)
    Shutdown {
        /// Acknowledged once the preceding requests have drained.
        ack: ReplySender<()>,
    },
}
