//! A bounded MPSC mailbox built on `std` primitives only.
//!
//! One mailbox feeds each shard actor. Senders are cheap to clone and
//! **park when the queue is full** — that is the runtime's backpressure:
//! a client thread producing faster than a shard can drain blocks until
//! the actor catches up, instead of growing an unbounded queue. Closing
//! the mailbox fails further sends but lets the receiver drain what was
//! already queued, so shutdown never drops an accepted request.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`MailboxSender::send`] on a closed mailbox; carries
/// the rejected message back to the caller.
#[derive(Debug)]
pub struct SendError<T>(pub T);

struct Core<T> {
    state: Mutex<State<T>>,
    /// Signalled when the queue gains an item or closes (receiver side).
    not_empty: Condvar,
    /// Signalled when the queue loses an item or closes (sender side).
    not_full: Condvar,
    capacity: usize,
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// Create a mailbox holding at most `capacity >= 1` queued messages.
pub fn mailbox<T>(capacity: usize) -> (MailboxSender<T>, MailboxReceiver<T>) {
    let core = Arc::new(Core {
        state: Mutex::new(State { queue: VecDeque::new(), closed: false }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity: capacity.max(1),
    });
    (MailboxSender { core: Arc::clone(&core) }, MailboxReceiver { core })
}

/// The producing half: cloneable, blocking on a full queue.
pub struct MailboxSender<T> {
    core: Arc<Core<T>>,
}

impl<T> Clone for MailboxSender<T> {
    fn clone(&self) -> Self {
        MailboxSender { core: Arc::clone(&self.core) }
    }
}

impl<T> MailboxSender<T> {
    /// Enqueue `msg`, parking while the mailbox is full. Fails (returning
    /// the message) once the mailbox is closed.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.core.state.lock().expect("mailbox lock poisoned");
        loop {
            if state.closed {
                return Err(SendError(msg));
            }
            if state.queue.len() < self.core.capacity {
                state.queue.push_back(msg);
                drop(state);
                self.core.not_empty.notify_one();
                return Ok(());
            }
            state = self.core.not_full.wait(state).expect("mailbox lock poisoned");
        }
    }

    /// Close the mailbox: further sends fail, the receiver drains what is
    /// already queued and then sees the end of the stream.
    pub fn close(&self) {
        let mut state = self.core.state.lock().expect("mailbox lock poisoned");
        state.closed = true;
        drop(state);
        self.core.not_empty.notify_all();
        self.core.not_full.notify_all();
    }

    /// Number of messages currently queued (a racy snapshot, for
    /// monitoring and tests).
    pub fn len(&self) -> usize {
        self.core.state.lock().expect("mailbox lock poisoned").queue.len()
    }

    /// The bound this mailbox parks producers at.
    pub fn capacity(&self) -> usize {
        self.core.capacity
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The consuming half: exactly one per mailbox (the shard actor).
pub struct MailboxReceiver<T> {
    core: Arc<Core<T>>,
}

impl<T> MailboxReceiver<T> {
    /// Dequeue the next message in FIFO order, parking while the mailbox
    /// is empty. Returns `None` once the mailbox is closed **and** fully
    /// drained — the actor's signal to exit.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.core.state.lock().expect("mailbox lock poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.core.not_full.notify_one();
                return Some(msg);
            }
            if state.closed {
                return None;
            }
            state = self.core.not_empty.wait(state).expect("mailbox lock poisoned");
        }
    }
}

impl<T> Drop for MailboxReceiver<T> {
    /// A dying receiver — the actor exited, possibly by panic — closes
    /// the mailbox and discards whatever is still queued. Dropping the
    /// queued requests drops their reply senders, so clients blocked on
    /// replies observe the dropped-reply error instead of waiting forever,
    /// and parked producers wake to a closed-mailbox error.
    fn drop(&mut self) {
        // The state lock is never held across a panic site (senders and
        // recv release it before returning), but stay abort-safe inside
        // Drop anyway: a poisoned lock still yields the guard.
        let mut state = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        let leftovers: Vec<T> = state.queue.drain(..).collect();
        drop(state);
        self.core.not_empty.notify_all();
        self.core.not_full.notify_all();
        // Reply senders inside the leftovers drop here, outside the lock.
        drop(leftovers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_within_a_sender() {
        let (tx, rx) = mailbox(8);
        for i in 0..8 {
            tx.send(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rx.recv(), Some(i));
        }
    }

    #[test]
    fn full_mailbox_parks_sender_until_drained() {
        let (tx, rx) = mailbox(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let producer = {
            let tx = tx.clone();
            thread::spawn(move || tx.send(3).map_err(|_| ()).unwrap())
        };
        // The producer cannot finish while the queue is full.
        thread::sleep(Duration::from_millis(20));
        assert!(!producer.is_finished(), "send returned despite a full mailbox");
        assert_eq!(rx.recv(), Some(1));
        producer.join().unwrap();
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn close_fails_sends_but_drains_queue() {
        let (tx, rx) = mailbox(4);
        tx.send("kept").unwrap();
        tx.close();
        assert!(matches!(tx.send("dropped"), Err(SendError("dropped"))));
        assert_eq!(rx.recv(), Some("kept"));
        assert_eq!(rx.recv(), None);
        // recv after the end stays at the end.
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn close_wakes_parked_sender() {
        let (tx, _rx) = mailbox(1);
        tx.send(0).unwrap();
        let parked = {
            let tx = tx.clone();
            thread::spawn(move || tx.send(1).is_err())
        };
        thread::sleep(Duration::from_millis(20));
        tx.close();
        assert!(parked.join().unwrap(), "parked send must fail on close");
    }

    #[test]
    fn dropped_receiver_closes_and_drains() {
        // Simulates an actor dying (panic or exit) with requests queued:
        // the queued messages are dropped (releasing any reply senders
        // inside them) and parked/later senders error out.
        let (tx, rx) = mailbox(2);
        let (reply, reply_rx) = crate::oneshot::reply_slot::<u32>();
        assert!(tx.send(Some(reply)).is_ok());
        assert!(tx.send(None).is_ok());
        let parked = {
            let tx = tx.clone();
            thread::spawn(move || tx.send(None).is_err())
        };
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(parked.join().unwrap(), "parked send must fail when the receiver dies");
        assert!(matches!(tx.send(None), Err(SendError(None))));
        // The queued reply sender was dropped, so the waiter is released.
        assert!(reply_rx.recv().is_err());
    }

    #[test]
    fn concurrent_producers_deliver_everything() {
        let (tx, rx) = mailbox(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        let mut seen = Vec::with_capacity(400);
        for _ in 0..400 {
            seen.push(rx.recv().unwrap());
        }
        for p in producers {
            p.join().unwrap();
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..400).collect::<Vec<_>>());
    }
}
