//! [`RuntimeHandle`] as a [`ShardBackend`]: a whole actor-per-shard
//! deployment serving as *one* shard of an outer
//! [`ShardedStore`](apcache_shard::ShardedStore) ring.
//!
//! This is the middle rung of the mixed-backend ladder: the outer ring
//! can route some shards to in-process [`PrecisionStore`]s, some to live
//! runtimes (this impl), and some to remote servers (the wire crate's
//! client impl) — and elastic resharding moves resident keys between all
//! of them through the same `export_keys`/`import_keys` surface.
//!
//! ## What migration carries, and what it visibly ends
//!
//! The generic backend contract moves [`KeyState`] — the paper's full
//! per-key protocol state (value, policy spec + adaptive width, source
//! spec, cached interval, per-key metrics). Push-side bindings cannot
//! cross the trait boundary: a subscription's sink is a live in-process
//! channel with no generic representation. So when the *outer* ring
//! migrates a key out of a runtime deployment, that key's inner
//! subscriptions end **visibly** (each streaming ticket settles with
//! `SubscriptionEnded`) and its TTL lease is released — never a silently
//! stale watch on a departed key. Intra-runtime migration
//! ([`Runtime::add_shard`](crate::Runtime::add_shard) /
//! [`Runtime::remove_shard`](crate::Runtime::remove_shard)) is the richer
//! path that carries leases and live watches along.
//!
//! [`PrecisionStore`]: apcache_store::PrecisionStore

use std::collections::HashMap;
use std::hash::Hash;

use apcache_core::TimeMs;
use apcache_queries::AggregateKind;
use apcache_shard::ShardBackend;
use apcache_store::{
    AggregateOutcome, Constraint, KeyState, PolicySpec, ReadResult, StoreError, StoreMetrics,
    WriteOutcome,
};

use crate::error::RuntimeError;
use crate::oneshot::reply_slot;
use crate::request::{MigrationBundle, Request};
use crate::runtime::RuntimeHandle;

/// Fold a runtime-layer failure into the store-error surface the trait
/// speaks: store errors pass through verbatim; runtime-infrastructure
/// failures (closed mailboxes, dead actors) surface as configuration
/// errors naming the cause.
fn store_err(e: RuntimeError) -> StoreError {
    match e {
        RuntimeError::Store(e) => e,
        other => StoreError::Config(format!("runtime backend unavailable: {other}")),
    }
}

fn closed() -> StoreError {
    store_err(RuntimeError::Closed)
}

fn actor_gone() -> StoreError {
    store_err(RuntimeError::ActorGone)
}

/// The migration surface as inherent `&self` methods, so callers that
/// hold the handle behind an `Arc` (the wire crate's pipelined server
/// serves migration verbs straight off its connection handle) can reach
/// it without exclusive access. The [`ShardBackend`] impl below
/// delegates here.
impl<K: Hash + Ord + Clone + Send + Sync + 'static> RuntimeHandle<K> {
    /// Every key registered across the deployment, sorted.
    ///
    /// The directory is a set with no registration order; sorted is the
    /// deterministic substitute (migration batches built from this list
    /// must be reproducible run to run).
    pub fn sorted_keys(&self) -> Vec<K> {
        let mut keys: Vec<K> =
            self.shared.keys.read().expect("key directory lock poisoned").iter().cloned().collect();
        keys.sort();
        keys
    }

    /// Detach `keys` with their complete protocol state — the export half
    /// of cross-backend migration. Fails atomically: a single unknown key
    /// exports nothing.
    ///
    /// Leases and watches cannot cross the generic boundary: each
    /// exported key's watches end visibly (their streaming tickets settle
    /// with `SubscriptionEnded`) and its lease is dropped — never a
    /// silently stale binding on a departed key.
    pub fn export_key_states(&self, keys: &[K]) -> Result<Vec<KeyState<K>>, StoreError> {
        // Whole-set pre-check against the directory so a miss exports
        // nothing (the atomicity contract).
        {
            let dir = self.shared.keys.read().expect("key directory lock poisoned");
            for key in keys {
                if !dir.contains(key) {
                    return Err(StoreError::UnknownKey);
                }
            }
        }
        let topo = self.shared.topology.read().expect("topology lock poisoned");
        let mut per_slot: Vec<Vec<K>> = vec![Vec::new(); topo.senders.len()];
        for key in keys {
            per_slot[topo.slot_for_key(key)].push(key.clone());
        }
        let mut detached: HashMap<K, KeyState<K>> = HashMap::with_capacity(keys.len());
        for (slot, batch) in per_slot.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (reply, rx) = reply_slot();
            topo.senders[slot]
                .send(Request::Export { keys: batch, reply })
                .map_err(|_| closed())?;
            let bundle = rx.recv().map_err(|_| actor_gone())??;
            // Dropping each watch's sink settles its streaming ticket
            // with SubscriptionEnded — the subscriber observes the end
            // and can resubscribe wherever the key lands. Never silent.
            drop((bundle.leases, bundle.watches));
            for entry in bundle.entries {
                detached.insert(entry.key.clone(), entry);
            }
        }
        drop(topo);
        let mut dir = self.shared.keys.write().expect("key directory lock poisoned");
        for key in keys {
            dir.remove(key);
        }
        drop(dir);
        // Hand back in the caller's order, whatever slots served them.
        Ok(keys
            .iter()
            .map(|key| detached.remove(key).expect("every pre-checked key was exported"))
            .collect())
    }

    /// Attach keys previously detached elsewhere — the import half of
    /// cross-backend migration.
    pub fn import_key_states(&self, states: Vec<KeyState<K>>) -> Result<(), StoreError> {
        let topo = self.shared.topology.read().expect("topology lock poisoned");
        let mut per_slot: Vec<Vec<KeyState<K>>> = Vec::new();
        per_slot.resize_with(topo.senders.len(), Vec::new);
        for state in states {
            let slot = topo.slot_for_key(&state.key);
            per_slot[slot].push(state);
        }
        let mut installed: Vec<K> = Vec::new();
        for (slot, batch) in per_slot.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let keys: Vec<K> = batch.iter().map(|state| state.key.clone()).collect();
            let bundle = MigrationBundle { entries: batch, ..MigrationBundle::default() };
            let (ack, rx) = reply_slot();
            topo.senders[slot].send(Request::Install { bundle, ack }).map_err(|_| closed())?;
            rx.recv().map_err(|_| actor_gone())??;
            installed.extend(keys);
        }
        drop(topo);
        self.shared.keys.write().expect("key directory lock poisoned").extend(installed);
        Ok(())
    }
}

impl<K: Hash + Ord + Clone + Send + Sync + 'static> ShardBackend<K> for RuntimeHandle<K> {
    fn read(
        &mut self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, StoreError> {
        RuntimeHandle::read(self, key, constraint, now).map_err(store_err)
    }

    fn write(&mut self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, StoreError> {
        RuntimeHandle::write(self, key, value, now).map_err(store_err)
    }

    fn write_batch(&mut self, items: &[(K, f64)], now: TimeMs) -> Result<WriteOutcome, StoreError> {
        RuntimeHandle::write_batch(self, items, now).map_err(store_err)
    }

    fn aggregate(
        &mut self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<AggregateOutcome<K>, StoreError> {
        RuntimeHandle::aggregate(self, kind, keys, constraint, now).map_err(store_err)
    }

    fn metrics_snapshot(&mut self) -> Result<StoreMetrics<K>, StoreError> {
        RuntimeHandle::metrics(self).map(|m| m.merged().clone()).map_err(store_err)
    }

    fn insert(
        &mut self,
        _key: K,
        _value: f64,
        _spec: Option<PolicySpec>,
        _now: TimeMs,
    ) -> Result<(), StoreError> {
        Err(StoreError::Config(
            "a runtime deployment serves a fixed key population: register sources at build \
             time, or migrate them in via import_keys (elastic insertion is a follow-on)"
                .into(),
        ))
    }

    fn contains_key(&mut self, key: &K) -> Result<bool, StoreError> {
        Ok(RuntimeHandle::contains_key(self, key))
    }

    fn key_list(&mut self) -> Result<Vec<K>, StoreError> {
        Ok(self.sorted_keys())
    }

    fn export_keys(&mut self, keys: &[K]) -> Result<Vec<KeyState<K>>, StoreError> {
        self.export_key_states(keys)
    }

    fn import_keys(&mut self, states: Vec<KeyState<K>>) -> Result<(), StoreError> {
        self.import_key_states(states)
    }
}

#[cfg(test)]
mod tests {
    use apcache_core::Rng;
    use apcache_shard::{ShardBackend, ShardRouter, ShardedStore, ShardedStoreBuilder};
    use apcache_store::{InitialWidth, StoreBuilder};

    use crate::{Constraint, PushFilter, Runtime, RuntimeHandle};

    fn runtime_of(n_keys: u64) -> Runtime<u64> {
        let mut b = ShardedStoreBuilder::new()
            .shards(2)
            .rng(Rng::seed_from_u64(7))
            .initial_width(InitialWidth::Fixed(10.0));
        for k in 0..n_keys {
            b = b.source(k, 100.0 * k as f64);
        }
        Runtime::launch(b.build().unwrap()).unwrap()
    }

    #[test]
    fn runtime_handle_serves_verbs_as_a_backend() {
        let runtime = runtime_of(8);
        let mut backend: RuntimeHandle<u64> = runtime.handle();
        assert!(ShardBackend::contains_key(&mut backend, &3).unwrap());
        assert_eq!(ShardBackend::key_list(&mut backend).unwrap(), (0..8).collect::<Vec<_>>());
        let w = ShardBackend::write(&mut backend, &3, 600.0, 1_000).unwrap();
        assert!(w.escaped());
        let r = ShardBackend::read(&mut backend, &3, Constraint::Absolute(5.0), 1_000).unwrap();
        assert!(r.answer.contains(600.0));
        assert!(ShardBackend::insert(&mut backend, 99, 1.0, None, 0).is_err());
        let m = ShardBackend::metrics_snapshot(&mut backend).unwrap();
        assert_eq!(m.totals().writes, 1);
        runtime.shutdown().unwrap();
    }

    #[test]
    fn outer_ring_migrates_keys_between_runtime_and_local_store() {
        // A 1-shard outer ring backed by a live runtime grows a second,
        // plain in-process shard: resident keys migrate OUT of the
        // runtime (its directory shrinks, inner subscriptions on moved
        // keys end visibly) into the local store with protocol state
        // intact — the heterogeneous ring the backend trait exists for.
        let runtime = runtime_of(16);
        let h = runtime.handle();
        let probe = h.clone(); // inner-view observer, outlives the boxed handle
        let queue = h.completions().clone(); // shares h's queue (sub lives there)
        let (sub, snapshot) = h.subscribe(&4, PushFilter::Always, 0).unwrap();
        assert!(snapshot.contains(400.0));
        let router = ShardRouter::new(1, 64).unwrap();
        let mut outer: ShardedStore<u64, Box<dyn ShardBackend<u64> + Send>> =
            ShardedStore::from_routed_parts(
                router,
                vec![(0, Box::new(h) as Box<dyn ShardBackend<u64> + Send>)],
            )
            .unwrap();
        let local = StoreBuilder::new().initial_width(InitialWidth::Fixed(10.0)).build().unwrap();
        let new_id =
            outer.add_shard_backend(Box::new(local) as Box<dyn ShardBackend<u64> + Send>).unwrap();
        // Some keys moved out of the runtime; its inner directory shrank.
        let moved: Vec<u64> = (0..16u64).filter(|k| outer.router().route(k) == new_id).collect();
        assert!(!moved.is_empty(), "growth must remap some keys out of the runtime");
        assert_eq!(probe.len(), 16 - moved.len());
        // Every key — migrated or resident — still answers through the
        // outer ring with its seeded value and width.
        for k in 0..16u64 {
            let r = outer.read(&k, Constraint::Absolute(1e9), 1_000).unwrap();
            assert!(r.answer.contains(100.0 * k as f64), "key {k}");
            assert!((r.answer.width() - 10.0).abs() < 1e-12, "key {k}");
        }
        // The watched key's fate is visible either way: if it migrated
        // out of the runtime its subscription ended (never silently
        // stale); if it stayed, the stream is still live and quiet.
        if moved.contains(&4) {
            match queue.wait_ticket(sub).unwrap() {
                crate::Outcome::SubscriptionEnded => {}
                other => panic!("unexpected {other:?}"),
            }
        } else {
            assert_eq!(queue.ready_len(), 0);
        }
    }
}
