//! Runtime error type.

use std::fmt;

use apcache_store::StoreError;

use crate::completion::Ticket;

/// Errors raised by the concurrent runtime, on top of the store's own.
#[derive(Debug)]
pub enum RuntimeError {
    /// The underlying store rejected the request (unknown key, invalid
    /// constraint, protocol misuse, …) — the same errors the synchronous
    /// façades raise.
    Store(StoreError),
    /// The runtime has been shut down: the shard's mailbox no longer
    /// accepts requests.
    Closed,
    /// The owning shard's actor exited without answering (it panicked or
    /// was torn down mid-request).
    ActorGone,
    /// An actor thread could not be spawned at launch.
    Spawn(String),
    /// A completion was requested for a ticket this queue never issued —
    /// or one whose completion was already harvested (tickets settle
    /// exactly once).
    UnknownTicket(Ticket),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Store(e) => write!(f, "store error: {e}"),
            RuntimeError::Closed => write!(f, "runtime is shut down (mailbox closed)"),
            RuntimeError::ActorGone => write!(f, "shard actor exited without replying"),
            RuntimeError::Spawn(m) => write!(f, "failed to spawn shard actor: {m}"),
            RuntimeError::UnknownTicket(t) => {
                write!(f, "{t} was never issued by this queue or was already harvested")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for RuntimeError {
    fn from(e: StoreError) -> Self {
        RuntimeError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_sources() {
        let e: RuntimeError = StoreError::UnknownKey.into();
        assert!(e.to_string().contains("store error"));
        assert!(e.source().is_some());
        assert!(RuntimeError::Closed.to_string().contains("shut down"));
        assert!(RuntimeError::ActorGone.source().is_none());
    }
}
