//! The runtime's observability spine: one [`RuntimeTelemetry`] per
//! deployment, shared by every handle, actor, and (through
//! [`RuntimeHandle::telemetry`](crate::RuntimeHandle::telemetry)) the
//! wire layer above.
//!
//! The latency instrumentation lives at the completion queue, not in the
//! shard actors: a ticket's clock starts when `submit_*` registers the
//! op and stops when the op settles, so the histogram measures exactly
//! what a client experiences — mailbox admission, actor service, and
//! completion delivery. The store's per-read hot path is untouched (its
//! own counters are the [`StoreMetrics`](apcache_store::StoreMetrics)
//! the exposition renders directly), which is what keeps the
//! `telemetry_overhead` bench honest.

use std::time::Duration;

use apcache_telemetry::{
    Counter, Histogram, Registry, TraceKind, TraceRing, LATENCY_BUCKETS_SECONDS,
};

/// The verb labels of the per-verb latency histogram family, in
/// registration order. `"lease"` covers grant and release; `"tick"`
/// covers both `advance_time` and `push_stats` (same fan-out, same leg
/// shape).
pub const VERBS: [&str; 9] = [
    "read",
    "write",
    "write_batch",
    "aggregate",
    "metrics",
    "subscribe",
    "unsubscribe",
    "lease",
    "tick",
];

/// Default trace-ring capacity: deep enough to hold the full lifecycle
/// (submit + dispatch + completion) of a few hundred requests.
pub const DEFAULT_TRACE_CAPACITY: usize = 1_024;

/// Per-runtime metrics registry plus trace ring. Created at
/// [`Runtime::launch`](crate::Runtime::launch) and shared by reference
/// through every handle.
pub struct RuntimeTelemetry {
    registry: Registry,
    trace: TraceRing,
    /// Pre-registered per-verb latency histograms so the settle path
    /// never takes the registry's registration lock.
    verb_latency: Vec<(&'static str, Histogram)>,
    pushes: Counter,
    lease_expirations: Counter,
}

impl Default for RuntimeTelemetry {
    fn default() -> Self {
        RuntimeTelemetry::new()
    }
}

impl RuntimeTelemetry {
    /// A fresh registry and trace ring with the default trace capacity.
    pub fn new() -> Self {
        RuntimeTelemetry::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A fresh registry with an explicit trace-ring capacity.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        let registry = Registry::new();
        let verb_latency = VERBS
            .iter()
            .map(|verb| {
                let h = registry.histogram(
                    "apcache_verb_latency_seconds",
                    "Submit-to-completion latency of runtime verbs, in seconds.",
                    &LATENCY_BUCKETS_SECONDS,
                    &[("verb", verb)],
                );
                (*verb, h)
            })
            .collect();
        let pushes = registry.counter(
            "apcache_pushes_total",
            "Push events streamed to live subscription tickets.",
            &[],
        );
        let lease_expirations = registry.counter(
            "apcache_lease_expirations_total",
            "TTL leases that lapsed and widened their interval to the fallback.",
            &[],
        );
        RuntimeTelemetry {
            registry,
            trace: TraceRing::new(capacity),
            verb_latency,
            pushes,
            lease_expirations,
        }
    }

    /// The metric registry. Layers above the runtime (the wire server,
    /// benches) register their own series here so one exposition covers
    /// the whole serving stack.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The request-lifecycle trace ring.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    pub(crate) fn observe_verb(&self, verb: &'static str, elapsed: Duration) {
        if let Some((_, h)) = self.verb_latency.iter().find(|(v, _)| *v == verb) {
            h.observe(elapsed.as_secs_f64());
        }
    }

    pub(crate) fn record(
        &self,
        kind: TraceKind,
        ticket: u64,
        verb: &'static str,
        shard: Option<u32>,
    ) {
        self.trace.record(kind, ticket, verb, shard);
    }

    pub(crate) fn push_delivered(&self) {
        self.pushes.inc();
    }

    pub(crate) fn leases_expired(&self, n: usize) {
        if n > 0 {
            self.lease_expirations.add(n as u64);
        }
    }
}
