//! The actor-per-shard runtime: launch, handle, actors, shutdown.

use std::collections::HashSet;
use std::hash::Hash;
use std::sync::Arc;
use std::thread;

use apcache_core::TimeMs;
use apcache_queries::AggregateKind;
use apcache_shard::plan::{empty_aggregate, AggregatePlan};
use apcache_shard::{ShardRouter, ShardedStore};
use apcache_store::{
    AggregateOutcome, Constraint, PrecisionStore, ReadResult, StoreError, StoreMetrics,
    WriteOutcome,
};

use crate::completion::{Completion, CompletionQueue, LegReply, Outcome, Ticket};
use crate::error::RuntimeError;
use crate::mailbox::{mailbox, MailboxSender};
use crate::oneshot::reply_slot;
use crate::request::Request;

/// Tuning for [`Runtime::launch_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Mailbox capacity per shard actor: how many requests may queue
    /// before senders park (the backpressure bound). Values below 1 are
    /// treated as 1.
    pub mailbox_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { mailbox_capacity: DEFAULT_MAILBOX_CAPACITY }
    }
}

/// Default per-shard mailbox capacity: deep enough to keep an actor busy
/// under bursts, shallow enough that a stalled shard pushes back on its
/// producers within microseconds of work.
pub const DEFAULT_MAILBOX_CAPACITY: usize = 1_024;

/// What the handle shares: the ring, one mailbox sender per shard, and
/// the immutable key directory (the runtime serves a fixed key population
/// registered at build time; elastic key insertion is a follow-on).
struct Shared<K> {
    router: ShardRouter,
    senders: Vec<MailboxSender<Request<K>>>,
    keys: HashSet<K>,
}

/// The owner of the shard actors: spawns them on launch, joins them on
/// shutdown. Cloneable [`RuntimeHandle`]s (from
/// [`handle`](Runtime::handle)) do the actual serving from any thread.
pub struct Runtime<K> {
    shared: Arc<Shared<K>>,
    threads: Vec<thread::JoinHandle<PrecisionStore<K>>>,
}

impl<K: Hash + Ord + Clone + Send + 'static> Runtime<K> {
    /// Launch one actor thread per shard of `store`, with default tuning.
    pub fn launch(store: ShardedStore<K>) -> Result<Self, RuntimeError> {
        Runtime::launch_with(store, RuntimeConfig::default())
    }

    /// Launch one actor thread per shard of `store`. Each actor takes
    /// ownership of its `PrecisionStore` — the store stays single-threaded
    /// and lock-free; all concurrency lives in the mailboxes.
    pub fn launch_with(store: ShardedStore<K>, cfg: RuntimeConfig) -> Result<Self, RuntimeError> {
        let keys: HashSet<K> = store.keys().cloned().collect();
        let (router, shards) = store.into_parts();
        let mut senders: Vec<MailboxSender<Request<K>>> = Vec::with_capacity(shards.len());
        let mut threads: Vec<thread::JoinHandle<PrecisionStore<K>>> =
            Vec::with_capacity(shards.len());
        for (i, mut shard) in shards.into_iter().enumerate() {
            let (tx, rx) = mailbox::<Request<K>>(cfg.mailbox_capacity);
            let spawned =
                thread::Builder::new().name(format!("apcache-shard-{i}")).spawn(move || {
                    while let Some(request) = rx.recv() {
                        serve(&mut shard, request);
                    }
                    shard
                });
            let thread = match spawned {
                Ok(thread) => thread,
                Err(e) => {
                    // Unwind a partial launch: closing the mailboxes ends
                    // the already-running actors (recv returns None), so
                    // no thread is left parked forever.
                    for sender in &senders {
                        sender.close();
                    }
                    for thread in threads {
                        let _ = thread.join();
                    }
                    return Err(RuntimeError::Spawn(e.to_string()));
                }
            };
            senders.push(tx);
            threads.push(thread);
        }
        Ok(Runtime { shared: Arc::new(Shared { router, senders, keys }), threads })
    }

    /// A serving handle with its own fresh completion queue (share a
    /// handle's *clone* per client thread; each clone is an independent
    /// logical client).
    pub fn handle(&self) -> RuntimeHandle<K> {
        let queue = CompletionQueue::new(self.shared.senders.clone());
        RuntimeHandle { shared: Arc::clone(&self.shared), queue }
    }

    /// Number of shard actors.
    pub fn shard_count(&self) -> usize {
        self.shared.senders.len()
    }

    /// Drain and stop the actors: every request enqueued before this call
    /// is fully processed (acknowledged per shard), further sends fail
    /// with [`RuntimeError::Closed`], and the actor threads are joined.
    pub fn shutdown(mut self) -> Result<(), RuntimeError> {
        self.finish().map(|_| ())
    }

    /// Shut down (draining, as [`shutdown`](Runtime::shutdown)) and
    /// reassemble the synchronous [`ShardedStore`] from the actors'
    /// stores — the runtime's exact final state, e.g. for conformance
    /// checks or for relaunching with a different topology.
    pub fn into_store(mut self) -> Result<ShardedStore<K>, RuntimeError> {
        let shards = self.finish()?;
        ShardedStore::from_parts(self.shared.router.clone(), shards).map_err(RuntimeError::Store)
    }

    /// Common shutdown path: mark the end of each mailbox, wait for the
    /// drain acknowledgements, join the actors.
    fn finish(&mut self) -> Result<Vec<PrecisionStore<K>>, RuntimeError> {
        let mut acks = Vec::with_capacity(self.shared.senders.len());
        for sender in &self.shared.senders {
            let (tx, rx) = reply_slot();
            // A closed mailbox means this shard already finished.
            if sender.send(Request::Shutdown { ack: tx }).is_ok() {
                acks.push(rx);
            }
            sender.close();
        }
        for ack in acks {
            // ReplyDropped here means the actor died before draining; the
            // join below surfaces it.
            let _ = ack.recv();
        }
        let mut shards = Vec::with_capacity(self.threads.len());
        for thread in self.threads.drain(..) {
            shards.push(thread.join().map_err(|_| RuntimeError::ActorGone)?);
        }
        Ok(shards)
    }
}

impl<K> Drop for Runtime<K> {
    fn drop(&mut self) {
        // Explicit shutdown()/into_store() already drained `threads`; an
        // abandoned runtime still closes its mailboxes (draining them) and
        // joins, so actor threads never outlive the owner.
        for sender in &self.shared.senders {
            sender.close();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// One shard actor's request dispatch (runs on the actor thread; the
/// actor never blocks on anything but its own mailbox — leg replies are
/// non-blocking pushes into the submitting handle's completion queue —
/// so actors cannot deadlock each other).
fn serve<K: Hash + Ord + Clone>(store: &mut PrecisionStore<K>, request: Request<K>) {
    match request {
        Request::Read { key, constraint, now, reply } => {
            reply.send(LegReply::Read(store.read(&key, constraint, now)));
        }
        Request::Write { key, value, now, reply } => {
            let outcome = store.write(&key, value, now);
            if let Some(reply) = reply {
                reply.send(LegReply::Write(outcome));
            }
        }
        Request::WriteBatch { items, now, reply } => {
            reply.send(LegReply::Write(store.write_batch(&items, now)));
        }
        Request::Aggregate { kind, keys, constraint, now, reply } => {
            reply.send(LegReply::Aggregate(store.aggregate(kind, &keys, constraint, now)));
        }
        Request::Metrics { reply } => {
            reply.send(LegReply::Metrics(store.metrics().clone()));
        }
        Request::Shutdown { ack } => {
            ack.send(());
        }
    }
}

/// Deployment metrics gathered from the actors: per-shard snapshots plus
/// their merged rollup (owned clones — unlike
/// [`ShardedMetrics`](apcache_shard::ShardedMetrics), the live counters
/// stay on the actor threads).
#[derive(Debug, Clone)]
pub struct RuntimeMetrics<K> {
    per_shard: Vec<StoreMetrics<K>>,
    merged: StoreMetrics<K>,
}

impl<K: Ord + Clone> RuntimeMetrics<K> {
    /// Assemble from per-shard snapshots in shard-id order, computing the
    /// merged rollup.
    pub(crate) fn from_shards(per_shard: Vec<StoreMetrics<K>>) -> Self {
        let mut merged = StoreMetrics::new();
        for m in &per_shard {
            merged.merge(m);
        }
        RuntimeMetrics { per_shard, merged }
    }

    /// The merged rollup: every counter summed across shards.
    pub fn merged(&self) -> &StoreMetrics<K> {
        &self.merged
    }

    /// Per-shard snapshots, indexed by shard id.
    pub fn per_shard(&self) -> &[StoreMetrics<K>] {
        &self.per_shard
    }

    /// Metrics of one shard.
    pub fn shard(&self, shard: usize) -> Option<&StoreMetrics<K>> {
        self.per_shard.get(shard)
    }
}

/// A cheaply-cloneable client of the runtime.
///
/// Every verb exists in two forms:
///
/// * **`submit_*`** — non-blocking: route the request to the owning
///   shard's mailbox (parking only on mailbox admission, the
///   backpressure toll) and return a [`Ticket`]. Outcomes are harvested
///   out of order from the handle's [`CompletionQueue`] via
///   [`poll`](RuntimeHandle::poll) / [`wait`](RuntimeHandle::wait) /
///   [`wait_ticket`](RuntimeHandle::wait_ticket) — so one thread can
///   multiplex arbitrarily many logical requests.
/// * **blocking** — `submit` + `wait_ticket`, nothing more; the
///   convenience form for call-reply code.
///
/// Cloning a handle creates an independent logical client with its own
/// completion queue and ticket sequence (tickets are queue-scoped).
pub struct RuntimeHandle<K> {
    shared: Arc<Shared<K>>,
    queue: CompletionQueue<K>,
}

impl<K: Hash + Ord + Clone + Send + 'static> Clone for RuntimeHandle<K> {
    fn clone(&self) -> Self {
        RuntimeHandle {
            shared: Arc::clone(&self.shared),
            queue: CompletionQueue::new(self.shared.senders.clone()),
        }
    }
}

impl<K: Hash + Ord + Clone + Send + 'static> RuntimeHandle<K> {
    /// Number of shard actors.
    pub fn shard_count(&self) -> usize {
        self.shared.senders.len()
    }

    /// The shard id that owns `key`.
    pub fn shard_of(&self, key: &K) -> usize {
        self.shared.router.route(key) as usize
    }

    /// Whether `key` was registered when the runtime launched.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shared.keys.contains(key)
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.shared.keys.len()
    }

    /// Whether the runtime serves no sources.
    pub fn is_empty(&self) -> bool {
        self.shared.keys.is_empty()
    }

    /// This handle's completion queue — clone it to hand the harvesting
    /// side to a dedicated reactor thread while others submit.
    pub fn completions(&self) -> &CompletionQueue<K> {
        &self.queue
    }

    /// Harvest the next finished completion without blocking (see
    /// [`CompletionQueue::poll`]).
    pub fn poll(&self) -> Option<Completion<K>> {
        self.queue.poll()
    }

    /// Block for the next completion, any ticket; `None` when nothing is
    /// outstanding (see [`CompletionQueue::wait`]).
    pub fn wait(&self) -> Option<Completion<K>> {
        self.queue.wait()
    }

    /// Block for one specific ticket's outcome (see
    /// [`CompletionQueue::wait_ticket`]).
    pub fn wait_ticket(&self, ticket: Ticket) -> Result<Outcome<K>, RuntimeError> {
        self.queue.wait_ticket(ticket)
    }

    /// Resolve the owning shard, rejecting unregistered keys before any
    /// message is sent (mirrors `ShardedStore`, which never charges a
    /// shard for an unroutable request).
    fn owning_shard(&self, key: &K) -> Result<usize, RuntimeError> {
        if !self.shared.keys.contains(key) {
            return Err(RuntimeError::Store(StoreError::UnknownKey));
        }
        Ok(self.shard_of(key))
    }

    // -----------------------------------------------------------------
    // Submission surface: every verb as a ticket.
    // -----------------------------------------------------------------

    /// Submit a point read; harvest a [`Outcome::Read`].
    pub fn submit_read(
        &self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        let shard = self.owning_shard(key)?;
        let key = key.clone();
        self.queue.submit_direct(shard, move |reply| Request::Read { key, constraint, now, reply })
    }

    /// Submit a write; harvest a [`Outcome::Write`].
    pub fn submit_write(&self, key: &K, value: f64, now: TimeMs) -> Result<Ticket, RuntimeError> {
        let shard = self.owning_shard(key)?;
        let key = key.clone();
        self.queue.submit_direct(shard, move |reply| Request::Write {
            key,
            value,
            now,
            reply: Some(reply),
        })
    }

    /// Submit a batch of writes (validated up front, one scattered leg
    /// per owning shard, applied in slice order within each shard);
    /// harvest a [`Outcome::Write`] with the summed refresh count.
    pub fn submit_write_batch(
        &self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        let mut per_shard: Vec<Vec<(K, f64)>> = vec![Vec::new(); self.shard_count()];
        for (key, value) in items {
            if !value.is_finite() {
                return Err(RuntimeError::Store(
                    apcache_core::error::ProtocolError::NonFiniteValue(*value).into(),
                ));
            }
            let shard = self.owning_shard(key)?;
            per_shard[shard].push((key.clone(), *value));
        }
        let parts: Vec<(usize, Vec<(K, f64)>)> =
            per_shard.into_iter().enumerate().filter(|(_, items)| !items.is_empty()).collect();
        if parts.is_empty() {
            // An empty batch refreshes nothing; settle it locally.
            return Ok(self
                .queue
                .complete_immediately(Outcome::Write(WriteOutcome { refreshes: 0 })));
        }
        self.queue.submit_batch(parts, now)
    }

    /// Submit a deployment-wide bounded aggregate; harvest a
    /// [`Outcome::Aggregate`].
    ///
    /// Single-shard key sets delegate the whole constraint to the owning
    /// actor untouched (bit-identical to the unsharded store); multi-
    /// shard sets park an [`AggregatePlan`] in the completion queue, so
    /// the Relative probe → escalate rounds run as submitted tickets that
    /// interleave with this handle's other traffic instead of holding the
    /// client thread.
    pub fn submit_aggregate(
        &self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        constraint.validate().map_err(RuntimeError::Store)?;
        if keys.is_empty() {
            let outcome = empty_aggregate(kind).map_err(RuntimeError::Store)?;
            return Ok(self.queue.complete_immediately(Outcome::Aggregate(outcome)));
        }
        let parts = self.partition(keys)?;
        if let [(shard, shard_keys)] = parts.as_slice() {
            let (shard, keys) = (*shard, shard_keys.clone());
            return self.queue.submit_direct(shard, move |reply| Request::Aggregate {
                kind,
                keys,
                constraint,
                now,
                reply,
            });
        }
        let (plan, round) =
            AggregatePlan::start(kind, constraint, keys.len()).map_err(RuntimeError::Store)?;
        self.queue.submit_aggregate(plan, round, parts, now)
    }

    /// Submit a deployment-metrics gather (one leg per shard); harvest a
    /// [`Outcome::Metrics`].
    pub fn submit_metrics(&self) -> Result<Ticket, RuntimeError> {
        self.queue.submit_metrics()
    }

    // -----------------------------------------------------------------
    // Blocking surface: submit + wait_ticket, nothing else.
    // -----------------------------------------------------------------

    /// Read `key` to the given precision on its owning shard (blocking:
    /// [`submit_read`](RuntimeHandle::submit_read) +
    /// [`wait_ticket`](RuntimeHandle::wait_ticket)).
    pub fn read(
        &self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, RuntimeError> {
        match self.wait_ticket(self.submit_read(key, constraint, now)?)? {
            Outcome::Read(result) => Ok(result),
            _ => unreachable!("read tickets settle as read outcomes"),
        }
    }

    /// Push a new exact value for `key` and wait for the outcome.
    pub fn write(&self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, RuntimeError> {
        match self.wait_ticket(self.submit_write(key, value, now)?)? {
            Outcome::Write(outcome) => Ok(outcome),
            _ => unreachable!("write tickets settle as write outcomes"),
        }
    }

    /// Fire-and-forget write: validated and enqueued (parking while the
    /// shard's mailbox is full — that is the backpressure), then the
    /// caller moves on without a ticket. The write is applied in mailbox
    /// order; a draining shutdown still processes it.
    pub fn write_nowait(&self, key: &K, value: f64, now: TimeMs) -> Result<(), RuntimeError> {
        if !value.is_finite() {
            return Err(RuntimeError::Store(
                apcache_core::error::ProtocolError::NonFiniteValue(value).into(),
            ));
        }
        let shard = self.owning_shard(key)?;
        self.shared.senders[shard]
            .send(Request::Write { key: key.clone(), value, now, reply: None })
            .map_err(|_| RuntimeError::Closed)
    }

    /// Apply a batch of writes with one routing pass (blocking form of
    /// [`submit_write_batch`](RuntimeHandle::submit_write_batch)).
    ///
    /// Unlike [`ShardedStore::write_batch`], atomicity covers only the
    /// validation phase: if the runtime is shut down mid-scatter, legs
    /// already accepted by their mailboxes are still applied (the drain
    /// guarantee) while the caller sees [`RuntimeError::Closed`].
    pub fn write_batch(
        &self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<WriteOutcome, RuntimeError> {
        match self.wait_ticket(self.submit_write_batch(items, now)?)? {
            Outcome::Write(outcome) => Ok(outcome),
            _ => unreachable!("batch tickets settle as write outcomes"),
        }
    }

    /// Partition `keys` by owning shard (slice order preserved within each
    /// shard), validating every key up front.
    fn partition(&self, keys: &[K]) -> Result<Vec<(usize, Vec<K>)>, RuntimeError> {
        let mut per_shard: Vec<Vec<K>> = vec![Vec::new(); self.shard_count()];
        for key in keys {
            let shard = self.owning_shard(key)?;
            per_shard[shard].push(key.clone());
        }
        Ok(per_shard.into_iter().enumerate().filter(|(_, keys)| !keys.is_empty()).collect())
    }

    /// Bounded aggregate over `keys` (blocking form of
    /// [`submit_aggregate`](RuntimeHandle::submit_aggregate)): the
    /// constraint dispatch — including the Relative probe →
    /// local-certificates → derived-budget refinement — is the shared
    /// [`AggregatePlan`], literally the same state machine the
    /// synchronous façade folds with, so the two cannot drift.
    pub fn aggregate(
        &self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<AggregateOutcome<K>, RuntimeError> {
        match self.wait_ticket(self.submit_aggregate(kind, keys, constraint, now)?)? {
            Outcome::Aggregate(outcome) => Ok(outcome),
            _ => unreachable!("aggregate tickets settle as aggregate outcomes"),
        }
    }

    /// Snapshot deployment metrics (blocking form of
    /// [`submit_metrics`](RuntimeHandle::submit_metrics)).
    pub fn metrics(&self) -> Result<RuntimeMetrics<K>, RuntimeError> {
        match self.wait_ticket(self.submit_metrics()?)? {
            Outcome::Metrics(metrics) => Ok(metrics),
            _ => unreachable!("metrics tickets settle as metrics outcomes"),
        }
    }
}
