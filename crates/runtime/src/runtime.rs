//! The actor-per-shard runtime: launch, handle, actors, shutdown.

use std::collections::HashSet;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use apcache_core::{Interval, TimeMs};
use apcache_push::{LeaseConfig, PushFilter, PushReport};
use apcache_queries::AggregateKind;
use apcache_shard::plan::empty_aggregate;
use apcache_shard::{ShardRouter, ShardedStore};
use apcache_store::{
    AggregateOutcome, Constraint, PrecisionStore, ReadResult, StoreError, StoreMetrics,
    WriteOutcome,
};

use apcache_telemetry::{Exposition, TraceEvent};

use crate::actor::ShardActor;
use crate::completion::{Completion, CompletionQueue, Outcome, Ticket};
use crate::error::RuntimeError;
use crate::mailbox::{mailbox, MailboxSender};
use crate::oneshot::reply_slot;
use crate::request::Request;
use crate::telemetry::RuntimeTelemetry;

/// Tuning for [`Runtime::launch_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Mailbox capacity per shard actor: how many requests may queue
    /// before senders park (the backpressure bound). Values below 1 are
    /// treated as 1.
    pub mailbox_capacity: usize,
    /// Tick width of each shard's TTL-lease timer wheel, in logical
    /// milliseconds: lease lapses are detected on this grid.
    pub lease_resolution_ms: u64,
    /// When `Some`, the runtime spawns a wall-clock tick thread that
    /// sends a fire-and-forget [`Request::Tick`] to every shard at this
    /// interval, so leases lapse even on idle shards. `None` (the
    /// default) leaves the push-side clock entirely to served traffic
    /// and explicit [`advance_time`](RuntimeHandle::advance_time) calls —
    /// the deterministic mode the conformance suites rely on.
    pub tick_interval: Option<Duration>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            mailbox_capacity: DEFAULT_MAILBOX_CAPACITY,
            lease_resolution_ms: DEFAULT_LEASE_RESOLUTION_MS,
            tick_interval: None,
        }
    }
}

/// Default per-shard mailbox capacity: deep enough to keep an actor busy
/// under bursts, shallow enough that a stalled shard pushes back on its
/// producers within microseconds of work.
pub const DEFAULT_MAILBOX_CAPACITY: usize = 1_024;

/// Default lease timer-wheel resolution: fine enough that a lapsed lease
/// is noticed within a frame's worth of logical time, coarse enough that
/// the wheel's cascades stay cheap.
pub const DEFAULT_LEASE_RESOLUTION_MS: u64 = 16;

/// The deployment shape at one instant: the ring, the ring id of each
/// mailbox slot, and the mailbox senders themselves.
///
/// Lives behind the [`Shared`] `RwLock`: every submission routes and
/// enqueues under a *read* guard, while elastic resharding
/// ([`Runtime::add_shard`] / [`Runtime::remove_shard`]) holds the *write*
/// half across export → install → ring flip. Requests that race a
/// migration therefore block on the guard and route against the new ring
/// when it lifts — block-or-forward, never a torn read. The actors
/// themselves never touch this lock, so a parked submitter (full
/// mailbox, held read guard) cannot deadlock the drain.
pub(crate) struct Topology<K> {
    pub(crate) router: ShardRouter,
    /// `ids[slot]` is the ring id served by `senders[slot]`. Dense at
    /// launch; arbitrary after elastic add/remove (ids never recycle).
    pub(crate) ids: Vec<u32>,
    pub(crate) senders: Vec<MailboxSender<Request<K>>>,
}

impl<K: Hash + Ord + Clone> Topology<K> {
    /// The mailbox slot serving ring id `id`, if it is on the ring.
    pub(crate) fn slot_of_id(&self, id: u32) -> Option<usize> {
        self.ids.iter().position(|&x| x == id)
    }

    /// The mailbox slot owning `key` under the current ring.
    pub(crate) fn slot_for_key(&self, key: &K) -> usize {
        self.slot_of_id(self.router.route(key)).expect("routed id is on the ring")
    }
}

/// What the handles share: the elastic topology and the key directory
/// (mutated only by migration through the handle-level import/export
/// surface; the runtime itself serves a fixed population registered at
/// build time — elastic key *insertion* is a follow-on).
pub(crate) struct Shared<K> {
    pub(crate) topology: RwLock<Topology<K>>,
    pub(crate) keys: RwLock<HashSet<K>>,
    /// The deployment's metrics registry + trace ring, shared by every
    /// handle (and, through them, the wire layer above).
    pub(crate) telemetry: Arc<RuntimeTelemetry>,
}

/// The owner of the shard actors: spawns them on launch, joins them on
/// shutdown. Cloneable [`RuntimeHandle`]s (from
/// [`handle`](Runtime::handle)) do the actual serving from any thread.
pub struct Runtime<K> {
    shared: Arc<Shared<K>>,
    /// `(ring id, join handle)` per live actor, so elastic removal can
    /// join exactly the retired shard's thread.
    threads: Vec<(u32, thread::JoinHandle<PrecisionStore<K>>)>,
    ticker: Option<TickThread>,
    cfg: RuntimeConfig,
}

/// The optional wall-clock tick thread (see
/// [`RuntimeConfig::tick_interval`]).
struct TickThread {
    stop: Arc<AtomicBool>,
    thread: thread::JoinHandle<()>,
}

impl<K: Hash + Ord + Clone + Send + Sync + 'static> Runtime<K> {
    /// Launch one actor thread per shard of `store`, with default tuning.
    pub fn launch(store: ShardedStore<K>) -> Result<Self, RuntimeError> {
        Runtime::launch_with(store, RuntimeConfig::default())
    }

    /// Launch one actor thread per shard of `store`. Each actor takes
    /// ownership of its `PrecisionStore` — the store stays single-threaded
    /// and lock-free; all concurrency lives in the mailboxes.
    pub fn launch_with(store: ShardedStore<K>, cfg: RuntimeConfig) -> Result<Self, RuntimeError> {
        let keys: HashSet<K> = store.keys().cloned().collect();
        let (router, shards) = store.into_parts();
        let mut senders: Vec<MailboxSender<Request<K>>> = Vec::with_capacity(shards.len());
        let mut threads: Vec<(u32, thread::JoinHandle<PrecisionStore<K>>)> =
            Vec::with_capacity(shards.len());
        for (i, shard) in shards.into_iter().enumerate() {
            let (tx, rx) = mailbox::<Request<K>>(cfg.mailbox_capacity);
            let lease_resolution_ms = cfg.lease_resolution_ms;
            let spawned =
                thread::Builder::new().name(format!("apcache-shard-{i}")).spawn(move || {
                    let mut actor = ShardActor::new(shard, lease_resolution_ms);
                    while let Some(request) = rx.recv() {
                        actor.serve(request);
                    }
                    actor.into_store()
                });
            let thread = match spawned {
                Ok(thread) => thread,
                Err(e) => {
                    // Unwind a partial launch: closing the mailboxes ends
                    // the already-running actors (recv returns None), so
                    // no thread is left parked forever.
                    for sender in &senders {
                        sender.close();
                    }
                    for (_, thread) in threads {
                        let _ = thread.join();
                    }
                    return Err(RuntimeError::Spawn(e.to_string()));
                }
            };
            senders.push(tx);
            threads.push((i as u32, thread));
        }
        let ids: Vec<u32> = (0..senders.len() as u32).collect();
        let shared = Arc::new(Shared {
            topology: RwLock::new(Topology { router, ids, senders }),
            keys: RwLock::new(keys),
            telemetry: Arc::new(RuntimeTelemetry::new()),
        });
        let ticker = match cfg.tick_interval {
            None => None,
            Some(interval) => match spawn_ticker(&shared, interval) {
                Ok(ticker) => Some(ticker),
                Err(e) => {
                    for sender in &shared.topology.read().expect("topology lock poisoned").senders {
                        sender.close();
                    }
                    for (_, thread) in threads {
                        let _ = thread.join();
                    }
                    return Err(e);
                }
            },
        };
        Ok(Runtime { shared, threads, ticker, cfg })
    }

    /// A serving handle with its own fresh completion queue (share a
    /// handle's *clone* per client thread; each clone is an independent
    /// logical client).
    pub fn handle(&self) -> RuntimeHandle<K> {
        let queue = CompletionQueue::new(Arc::clone(&self.shared));
        RuntimeHandle { shared: Arc::clone(&self.shared), queue }
    }

    /// Number of shard actors.
    pub fn shard_count(&self) -> usize {
        self.shared.topology.read().expect("topology lock poisoned").senders.len()
    }

    /// The ring ids of the live shards, in mailbox-slot order.
    pub fn shard_ids(&self) -> Vec<u32> {
        self.shared.topology.read().expect("topology lock poisoned").ids.clone()
    }

    /// Grow the deployment by one shard actor serving `store` (an empty
    /// store built with the same tuning as the fleet), **live-migrating**
    /// every resident key the new ring reassigns to it.
    ///
    /// The migration runs under the topology write lock: submissions
    /// block, each source shard's mailbox drains up to the export point
    /// (mailbox FIFO is the barrier), and the detached state — values,
    /// adaptive widths, vote histories, cached intervals, per-key
    /// metrics, TTL leases with absolute deadlines, and live subscription
    /// watches with their dedup bits — is installed on the new actor
    /// before the ring flips. A remapped key resumes the paper's protocol
    /// on its new shard exactly where it left off, and its subscribers'
    /// streams continue uninterrupted. Returns the new shard's ring id.
    pub fn add_shard(&mut self, store: PrecisionStore<K>) -> Result<u32, RuntimeError> {
        if !store.is_empty() {
            return Err(RuntimeError::Store(StoreError::Config(
                "add_shard requires an empty store: resident keys would not be on the ring".into(),
            )));
        }
        let mut topo = self.shared.topology.write().expect("topology lock poisoned");
        let mut router = topo.router.clone();
        let new_id = router.add_shard();
        let (tx, rx) = mailbox::<Request<K>>(self.cfg.mailbox_capacity);
        let lease_resolution_ms = self.cfg.lease_resolution_ms;
        let thread = thread::Builder::new()
            .name(format!("apcache-shard-{new_id}"))
            .spawn(move || {
                let mut actor = ShardActor::new(store, lease_resolution_ms);
                while let Some(request) = rx.recv() {
                    actor.serve(request);
                }
                actor.into_store()
            })
            .map_err(|e| RuntimeError::Spawn(e.to_string()))?;
        // Which resident keys does the new ring reassign? Group them by
        // the slot that currently owns them, in sorted order so migration
        // batches are deterministic.
        let keys = self.shared.keys.read().expect("key directory lock poisoned");
        let mut moving: Vec<&K> = keys.iter().filter(|k| router.route(k) == new_id).collect();
        moving.sort();
        let mut per_slot: Vec<Vec<K>> = vec![Vec::new(); topo.senders.len()];
        for key in moving {
            per_slot[topo.slot_for_key(key)].push(key.clone());
        }
        drop(keys);
        for (slot, batch) in per_slot.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (reply, bundle) = reply_slot();
            topo.senders[slot]
                .send(Request::Export { keys: batch, reply })
                .map_err(|_| RuntimeError::Closed)?;
            let bundle =
                bundle.recv().map_err(|_| RuntimeError::ActorGone)?.map_err(RuntimeError::Store)?;
            let (ack, done) = reply_slot();
            tx.send(Request::Install { bundle, ack }).map_err(|_| RuntimeError::Closed)?;
            done.recv().map_err(|_| RuntimeError::ActorGone)?.map_err(RuntimeError::Store)?;
        }
        topo.router = router;
        topo.ids.push(new_id);
        topo.senders.push(tx);
        drop(topo);
        self.threads.push((new_id, thread));
        Ok(new_id)
    }

    /// Shrink the deployment by retiring the shard with ring id `id`:
    /// under the topology write lock, its mailbox drains (FIFO barrier),
    /// every resident key is live-migrated — full protocol plus push-side
    /// state, as in [`add_shard`](Runtime::add_shard) — to its new owner
    /// under the post-removal ring, the ring flips, and the retired actor
    /// is joined. Returns its (drained, empty) store. Errors if `id` is
    /// not on the ring or is the last shard.
    pub fn remove_shard(&mut self, id: u32) -> Result<PrecisionStore<K>, RuntimeError> {
        let mut topo = self.shared.topology.write().expect("topology lock poisoned");
        let slot = topo.slot_of_id(id).ok_or_else(|| {
            RuntimeError::Store(StoreError::Config(format!("shard {id} is not on the ring")))
        })?;
        let mut router = topo.router.clone();
        router.remove_shard(id).map_err(RuntimeError::Store)?;
        // The retiring shard's residents, grouped by new owner (sorted
        // for deterministic batches).
        let keys = self.shared.keys.read().expect("key directory lock poisoned");
        let mut resident: Vec<&K> = keys.iter().filter(|k| topo.router.route(k) == id).collect();
        resident.sort();
        let mut groups: Vec<(u32, Vec<K>)> = Vec::new();
        for key in resident {
            let owner = router.route(key);
            match groups.iter_mut().find(|(o, _)| *o == owner) {
                Some((_, batch)) => batch.push(key.clone()),
                None => groups.push((owner, vec![key.clone()])),
            }
        }
        drop(keys);
        for (owner, batch) in groups {
            let (reply, bundle) = reply_slot();
            topo.senders[slot]
                .send(Request::Export { keys: batch, reply })
                .map_err(|_| RuntimeError::Closed)?;
            let bundle =
                bundle.recv().map_err(|_| RuntimeError::ActorGone)?.map_err(RuntimeError::Store)?;
            let target = topo.slot_of_id(owner).expect("owner is on the post-removal ring");
            let (ack, done) = reply_slot();
            topo.senders[target]
                .send(Request::Install { bundle, ack })
                .map_err(|_| RuntimeError::Closed)?;
            done.recv().map_err(|_| RuntimeError::ActorGone)?.map_err(RuntimeError::Store)?;
        }
        topo.router = router;
        topo.ids.remove(slot);
        let sender = topo.senders.remove(slot);
        sender.close();
        drop(topo);
        let pos = self
            .threads
            .iter()
            .position(|(tid, _)| *tid == id)
            .expect("retired shard's actor thread is tracked");
        let (_, thread) = self.threads.remove(pos);
        thread.join().map_err(|_| RuntimeError::ActorGone)
    }

    /// Drain and stop the actors: every request enqueued before this call
    /// is fully processed (acknowledged per shard), further sends fail
    /// with [`RuntimeError::Closed`], and the actor threads are joined.
    pub fn shutdown(mut self) -> Result<(), RuntimeError> {
        self.finish().map(|_| ())
    }

    /// Shut down (draining, as [`shutdown`](Runtime::shutdown)) and
    /// reassemble the synchronous [`ShardedStore`] from the actors'
    /// stores — the runtime's exact final state, e.g. for conformance
    /// checks or for relaunching with a different topology. After elastic
    /// resharding the reassembly keeps the live ring (ids are preserved,
    /// not renumbered), so routing stays bit-identical.
    pub fn into_store(mut self) -> Result<ShardedStore<K>, RuntimeError> {
        let parts = self.finish()?;
        let router = self.shared.topology.read().expect("topology lock poisoned").router.clone();
        ShardedStore::from_routed_parts(router, parts).map_err(RuntimeError::Store)
    }

    /// Common shutdown path: stop the tick thread, mark the end of each
    /// mailbox, wait for the drain acknowledgements, join the actors.
    /// Returns `(ring id, store)` per shard.
    fn finish(&mut self) -> Result<Vec<(u32, PrecisionStore<K>)>, RuntimeError> {
        self.stop_ticker();
        {
            let topo = self.shared.topology.read().expect("topology lock poisoned");
            let mut acks = Vec::with_capacity(topo.senders.len());
            for sender in &topo.senders {
                let (tx, rx) = reply_slot();
                // A closed mailbox means this shard already finished.
                if sender.send(Request::Shutdown { ack: tx }).is_ok() {
                    acks.push(rx);
                }
                sender.close();
            }
            for ack in acks {
                // ReplyDropped here means the actor died before draining;
                // the join below surfaces it.
                let _ = ack.recv();
            }
        }
        let mut shards = Vec::with_capacity(self.threads.len());
        for (id, thread) in self.threads.drain(..) {
            shards.push((id, thread.join().map_err(|_| RuntimeError::ActorGone)?));
        }
        Ok(shards)
    }
}

impl<K> Runtime<K> {
    /// Stop and join the wall-clock tick thread, if one is running.
    /// Idempotent; called before the mailboxes close so the ticker never
    /// races a shutdown with doomed sends.
    fn stop_ticker(&mut self) {
        if let Some(ticker) = self.ticker.take() {
            ticker.stop.store(true, Ordering::Release);
            ticker.thread.thread().unpark();
            let _ = ticker.thread.join();
        }
    }
}

impl<K> Drop for Runtime<K> {
    fn drop(&mut self) {
        // Explicit shutdown()/into_store() already drained `threads`; an
        // abandoned runtime still closes its mailboxes (draining them) and
        // joins, so actor threads never outlive the owner.
        self.stop_ticker();
        for sender in &self.shared.topology.read().expect("topology lock poisoned").senders {
            sender.close();
        }
        for (_, thread) in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// Spawn the wall-clock tick thread: every `interval` it sends a
/// fire-and-forget [`Request::Tick`] stamped with the milliseconds
/// elapsed since launch to every shard, exiting when the runtime stops it
/// (or the mailboxes close).
fn spawn_ticker<K: Hash + Ord + Clone + Send + Sync + 'static>(
    shared: &Arc<Shared<K>>,
    interval: Duration,
) -> Result<TickThread, RuntimeError> {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let shared = Arc::clone(shared);
    let thread = thread::Builder::new()
        .name("apcache-push-tick".into())
        .spawn(move || {
            let origin = Instant::now();
            loop {
                thread::park_timeout(interval);
                if flag.load(Ordering::Acquire) {
                    return;
                }
                let now = origin.elapsed().as_millis() as TimeMs;
                // Fresh topology read per tick: shards added after launch
                // get ticks too, and a tick never races a reshard.
                let topo = shared.topology.read().expect("topology lock poisoned");
                for sender in &topo.senders {
                    if sender.send(Request::Tick { now: Some(now), reply: None }).is_err() {
                        return; // mailboxes closed: shutdown underway
                    }
                }
            }
        })
        .map_err(|e| RuntimeError::Spawn(e.to_string()))?;
    Ok(TickThread { stop, thread })
}

/// Deployment metrics gathered from the actors: per-shard snapshots plus
/// their merged rollup (owned clones — unlike
/// [`ShardedMetrics`](apcache_shard::ShardedMetrics), the live counters
/// stay on the actor threads).
#[derive(Debug, Clone)]
pub struct RuntimeMetrics<K> {
    per_shard: Vec<StoreMetrics<K>>,
    merged: StoreMetrics<K>,
}

impl<K: Ord + Clone> RuntimeMetrics<K> {
    /// Assemble from per-shard snapshots in shard-id order, computing the
    /// merged rollup.
    pub(crate) fn from_shards(per_shard: Vec<StoreMetrics<K>>) -> Self {
        let mut merged = StoreMetrics::new();
        for m in &per_shard {
            merged.merge(m);
        }
        RuntimeMetrics { per_shard, merged }
    }

    /// The merged rollup: every counter summed across shards.
    pub fn merged(&self) -> &StoreMetrics<K> {
        &self.merged
    }

    /// Per-shard snapshots, indexed by shard id.
    pub fn per_shard(&self) -> &[StoreMetrics<K>] {
        &self.per_shard
    }

    /// Metrics of one shard.
    pub fn shard(&self, shard: usize) -> Option<&StoreMetrics<K>> {
        self.per_shard.get(shard)
    }
}

/// A cheaply-cloneable client of the runtime.
///
/// Every verb exists in two forms:
///
/// * **`submit_*`** — non-blocking: route the request to the owning
///   shard's mailbox (parking only on mailbox admission, the
///   backpressure toll) and return a [`Ticket`]. Outcomes are harvested
///   out of order from the handle's [`CompletionQueue`] via
///   [`poll`](RuntimeHandle::poll) / [`wait`](RuntimeHandle::wait) /
///   [`wait_ticket`](RuntimeHandle::wait_ticket) — so one thread can
///   multiplex arbitrarily many logical requests.
/// * **blocking** — `submit` + `wait_ticket`, nothing more; the
///   convenience form for call-reply code.
///
/// Cloning a handle creates an independent logical client with its own
/// completion queue and ticket sequence (tickets are queue-scoped).
pub struct RuntimeHandle<K> {
    pub(crate) shared: Arc<Shared<K>>,
    pub(crate) queue: CompletionQueue<K>,
}

impl<K: Hash + Ord + Clone + Send + Sync + 'static> Clone for RuntimeHandle<K> {
    fn clone(&self) -> Self {
        RuntimeHandle {
            shared: Arc::clone(&self.shared),
            queue: CompletionQueue::new(Arc::clone(&self.shared)),
        }
    }
}

impl<K: Hash + Ord + Clone + Send + Sync + 'static> RuntimeHandle<K> {
    /// Number of shard actors (at this instant — elastic resharding may
    /// change it).
    pub fn shard_count(&self) -> usize {
        self.shared.topology.read().expect("topology lock poisoned").senders.len()
    }

    /// The per-shard mailbox bound this runtime was launched with — the
    /// depth at which producers park. Serving doors size their own
    /// submit budgets below it so a saturated socket backpressures into
    /// its read buffer instead of blocking the submitting thread.
    pub fn mailbox_capacity(&self) -> usize {
        self.shared
            .topology
            .read()
            .expect("topology lock poisoned")
            .senders
            .iter()
            .map(MailboxSender::capacity)
            .min()
            .unwrap_or(DEFAULT_MAILBOX_CAPACITY)
    }

    /// The *ring id* of the shard that owns `key` under the current ring.
    /// Advisory after elastic resharding: the owner may change on the
    /// next flip (the submission paths route atomically; this accessor is
    /// for observability).
    pub fn shard_of(&self, key: &K) -> usize {
        self.shared.topology.read().expect("topology lock poisoned").router.route(key) as usize
    }

    /// Whether `key` is a registered source.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shared.keys.read().expect("key directory lock poisoned").contains(key)
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.shared.keys.read().expect("key directory lock poisoned").len()
    }

    /// Whether the runtime serves no sources.
    pub fn is_empty(&self) -> bool {
        self.shared.keys.read().expect("key directory lock poisoned").is_empty()
    }

    /// This handle's completion queue — clone it to hand the harvesting
    /// side to a dedicated reactor thread while others submit.
    pub fn completions(&self) -> &CompletionQueue<K> {
        &self.queue
    }

    /// Harvest the next finished completion without blocking (see
    /// [`CompletionQueue::poll`]).
    pub fn poll(&self) -> Option<Completion<K>> {
        self.queue.poll()
    }

    /// Block for the next completion, any ticket; `None` when nothing is
    /// outstanding (see [`CompletionQueue::wait`]).
    pub fn wait(&self) -> Option<Completion<K>> {
        self.queue.wait()
    }

    /// Block for one specific ticket's outcome (see
    /// [`CompletionQueue::wait_ticket`]).
    pub fn wait_ticket(&self, ticket: Ticket) -> Result<Outcome<K>, RuntimeError> {
        self.queue.wait_ticket(ticket)
    }

    /// Reject unregistered keys before any message is sent (mirrors
    /// `ShardedStore`, which never charges a shard for an unroutable
    /// request). Routing itself happens later, inside the queue, under
    /// the topology guard — never here, where a reshard could invalidate
    /// it between resolution and enqueue.
    fn ensure_key(&self, key: &K) -> Result<(), RuntimeError> {
        if !self.shared.keys.read().expect("key directory lock poisoned").contains(key) {
            return Err(RuntimeError::Store(StoreError::UnknownKey));
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Submission surface: every verb as a ticket.
    // -----------------------------------------------------------------

    /// Submit a point read; harvest a [`Outcome::Read`].
    pub fn submit_read(
        &self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        self.ensure_key(key)?;
        let owned = key.clone();
        self.queue.submit_keyed(key, "read", move |reply| Request::Read {
            key: owned,
            constraint,
            now,
            reply,
        })
    }

    /// Submit a write; harvest a [`Outcome::Write`].
    pub fn submit_write(&self, key: &K, value: f64, now: TimeMs) -> Result<Ticket, RuntimeError> {
        self.ensure_key(key)?;
        let owned = key.clone();
        self.queue.submit_keyed(key, "write", move |reply| Request::Write {
            key: owned,
            value,
            now,
            reply: Some(reply),
        })
    }

    /// Submit a batch of writes (validated up front, one scattered leg
    /// per owning shard, applied in slice order within each shard);
    /// harvest a [`Outcome::Write`] with the summed refresh count.
    pub fn submit_write_batch(
        &self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        for (key, value) in items {
            if !value.is_finite() {
                return Err(RuntimeError::Store(
                    apcache_core::error::ProtocolError::NonFiniteValue(*value).into(),
                ));
            }
            self.ensure_key(key)?;
        }
        if items.is_empty() {
            // An empty batch refreshes nothing; settle it locally.
            return Ok(self.queue.complete_immediately(
                Outcome::Write(WriteOutcome { refreshes: 0 }),
                "write_batch",
            ));
        }
        self.queue.submit_batch(items, now)
    }

    /// Submit a deployment-wide bounded aggregate; harvest a
    /// [`Outcome::Aggregate`].
    ///
    /// Single-shard key sets delegate the whole constraint to the owning
    /// actor untouched (bit-identical to the unsharded store); multi-
    /// shard sets park an
    /// [`AggregatePlan`](apcache_shard::plan::AggregatePlan) in the
    /// completion queue, so the Relative probe → escalate rounds run as
    /// submitted tickets that interleave with this handle's other traffic
    /// instead of holding the client thread.
    pub fn submit_aggregate(
        &self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        constraint.validate().map_err(RuntimeError::Store)?;
        if keys.is_empty() {
            let outcome = empty_aggregate(kind).map_err(RuntimeError::Store)?;
            return Ok(self.queue.complete_immediately(Outcome::Aggregate(outcome), "aggregate"));
        }
        for key in keys {
            self.ensure_key(key)?;
        }
        self.queue.submit_aggregate(kind, keys, constraint, now)
    }

    /// Submit a deployment-metrics gather (one leg per shard); harvest a
    /// [`Outcome::Metrics`].
    pub fn submit_metrics(&self) -> Result<Ticket, RuntimeError> {
        self.queue.submit_metrics()
    }

    /// Open a push subscription on `key`: the returned ticket first
    /// yields [`Outcome::Subscribed`] (with the cached snapshot), then
    /// streams one [`Outcome::Push`] per filtered interval change —
    /// without ever settling — until an unsubscribe or runtime shutdown
    /// closes it with [`Outcome::SubscriptionEnded`].
    pub fn submit_subscribe(
        &self,
        key: &K,
        filter: PushFilter,
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        self.ensure_key(key)?;
        let owned = key.clone();
        self.queue.submit_subscription(key, move |sub| Request::Subscribe {
            key: owned,
            filter,
            now,
            sub,
        })
    }

    /// Submit an unsubscribe for a live subscription ticket; harvest an
    /// [`Outcome::Unsubscribed`]. Fails with
    /// [`RuntimeError::UnknownTicket`] if `sub` is not a live
    /// subscription on this handle's queue. Routed by the watched *key*,
    /// not the subscribe-time shard — migration may have moved the watch.
    pub fn submit_unsubscribe(&self, sub: Ticket) -> Result<Ticket, RuntimeError> {
        let key = self.queue.subscription_key(sub).ok_or(RuntimeError::UnknownTicket(sub))?;
        let owned = key.clone();
        self.queue.submit_keyed(&key, "unsubscribe", move |reply| Request::Unsubscribe {
            id: sub.0,
            key: owned,
            reply,
        })
    }

    /// Submit a TTL-lease grant/renewal on `key`; harvest an
    /// [`Outcome::Leased`]. The config is validated before anything is
    /// enqueued.
    pub fn submit_lease(
        &self,
        key: &K,
        cfg: LeaseConfig,
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        if !cfg.validate() {
            return Err(RuntimeError::Store(StoreError::Config(format!(
                "invalid lease config: ttl_ms={}, fallback={:?}",
                cfg.ttl_ms, cfg.fallback
            ))));
        }
        self.ensure_key(key)?;
        let owned = key.clone();
        self.queue.submit_keyed(key, "lease", move |reply| Request::Lease {
            key: owned,
            cfg: Some(cfg),
            now,
            reply,
        })
    }

    /// Submit a lease release on `key`; harvest an [`Outcome::Leased`]
    /// whose `active` says whether a lease existed.
    pub fn submit_release_lease(&self, key: &K, now: TimeMs) -> Result<Ticket, RuntimeError> {
        self.ensure_key(key)?;
        let owned = key.clone();
        self.queue.submit_keyed(key, "lease", move |reply| Request::Lease {
            key: owned,
            cfg: None,
            now,
            reply,
        })
    }

    /// Submit a logical-time advance to every shard (lapsed leases expire
    /// and push); harvest an [`Outcome::TimeAdvanced`] with the merged
    /// push report.
    pub fn submit_advance_time(&self, now: TimeMs) -> Result<Ticket, RuntimeError> {
        self.queue.submit_tick(Some(now))
    }

    /// Checkpoint every shard's store into its durable spool (blocking):
    /// each actor snapshots its full state and compacts its log, a no-op
    /// for shards without a spool. The sends go out under one topology
    /// read guard, so the fan-out addresses a consistent fleet; per
    /// shard, mailbox FIFO makes the snapshot a consistent cut of that
    /// shard's history. Returns once every shard's snapshot is durable.
    pub fn checkpoint(&self) -> Result<(), RuntimeError> {
        let acks = {
            let topo = self.shared.topology.read().expect("topology lock poisoned");
            let mut acks = Vec::with_capacity(topo.senders.len());
            for sender in &topo.senders {
                let (tx, rx) = reply_slot();
                sender.send(Request::Checkpoint { ack: tx }).map_err(|_| RuntimeError::Closed)?;
                acks.push(rx);
            }
            acks
        };
        for ack in acks {
            ack.recv().map_err(|_| RuntimeError::ActorGone)?.map_err(RuntimeError::Store)?;
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Blocking surface: submit + wait_ticket, nothing else.
    // -----------------------------------------------------------------

    /// Read `key` to the given precision on its owning shard (blocking:
    /// [`submit_read`](RuntimeHandle::submit_read) +
    /// [`wait_ticket`](RuntimeHandle::wait_ticket)).
    pub fn read(
        &self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, RuntimeError> {
        match self.wait_ticket(self.submit_read(key, constraint, now)?)? {
            Outcome::Read(result) => Ok(result),
            _ => unreachable!("read tickets settle as read outcomes"),
        }
    }

    /// Push a new exact value for `key` and wait for the outcome.
    pub fn write(&self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, RuntimeError> {
        match self.wait_ticket(self.submit_write(key, value, now)?)? {
            Outcome::Write(outcome) => Ok(outcome),
            _ => unreachable!("write tickets settle as write outcomes"),
        }
    }

    /// Fire-and-forget write: validated and enqueued (parking while the
    /// shard's mailbox is full — that is the backpressure), then the
    /// caller moves on without a ticket. The write is applied in mailbox
    /// order; a draining shutdown still processes it.
    pub fn write_nowait(&self, key: &K, value: f64, now: TimeMs) -> Result<(), RuntimeError> {
        if !value.is_finite() {
            return Err(RuntimeError::Store(
                apcache_core::error::ProtocolError::NonFiniteValue(value).into(),
            ));
        }
        self.ensure_key(key)?;
        let topo = self.shared.topology.read().expect("topology lock poisoned");
        let slot = topo.slot_for_key(key);
        topo.senders[slot]
            .send(Request::Write { key: key.clone(), value, now, reply: None })
            .map_err(|_| RuntimeError::Closed)
    }

    /// Apply a batch of writes with one routing pass (blocking form of
    /// [`submit_write_batch`](RuntimeHandle::submit_write_batch)).
    ///
    /// Unlike [`ShardedStore::write_batch`], atomicity covers only the
    /// validation phase: if the runtime is shut down mid-scatter, legs
    /// already accepted by their mailboxes are still applied (the drain
    /// guarantee) while the caller sees [`RuntimeError::Closed`].
    pub fn write_batch(
        &self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<WriteOutcome, RuntimeError> {
        match self.wait_ticket(self.submit_write_batch(items, now)?)? {
            Outcome::Write(outcome) => Ok(outcome),
            _ => unreachable!("batch tickets settle as write outcomes"),
        }
    }

    /// Bounded aggregate over `keys` (blocking form of
    /// [`submit_aggregate`](RuntimeHandle::submit_aggregate)): the
    /// constraint dispatch — including the Relative probe →
    /// local-certificates → derived-budget refinement — is the shared
    /// [`AggregatePlan`](apcache_shard::plan::AggregatePlan), literally the same state machine the
    /// synchronous façade folds with, so the two cannot drift.
    pub fn aggregate(
        &self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<AggregateOutcome<K>, RuntimeError> {
        match self.wait_ticket(self.submit_aggregate(kind, keys, constraint, now)?)? {
            Outcome::Aggregate(outcome) => Ok(outcome),
            _ => unreachable!("aggregate tickets settle as aggregate outcomes"),
        }
    }

    /// Snapshot deployment metrics (blocking form of
    /// [`submit_metrics`](RuntimeHandle::submit_metrics)).
    pub fn metrics(&self) -> Result<RuntimeMetrics<K>, RuntimeError> {
        match self.wait_ticket(self.submit_metrics()?)? {
            Outcome::Metrics(metrics) => Ok(metrics),
            _ => unreachable!("metrics tickets settle as metrics outcomes"),
        }
    }

    /// Open a push subscription and wait for its acknowledgement: the
    /// live subscription ticket plus the cached snapshot at subscribe
    /// time. Pushes are then harvested from the completion queue like any
    /// other completion (`poll`/`wait`), tagged with the returned ticket.
    pub fn subscribe(
        &self,
        key: &K,
        filter: PushFilter,
        now: TimeMs,
    ) -> Result<(Ticket, Interval), RuntimeError> {
        let ticket = self.submit_subscribe(key, filter, now)?;
        match self.wait_ticket(ticket)? {
            Outcome::Subscribed { interval } => Ok((ticket, interval)),
            Outcome::SubscriptionEnded => Err(RuntimeError::ActorGone),
            _ => unreachable!("subscription tickets stream subscription outcomes"),
        }
    }

    /// Close a live subscription and wait for the acknowledgement:
    /// whether the shard still had it registered. The subscription
    /// ticket itself settles with [`Outcome::SubscriptionEnded`].
    pub fn unsubscribe(&self, sub: Ticket) -> Result<bool, RuntimeError> {
        match self.wait_ticket(self.submit_unsubscribe(sub)?)? {
            Outcome::Unsubscribed { existed } => Ok(existed),
            _ => unreachable!("unsubscribe tickets settle as unsubscribed outcomes"),
        }
    }

    /// Grant or renew a TTL lease on `key` (blocking form of
    /// [`submit_lease`](RuntimeHandle::submit_lease)).
    pub fn lease(&self, key: &K, cfg: LeaseConfig, now: TimeMs) -> Result<(), RuntimeError> {
        match self.wait_ticket(self.submit_lease(key, cfg, now)?)? {
            Outcome::Leased { .. } => Ok(()),
            _ => unreachable!("lease tickets settle as leased outcomes"),
        }
    }

    /// Release the lease on `key`, returning whether one existed
    /// (blocking form of
    /// [`submit_release_lease`](RuntimeHandle::submit_release_lease)).
    pub fn release_lease(&self, key: &K, now: TimeMs) -> Result<bool, RuntimeError> {
        match self.wait_ticket(self.submit_release_lease(key, now)?)? {
            Outcome::Leased { active } => Ok(active),
            _ => unreachable!("lease tickets settle as leased outcomes"),
        }
    }

    /// Advance the push-side logical clock on every shard — lapsed
    /// leases widen their intervals and push — and return the merged
    /// push report (blocking form of
    /// [`submit_advance_time`](RuntimeHandle::submit_advance_time)).
    pub fn advance_time(&self, now: TimeMs) -> Result<PushReport, RuntimeError> {
        match self.wait_ticket(self.submit_advance_time(now)?)? {
            Outcome::TimeAdvanced(report) => Ok(report),
            _ => unreachable!("tick tickets settle as time-advanced outcomes"),
        }
    }

    /// Submit a push-side occupancy snapshot (subscribers, watched keys,
    /// leases) without advancing any clock; harvest an
    /// [`Outcome::TimeAdvanced`] carrying the merged report. The
    /// non-blocking form behind [`push_stats`](RuntimeHandle::push_stats),
    /// public so pipelined servers can multiplex it like any other verb.
    pub fn submit_push_stats(&self) -> Result<Ticket, RuntimeError> {
        self.queue.submit_tick(None)
    }

    /// Snapshot push-side occupancy (subscribers, watched keys, leases)
    /// without advancing any clock.
    pub fn push_stats(&self) -> Result<PushReport, RuntimeError> {
        match self.wait_ticket(self.submit_push_stats()?)? {
            Outcome::TimeAdvanced(report) => Ok(report),
            _ => unreachable!("tick tickets settle as time-advanced outcomes"),
        }
    }

    // -----------------------------------------------------------------
    // Observability surface.
    // -----------------------------------------------------------------

    /// The deployment's telemetry: the metric registry (register layer-
    /// specific series here — the wire server does) and the trace ring.
    /// One instance per runtime, shared by every handle.
    pub fn telemetry(&self) -> &RuntimeTelemetry {
        &self.shared.telemetry
    }

    /// Copy out the runtime's request-lifecycle trace ring, oldest event
    /// first (see [`apcache_telemetry::TraceRing`]).
    pub fn trace_dump(&self) -> Vec<TraceEvent> {
        self.shared.telemetry.trace().dump()
    }

    /// Render the full Prometheus-style text exposition for this
    /// deployment: the store counter families (from a fresh
    /// [`metrics`](RuntimeHandle::metrics) gather, so they agree exactly
    /// with the `StoreMetrics` rollup — including after shard
    /// migrations, whose counters travel with the keys), the push-side
    /// occupancy gauges (from [`push_stats`](RuntimeHandle::push_stats)),
    /// and every series registered in the
    /// [`telemetry`](RuntimeHandle::telemetry) registry (verb latency
    /// histograms, wire-layer counters, mailbox-depth gauges sampled
    /// here at scrape time).
    pub fn render_exposition(&self) -> Result<String, RuntimeError> {
        let metrics = self.metrics()?;
        let report = self.push_stats()?;
        Ok(self.render_with(metrics, report))
    }

    /// Ticketed form of [`render_exposition`](RuntimeHandle::render_exposition):
    /// renders now (on the submitting thread) and settles the returned
    /// ticket immediately with [`Outcome::Exposition`]. The internal
    /// metrics/push-stats gathers run on a scratch handle clone so their
    /// waits never race whichever thread harvests *this* handle's queue —
    /// pipelined servers split exactly that way (reader submits, a
    /// drainer harvests), and a scrape must not steal the drainer's
    /// completions.
    pub fn submit_exposition(&self) -> Result<Ticket, RuntimeError> {
        let scratch = self.clone();
        let metrics = scratch.metrics()?;
        let report = scratch.push_stats()?;
        let text = self.render_with(metrics, report);
        Ok(self.queue.complete_immediately(Outcome::Exposition(text), "exposition"))
    }

    /// The rendering body shared by the blocking and ticketed scrape
    /// forms. Queue-occupancy gauges sample *this* handle's queue — for
    /// the ticketed form that is the serving queue, which is the one an
    /// operator cares about.
    fn render_with(&self, metrics: RuntimeMetrics<K>, report: PushReport) -> String {
        let registry = self.shared.telemetry.registry();
        // Sample occupancy into registry gauges at scrape time: mailbox
        // depth per shard (racy snapshots, for monitoring) and this
        // handle's completion-queue occupancy.
        {
            let topo = self.shared.topology.read().expect("topology lock poisoned");
            for (slot, sender) in topo.senders.iter().enumerate() {
                let id = topo.ids[slot].to_string();
                registry
                    .gauge(
                        "apcache_mailbox_depth",
                        "Requests queued in a shard actor's mailbox (snapshot at scrape).",
                        &[("shard", &id)],
                    )
                    .set(sender.len() as i64);
            }
        }
        registry
            .gauge(
                "apcache_completion_outstanding",
                "Tickets submitted on the scraping handle's queue and not yet settled.",
                &[],
            )
            .set(self.queue.outstanding() as i64);
        registry
            .gauge(
                "apcache_completion_ready",
                "Settled completions on the scraping handle's queue not yet harvested.",
                &[],
            )
            .set(self.queue.ready_len() as i64);
        let mut out = Exposition::new();
        metrics.merged().render_into(&mut out);
        report.render_into(&mut out);
        registry.render(&mut out);
        out.finish()
    }
}
