//! The actor-per-shard runtime: launch, handle, actors, shutdown.

use std::collections::HashSet;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use apcache_core::{Interval, TimeMs};
use apcache_push::{LeaseConfig, PushFilter, PushReport};
use apcache_queries::AggregateKind;
use apcache_shard::plan::{empty_aggregate, AggregatePlan};
use apcache_shard::{ShardRouter, ShardedStore};
use apcache_store::{
    AggregateOutcome, Constraint, PrecisionStore, ReadResult, StoreError, StoreMetrics,
    WriteOutcome,
};

use crate::actor::ShardActor;
use crate::completion::{Completion, CompletionQueue, Outcome, Ticket};
use crate::error::RuntimeError;
use crate::mailbox::{mailbox, MailboxSender};
use crate::oneshot::reply_slot;
use crate::request::Request;

/// Tuning for [`Runtime::launch_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Mailbox capacity per shard actor: how many requests may queue
    /// before senders park (the backpressure bound). Values below 1 are
    /// treated as 1.
    pub mailbox_capacity: usize,
    /// Tick width of each shard's TTL-lease timer wheel, in logical
    /// milliseconds: lease lapses are detected on this grid.
    pub lease_resolution_ms: u64,
    /// When `Some`, the runtime spawns a wall-clock tick thread that
    /// sends a fire-and-forget [`Request::Tick`] to every shard at this
    /// interval, so leases lapse even on idle shards. `None` (the
    /// default) leaves the push-side clock entirely to served traffic
    /// and explicit [`advance_time`](RuntimeHandle::advance_time) calls —
    /// the deterministic mode the conformance suites rely on.
    pub tick_interval: Option<Duration>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            mailbox_capacity: DEFAULT_MAILBOX_CAPACITY,
            lease_resolution_ms: DEFAULT_LEASE_RESOLUTION_MS,
            tick_interval: None,
        }
    }
}

/// Default per-shard mailbox capacity: deep enough to keep an actor busy
/// under bursts, shallow enough that a stalled shard pushes back on its
/// producers within microseconds of work.
pub const DEFAULT_MAILBOX_CAPACITY: usize = 1_024;

/// Default lease timer-wheel resolution: fine enough that a lapsed lease
/// is noticed within a frame's worth of logical time, coarse enough that
/// the wheel's cascades stay cheap.
pub const DEFAULT_LEASE_RESOLUTION_MS: u64 = 16;

/// What the handle shares: the ring, one mailbox sender per shard, and
/// the immutable key directory (the runtime serves a fixed key population
/// registered at build time; elastic key insertion is a follow-on).
struct Shared<K> {
    router: ShardRouter,
    senders: Vec<MailboxSender<Request<K>>>,
    keys: HashSet<K>,
}

/// The owner of the shard actors: spawns them on launch, joins them on
/// shutdown. Cloneable [`RuntimeHandle`]s (from
/// [`handle`](Runtime::handle)) do the actual serving from any thread.
pub struct Runtime<K> {
    shared: Arc<Shared<K>>,
    threads: Vec<thread::JoinHandle<PrecisionStore<K>>>,
    ticker: Option<TickThread>,
}

/// The optional wall-clock tick thread (see
/// [`RuntimeConfig::tick_interval`]).
struct TickThread {
    stop: Arc<AtomicBool>,
    thread: thread::JoinHandle<()>,
}

impl<K: Hash + Ord + Clone + Send + 'static> Runtime<K> {
    /// Launch one actor thread per shard of `store`, with default tuning.
    pub fn launch(store: ShardedStore<K>) -> Result<Self, RuntimeError> {
        Runtime::launch_with(store, RuntimeConfig::default())
    }

    /// Launch one actor thread per shard of `store`. Each actor takes
    /// ownership of its `PrecisionStore` — the store stays single-threaded
    /// and lock-free; all concurrency lives in the mailboxes.
    pub fn launch_with(store: ShardedStore<K>, cfg: RuntimeConfig) -> Result<Self, RuntimeError> {
        let keys: HashSet<K> = store.keys().cloned().collect();
        let (router, shards) = store.into_parts();
        let mut senders: Vec<MailboxSender<Request<K>>> = Vec::with_capacity(shards.len());
        let mut threads: Vec<thread::JoinHandle<PrecisionStore<K>>> =
            Vec::with_capacity(shards.len());
        for (i, shard) in shards.into_iter().enumerate() {
            let (tx, rx) = mailbox::<Request<K>>(cfg.mailbox_capacity);
            let lease_resolution_ms = cfg.lease_resolution_ms;
            let spawned =
                thread::Builder::new().name(format!("apcache-shard-{i}")).spawn(move || {
                    let mut actor = ShardActor::new(shard, lease_resolution_ms);
                    while let Some(request) = rx.recv() {
                        actor.serve(request);
                    }
                    actor.into_store()
                });
            let thread = match spawned {
                Ok(thread) => thread,
                Err(e) => {
                    // Unwind a partial launch: closing the mailboxes ends
                    // the already-running actors (recv returns None), so
                    // no thread is left parked forever.
                    for sender in &senders {
                        sender.close();
                    }
                    for thread in threads {
                        let _ = thread.join();
                    }
                    return Err(RuntimeError::Spawn(e.to_string()));
                }
            };
            senders.push(tx);
            threads.push(thread);
        }
        let shared = Arc::new(Shared { router, senders, keys });
        let ticker = match cfg.tick_interval {
            None => None,
            Some(interval) => match spawn_ticker(&shared, interval) {
                Ok(ticker) => Some(ticker),
                Err(e) => {
                    for sender in &shared.senders {
                        sender.close();
                    }
                    for thread in threads {
                        let _ = thread.join();
                    }
                    return Err(e);
                }
            },
        };
        Ok(Runtime { shared, threads, ticker })
    }

    /// A serving handle with its own fresh completion queue (share a
    /// handle's *clone* per client thread; each clone is an independent
    /// logical client).
    pub fn handle(&self) -> RuntimeHandle<K> {
        let queue = CompletionQueue::new(self.shared.senders.clone());
        RuntimeHandle { shared: Arc::clone(&self.shared), queue }
    }

    /// Number of shard actors.
    pub fn shard_count(&self) -> usize {
        self.shared.senders.len()
    }

    /// Drain and stop the actors: every request enqueued before this call
    /// is fully processed (acknowledged per shard), further sends fail
    /// with [`RuntimeError::Closed`], and the actor threads are joined.
    pub fn shutdown(mut self) -> Result<(), RuntimeError> {
        self.finish().map(|_| ())
    }

    /// Shut down (draining, as [`shutdown`](Runtime::shutdown)) and
    /// reassemble the synchronous [`ShardedStore`] from the actors'
    /// stores — the runtime's exact final state, e.g. for conformance
    /// checks or for relaunching with a different topology.
    pub fn into_store(mut self) -> Result<ShardedStore<K>, RuntimeError> {
        let shards = self.finish()?;
        ShardedStore::from_parts(self.shared.router.clone(), shards).map_err(RuntimeError::Store)
    }

    /// Common shutdown path: stop the tick thread, mark the end of each
    /// mailbox, wait for the drain acknowledgements, join the actors.
    fn finish(&mut self) -> Result<Vec<PrecisionStore<K>>, RuntimeError> {
        self.stop_ticker();
        let mut acks = Vec::with_capacity(self.shared.senders.len());
        for sender in &self.shared.senders {
            let (tx, rx) = reply_slot();
            // A closed mailbox means this shard already finished.
            if sender.send(Request::Shutdown { ack: tx }).is_ok() {
                acks.push(rx);
            }
            sender.close();
        }
        for ack in acks {
            // ReplyDropped here means the actor died before draining; the
            // join below surfaces it.
            let _ = ack.recv();
        }
        let mut shards = Vec::with_capacity(self.threads.len());
        for thread in self.threads.drain(..) {
            shards.push(thread.join().map_err(|_| RuntimeError::ActorGone)?);
        }
        Ok(shards)
    }
}

impl<K> Runtime<K> {
    /// Stop and join the wall-clock tick thread, if one is running.
    /// Idempotent; called before the mailboxes close so the ticker never
    /// races a shutdown with doomed sends.
    fn stop_ticker(&mut self) {
        if let Some(ticker) = self.ticker.take() {
            ticker.stop.store(true, Ordering::Release);
            ticker.thread.thread().unpark();
            let _ = ticker.thread.join();
        }
    }
}

impl<K> Drop for Runtime<K> {
    fn drop(&mut self) {
        // Explicit shutdown()/into_store() already drained `threads`; an
        // abandoned runtime still closes its mailboxes (draining them) and
        // joins, so actor threads never outlive the owner.
        self.stop_ticker();
        for sender in &self.shared.senders {
            sender.close();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// Spawn the wall-clock tick thread: every `interval` it sends a
/// fire-and-forget [`Request::Tick`] stamped with the milliseconds
/// elapsed since launch to every shard, exiting when the runtime stops it
/// (or the mailboxes close).
fn spawn_ticker<K: Hash + Ord + Clone + Send + 'static>(
    shared: &Arc<Shared<K>>,
    interval: Duration,
) -> Result<TickThread, RuntimeError> {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let senders = shared.senders.clone();
    let thread = thread::Builder::new()
        .name("apcache-push-tick".into())
        .spawn(move || {
            let origin = Instant::now();
            loop {
                thread::park_timeout(interval);
                if flag.load(Ordering::Acquire) {
                    return;
                }
                let now = origin.elapsed().as_millis() as TimeMs;
                for sender in &senders {
                    if sender.send(Request::Tick { now: Some(now), reply: None }).is_err() {
                        return; // mailboxes closed: shutdown underway
                    }
                }
            }
        })
        .map_err(|e| RuntimeError::Spawn(e.to_string()))?;
    Ok(TickThread { stop, thread })
}

/// Deployment metrics gathered from the actors: per-shard snapshots plus
/// their merged rollup (owned clones — unlike
/// [`ShardedMetrics`](apcache_shard::ShardedMetrics), the live counters
/// stay on the actor threads).
#[derive(Debug, Clone)]
pub struct RuntimeMetrics<K> {
    per_shard: Vec<StoreMetrics<K>>,
    merged: StoreMetrics<K>,
}

impl<K: Ord + Clone> RuntimeMetrics<K> {
    /// Assemble from per-shard snapshots in shard-id order, computing the
    /// merged rollup.
    pub(crate) fn from_shards(per_shard: Vec<StoreMetrics<K>>) -> Self {
        let mut merged = StoreMetrics::new();
        for m in &per_shard {
            merged.merge(m);
        }
        RuntimeMetrics { per_shard, merged }
    }

    /// The merged rollup: every counter summed across shards.
    pub fn merged(&self) -> &StoreMetrics<K> {
        &self.merged
    }

    /// Per-shard snapshots, indexed by shard id.
    pub fn per_shard(&self) -> &[StoreMetrics<K>] {
        &self.per_shard
    }

    /// Metrics of one shard.
    pub fn shard(&self, shard: usize) -> Option<&StoreMetrics<K>> {
        self.per_shard.get(shard)
    }
}

/// A cheaply-cloneable client of the runtime.
///
/// Every verb exists in two forms:
///
/// * **`submit_*`** — non-blocking: route the request to the owning
///   shard's mailbox (parking only on mailbox admission, the
///   backpressure toll) and return a [`Ticket`]. Outcomes are harvested
///   out of order from the handle's [`CompletionQueue`] via
///   [`poll`](RuntimeHandle::poll) / [`wait`](RuntimeHandle::wait) /
///   [`wait_ticket`](RuntimeHandle::wait_ticket) — so one thread can
///   multiplex arbitrarily many logical requests.
/// * **blocking** — `submit` + `wait_ticket`, nothing more; the
///   convenience form for call-reply code.
///
/// Cloning a handle creates an independent logical client with its own
/// completion queue and ticket sequence (tickets are queue-scoped).
pub struct RuntimeHandle<K> {
    shared: Arc<Shared<K>>,
    queue: CompletionQueue<K>,
}

impl<K: Hash + Ord + Clone + Send + 'static> Clone for RuntimeHandle<K> {
    fn clone(&self) -> Self {
        RuntimeHandle {
            shared: Arc::clone(&self.shared),
            queue: CompletionQueue::new(self.shared.senders.clone()),
        }
    }
}

impl<K: Hash + Ord + Clone + Send + 'static> RuntimeHandle<K> {
    /// Number of shard actors.
    pub fn shard_count(&self) -> usize {
        self.shared.senders.len()
    }

    /// The shard id that owns `key`.
    pub fn shard_of(&self, key: &K) -> usize {
        self.shared.router.route(key) as usize
    }

    /// Whether `key` was registered when the runtime launched.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shared.keys.contains(key)
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.shared.keys.len()
    }

    /// Whether the runtime serves no sources.
    pub fn is_empty(&self) -> bool {
        self.shared.keys.is_empty()
    }

    /// This handle's completion queue — clone it to hand the harvesting
    /// side to a dedicated reactor thread while others submit.
    pub fn completions(&self) -> &CompletionQueue<K> {
        &self.queue
    }

    /// Harvest the next finished completion without blocking (see
    /// [`CompletionQueue::poll`]).
    pub fn poll(&self) -> Option<Completion<K>> {
        self.queue.poll()
    }

    /// Block for the next completion, any ticket; `None` when nothing is
    /// outstanding (see [`CompletionQueue::wait`]).
    pub fn wait(&self) -> Option<Completion<K>> {
        self.queue.wait()
    }

    /// Block for one specific ticket's outcome (see
    /// [`CompletionQueue::wait_ticket`]).
    pub fn wait_ticket(&self, ticket: Ticket) -> Result<Outcome<K>, RuntimeError> {
        self.queue.wait_ticket(ticket)
    }

    /// Resolve the owning shard, rejecting unregistered keys before any
    /// message is sent (mirrors `ShardedStore`, which never charges a
    /// shard for an unroutable request).
    fn owning_shard(&self, key: &K) -> Result<usize, RuntimeError> {
        if !self.shared.keys.contains(key) {
            return Err(RuntimeError::Store(StoreError::UnknownKey));
        }
        Ok(self.shard_of(key))
    }

    // -----------------------------------------------------------------
    // Submission surface: every verb as a ticket.
    // -----------------------------------------------------------------

    /// Submit a point read; harvest a [`Outcome::Read`].
    pub fn submit_read(
        &self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        let shard = self.owning_shard(key)?;
        let key = key.clone();
        self.queue.submit_direct(shard, move |reply| Request::Read { key, constraint, now, reply })
    }

    /// Submit a write; harvest a [`Outcome::Write`].
    pub fn submit_write(&self, key: &K, value: f64, now: TimeMs) -> Result<Ticket, RuntimeError> {
        let shard = self.owning_shard(key)?;
        let key = key.clone();
        self.queue.submit_direct(shard, move |reply| Request::Write {
            key,
            value,
            now,
            reply: Some(reply),
        })
    }

    /// Submit a batch of writes (validated up front, one scattered leg
    /// per owning shard, applied in slice order within each shard);
    /// harvest a [`Outcome::Write`] with the summed refresh count.
    pub fn submit_write_batch(
        &self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        let mut per_shard: Vec<Vec<(K, f64)>> = vec![Vec::new(); self.shard_count()];
        for (key, value) in items {
            if !value.is_finite() {
                return Err(RuntimeError::Store(
                    apcache_core::error::ProtocolError::NonFiniteValue(*value).into(),
                ));
            }
            let shard = self.owning_shard(key)?;
            per_shard[shard].push((key.clone(), *value));
        }
        let parts: Vec<(usize, Vec<(K, f64)>)> =
            per_shard.into_iter().enumerate().filter(|(_, items)| !items.is_empty()).collect();
        if parts.is_empty() {
            // An empty batch refreshes nothing; settle it locally.
            return Ok(self
                .queue
                .complete_immediately(Outcome::Write(WriteOutcome { refreshes: 0 })));
        }
        self.queue.submit_batch(parts, now)
    }

    /// Submit a deployment-wide bounded aggregate; harvest a
    /// [`Outcome::Aggregate`].
    ///
    /// Single-shard key sets delegate the whole constraint to the owning
    /// actor untouched (bit-identical to the unsharded store); multi-
    /// shard sets park an [`AggregatePlan`] in the completion queue, so
    /// the Relative probe → escalate rounds run as submitted tickets that
    /// interleave with this handle's other traffic instead of holding the
    /// client thread.
    pub fn submit_aggregate(
        &self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        constraint.validate().map_err(RuntimeError::Store)?;
        if keys.is_empty() {
            let outcome = empty_aggregate(kind).map_err(RuntimeError::Store)?;
            return Ok(self.queue.complete_immediately(Outcome::Aggregate(outcome)));
        }
        let parts = self.partition(keys)?;
        if let [(shard, shard_keys)] = parts.as_slice() {
            let (shard, keys) = (*shard, shard_keys.clone());
            return self.queue.submit_direct(shard, move |reply| Request::Aggregate {
                kind,
                keys,
                constraint,
                now,
                reply,
            });
        }
        let (plan, round) =
            AggregatePlan::start(kind, constraint, keys.len()).map_err(RuntimeError::Store)?;
        self.queue.submit_aggregate(plan, round, parts, now)
    }

    /// Submit a deployment-metrics gather (one leg per shard); harvest a
    /// [`Outcome::Metrics`].
    pub fn submit_metrics(&self) -> Result<Ticket, RuntimeError> {
        self.queue.submit_metrics()
    }

    /// Open a push subscription on `key`: the returned ticket first
    /// yields [`Outcome::Subscribed`] (with the cached snapshot), then
    /// streams one [`Outcome::Push`] per filtered interval change —
    /// without ever settling — until an unsubscribe or runtime shutdown
    /// closes it with [`Outcome::SubscriptionEnded`].
    pub fn submit_subscribe(
        &self,
        key: &K,
        filter: PushFilter,
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        let shard = self.owning_shard(key)?;
        let key = key.clone();
        self.queue.submit_subscription(shard, move |sub| Request::Subscribe {
            key,
            filter,
            now,
            sub,
        })
    }

    /// Submit an unsubscribe for a live subscription ticket; harvest an
    /// [`Outcome::Unsubscribed`]. Fails with
    /// [`RuntimeError::UnknownTicket`] if `sub` is not a live
    /// subscription on this handle's queue.
    pub fn submit_unsubscribe(&self, sub: Ticket) -> Result<Ticket, RuntimeError> {
        let shard = self.queue.subscription_shard(sub).ok_or(RuntimeError::UnknownTicket(sub))?;
        self.queue.submit_direct(shard, move |reply| Request::Unsubscribe { id: sub.0, reply })
    }

    /// Submit a TTL-lease grant/renewal on `key`; harvest an
    /// [`Outcome::Leased`]. The config is validated before anything is
    /// enqueued.
    pub fn submit_lease(
        &self,
        key: &K,
        cfg: LeaseConfig,
        now: TimeMs,
    ) -> Result<Ticket, RuntimeError> {
        if !cfg.validate() {
            return Err(RuntimeError::Store(StoreError::Config(format!(
                "invalid lease config: ttl_ms={}, fallback={:?}",
                cfg.ttl_ms, cfg.fallback
            ))));
        }
        let shard = self.owning_shard(key)?;
        let key = key.clone();
        self.queue.submit_direct(shard, move |reply| Request::Lease {
            key,
            cfg: Some(cfg),
            now,
            reply,
        })
    }

    /// Submit a lease release on `key`; harvest an [`Outcome::Leased`]
    /// whose `active` says whether a lease existed.
    pub fn submit_release_lease(&self, key: &K, now: TimeMs) -> Result<Ticket, RuntimeError> {
        let shard = self.owning_shard(key)?;
        let key = key.clone();
        self.queue.submit_direct(shard, move |reply| Request::Lease { key, cfg: None, now, reply })
    }

    /// Submit a logical-time advance to every shard (lapsed leases expire
    /// and push); harvest an [`Outcome::TimeAdvanced`] with the merged
    /// push report.
    pub fn submit_advance_time(&self, now: TimeMs) -> Result<Ticket, RuntimeError> {
        self.queue.submit_tick(Some(now))
    }

    // -----------------------------------------------------------------
    // Blocking surface: submit + wait_ticket, nothing else.
    // -----------------------------------------------------------------

    /// Read `key` to the given precision on its owning shard (blocking:
    /// [`submit_read`](RuntimeHandle::submit_read) +
    /// [`wait_ticket`](RuntimeHandle::wait_ticket)).
    pub fn read(
        &self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, RuntimeError> {
        match self.wait_ticket(self.submit_read(key, constraint, now)?)? {
            Outcome::Read(result) => Ok(result),
            _ => unreachable!("read tickets settle as read outcomes"),
        }
    }

    /// Push a new exact value for `key` and wait for the outcome.
    pub fn write(&self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, RuntimeError> {
        match self.wait_ticket(self.submit_write(key, value, now)?)? {
            Outcome::Write(outcome) => Ok(outcome),
            _ => unreachable!("write tickets settle as write outcomes"),
        }
    }

    /// Fire-and-forget write: validated and enqueued (parking while the
    /// shard's mailbox is full — that is the backpressure), then the
    /// caller moves on without a ticket. The write is applied in mailbox
    /// order; a draining shutdown still processes it.
    pub fn write_nowait(&self, key: &K, value: f64, now: TimeMs) -> Result<(), RuntimeError> {
        if !value.is_finite() {
            return Err(RuntimeError::Store(
                apcache_core::error::ProtocolError::NonFiniteValue(value).into(),
            ));
        }
        let shard = self.owning_shard(key)?;
        self.shared.senders[shard]
            .send(Request::Write { key: key.clone(), value, now, reply: None })
            .map_err(|_| RuntimeError::Closed)
    }

    /// Apply a batch of writes with one routing pass (blocking form of
    /// [`submit_write_batch`](RuntimeHandle::submit_write_batch)).
    ///
    /// Unlike [`ShardedStore::write_batch`], atomicity covers only the
    /// validation phase: if the runtime is shut down mid-scatter, legs
    /// already accepted by their mailboxes are still applied (the drain
    /// guarantee) while the caller sees [`RuntimeError::Closed`].
    pub fn write_batch(
        &self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<WriteOutcome, RuntimeError> {
        match self.wait_ticket(self.submit_write_batch(items, now)?)? {
            Outcome::Write(outcome) => Ok(outcome),
            _ => unreachable!("batch tickets settle as write outcomes"),
        }
    }

    /// Partition `keys` by owning shard (slice order preserved within each
    /// shard), validating every key up front.
    fn partition(&self, keys: &[K]) -> Result<Vec<(usize, Vec<K>)>, RuntimeError> {
        let mut per_shard: Vec<Vec<K>> = vec![Vec::new(); self.shard_count()];
        for key in keys {
            let shard = self.owning_shard(key)?;
            per_shard[shard].push(key.clone());
        }
        Ok(per_shard.into_iter().enumerate().filter(|(_, keys)| !keys.is_empty()).collect())
    }

    /// Bounded aggregate over `keys` (blocking form of
    /// [`submit_aggregate`](RuntimeHandle::submit_aggregate)): the
    /// constraint dispatch — including the Relative probe →
    /// local-certificates → derived-budget refinement — is the shared
    /// [`AggregatePlan`], literally the same state machine the
    /// synchronous façade folds with, so the two cannot drift.
    pub fn aggregate(
        &self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<AggregateOutcome<K>, RuntimeError> {
        match self.wait_ticket(self.submit_aggregate(kind, keys, constraint, now)?)? {
            Outcome::Aggregate(outcome) => Ok(outcome),
            _ => unreachable!("aggregate tickets settle as aggregate outcomes"),
        }
    }

    /// Snapshot deployment metrics (blocking form of
    /// [`submit_metrics`](RuntimeHandle::submit_metrics)).
    pub fn metrics(&self) -> Result<RuntimeMetrics<K>, RuntimeError> {
        match self.wait_ticket(self.submit_metrics()?)? {
            Outcome::Metrics(metrics) => Ok(metrics),
            _ => unreachable!("metrics tickets settle as metrics outcomes"),
        }
    }

    /// Open a push subscription and wait for its acknowledgement: the
    /// live subscription ticket plus the cached snapshot at subscribe
    /// time. Pushes are then harvested from the completion queue like any
    /// other completion (`poll`/`wait`), tagged with the returned ticket.
    pub fn subscribe(
        &self,
        key: &K,
        filter: PushFilter,
        now: TimeMs,
    ) -> Result<(Ticket, Interval), RuntimeError> {
        let ticket = self.submit_subscribe(key, filter, now)?;
        match self.wait_ticket(ticket)? {
            Outcome::Subscribed { interval } => Ok((ticket, interval)),
            Outcome::SubscriptionEnded => Err(RuntimeError::ActorGone),
            _ => unreachable!("subscription tickets stream subscription outcomes"),
        }
    }

    /// Close a live subscription and wait for the acknowledgement:
    /// whether the shard still had it registered. The subscription
    /// ticket itself settles with [`Outcome::SubscriptionEnded`].
    pub fn unsubscribe(&self, sub: Ticket) -> Result<bool, RuntimeError> {
        match self.wait_ticket(self.submit_unsubscribe(sub)?)? {
            Outcome::Unsubscribed { existed } => Ok(existed),
            _ => unreachable!("unsubscribe tickets settle as unsubscribed outcomes"),
        }
    }

    /// Grant or renew a TTL lease on `key` (blocking form of
    /// [`submit_lease`](RuntimeHandle::submit_lease)).
    pub fn lease(&self, key: &K, cfg: LeaseConfig, now: TimeMs) -> Result<(), RuntimeError> {
        match self.wait_ticket(self.submit_lease(key, cfg, now)?)? {
            Outcome::Leased { .. } => Ok(()),
            _ => unreachable!("lease tickets settle as leased outcomes"),
        }
    }

    /// Release the lease on `key`, returning whether one existed
    /// (blocking form of
    /// [`submit_release_lease`](RuntimeHandle::submit_release_lease)).
    pub fn release_lease(&self, key: &K, now: TimeMs) -> Result<bool, RuntimeError> {
        match self.wait_ticket(self.submit_release_lease(key, now)?)? {
            Outcome::Leased { active } => Ok(active),
            _ => unreachable!("lease tickets settle as leased outcomes"),
        }
    }

    /// Advance the push-side logical clock on every shard — lapsed
    /// leases widen their intervals and push — and return the merged
    /// push report (blocking form of
    /// [`submit_advance_time`](RuntimeHandle::submit_advance_time)).
    pub fn advance_time(&self, now: TimeMs) -> Result<PushReport, RuntimeError> {
        match self.wait_ticket(self.submit_advance_time(now)?)? {
            Outcome::TimeAdvanced(report) => Ok(report),
            _ => unreachable!("tick tickets settle as time-advanced outcomes"),
        }
    }

    /// Snapshot push-side occupancy (subscribers, watched keys, leases)
    /// without advancing any clock.
    pub fn push_stats(&self) -> Result<PushReport, RuntimeError> {
        match self.wait_ticket(self.queue.submit_tick(None)?)? {
            Outcome::TimeAdvanced(report) => Ok(report),
            _ => unreachable!("tick tickets settle as time-advanced outcomes"),
        }
    }
}
