//! The actor-per-shard runtime: launch, handle, actors, shutdown.

use std::collections::HashSet;
use std::hash::Hash;
use std::sync::Arc;
use std::thread;

use apcache_core::{Interval, TimeMs};
use apcache_queries::AggregateKind;
use apcache_shard::plan::{empty_aggregate, evaluate_constraint};
use apcache_shard::{ShardRouter, ShardedStore};
use apcache_store::{
    AggregateOutcome, Constraint, PrecisionStore, ReadResult, StoreError, StoreMetrics,
    WriteOutcome,
};

use crate::error::RuntimeError;
use crate::mailbox::{mailbox, MailboxSender};
use crate::oneshot::{reply_slot, ReplyReceiver};
use crate::request::Request;

/// Tuning for [`Runtime::launch_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Mailbox capacity per shard actor: how many requests may queue
    /// before senders park (the backpressure bound). Values below 1 are
    /// treated as 1.
    pub mailbox_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { mailbox_capacity: DEFAULT_MAILBOX_CAPACITY }
    }
}

/// Default per-shard mailbox capacity: deep enough to keep an actor busy
/// under bursts, shallow enough that a stalled shard pushes back on its
/// producers within microseconds of work.
pub const DEFAULT_MAILBOX_CAPACITY: usize = 1_024;

/// What the handle shares: the ring, one mailbox sender per shard, and
/// the immutable key directory (the runtime serves a fixed key population
/// registered at build time; elastic key insertion is a follow-on).
struct Shared<K> {
    router: ShardRouter,
    senders: Vec<MailboxSender<Request<K>>>,
    keys: HashSet<K>,
}

/// The owner of the shard actors: spawns them on launch, joins them on
/// shutdown. Cloneable [`RuntimeHandle`]s (from
/// [`handle`](Runtime::handle)) do the actual serving from any thread.
pub struct Runtime<K> {
    shared: Arc<Shared<K>>,
    threads: Vec<thread::JoinHandle<PrecisionStore<K>>>,
}

impl<K: Hash + Ord + Clone + Send + 'static> Runtime<K> {
    /// Launch one actor thread per shard of `store`, with default tuning.
    pub fn launch(store: ShardedStore<K>) -> Result<Self, RuntimeError> {
        Runtime::launch_with(store, RuntimeConfig::default())
    }

    /// Launch one actor thread per shard of `store`. Each actor takes
    /// ownership of its `PrecisionStore` — the store stays single-threaded
    /// and lock-free; all concurrency lives in the mailboxes.
    pub fn launch_with(store: ShardedStore<K>, cfg: RuntimeConfig) -> Result<Self, RuntimeError> {
        let keys: HashSet<K> = store.keys().cloned().collect();
        let (router, shards) = store.into_parts();
        let mut senders: Vec<MailboxSender<Request<K>>> = Vec::with_capacity(shards.len());
        let mut threads: Vec<thread::JoinHandle<PrecisionStore<K>>> =
            Vec::with_capacity(shards.len());
        for (i, mut shard) in shards.into_iter().enumerate() {
            let (tx, rx) = mailbox::<Request<K>>(cfg.mailbox_capacity);
            let spawned =
                thread::Builder::new().name(format!("apcache-shard-{i}")).spawn(move || {
                    while let Some(request) = rx.recv() {
                        serve(&mut shard, request);
                    }
                    shard
                });
            let thread = match spawned {
                Ok(thread) => thread,
                Err(e) => {
                    // Unwind a partial launch: closing the mailboxes ends
                    // the already-running actors (recv returns None), so
                    // no thread is left parked forever.
                    for sender in &senders {
                        sender.close();
                    }
                    for thread in threads {
                        let _ = thread.join();
                    }
                    return Err(RuntimeError::Spawn(e.to_string()));
                }
            };
            senders.push(tx);
            threads.push(thread);
        }
        Ok(Runtime { shared: Arc::new(Shared { router, senders, keys }), threads })
    }

    /// A cheaply-cloneable serving handle (share freely across client
    /// threads).
    pub fn handle(&self) -> RuntimeHandle<K> {
        RuntimeHandle { shared: Arc::clone(&self.shared) }
    }

    /// Number of shard actors.
    pub fn shard_count(&self) -> usize {
        self.shared.senders.len()
    }

    /// Drain and stop the actors: every request enqueued before this call
    /// is fully processed (acknowledged per shard), further sends fail
    /// with [`RuntimeError::Closed`], and the actor threads are joined.
    pub fn shutdown(mut self) -> Result<(), RuntimeError> {
        self.finish().map(|_| ())
    }

    /// Shut down (draining, as [`shutdown`](Runtime::shutdown)) and
    /// reassemble the synchronous [`ShardedStore`] from the actors'
    /// stores — the runtime's exact final state, e.g. for conformance
    /// checks or for relaunching with a different topology.
    pub fn into_store(mut self) -> Result<ShardedStore<K>, RuntimeError> {
        let shards = self.finish()?;
        ShardedStore::from_parts(self.shared.router.clone(), shards).map_err(RuntimeError::Store)
    }

    /// Common shutdown path: mark the end of each mailbox, wait for the
    /// drain acknowledgements, join the actors.
    fn finish(&mut self) -> Result<Vec<PrecisionStore<K>>, RuntimeError> {
        let mut acks = Vec::with_capacity(self.shared.senders.len());
        for sender in &self.shared.senders {
            let (tx, rx) = reply_slot();
            // A closed mailbox means this shard already finished.
            if sender.send(Request::Shutdown { ack: tx }).is_ok() {
                acks.push(rx);
            }
            sender.close();
        }
        for ack in acks {
            // ReplyDropped here means the actor died before draining; the
            // join below surfaces it.
            let _ = ack.recv();
        }
        let mut shards = Vec::with_capacity(self.threads.len());
        for thread in self.threads.drain(..) {
            shards.push(thread.join().map_err(|_| RuntimeError::ActorGone)?);
        }
        Ok(shards)
    }
}

impl<K> Drop for Runtime<K> {
    fn drop(&mut self) {
        // Explicit shutdown()/into_store() already drained `threads`; an
        // abandoned runtime still closes its mailboxes (draining them) and
        // joins, so actor threads never outlive the owner.
        for sender in &self.shared.senders {
            sender.close();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// One shard actor's request dispatch (runs on the actor thread; the
/// actor never blocks on anything but its own mailbox, so actors cannot
/// deadlock each other).
fn serve<K: Hash + Ord + Clone>(store: &mut PrecisionStore<K>, request: Request<K>) {
    match request {
        Request::Read { key, constraint, now, reply } => {
            reply.send(store.read(&key, constraint, now));
        }
        Request::Write { key, value, now, reply } => {
            let outcome = store.write(&key, value, now);
            if let Some(reply) = reply {
                reply.send(outcome);
            }
        }
        Request::WriteBatch { items, now, reply } => {
            reply.send(store.write_batch(&items, now));
        }
        Request::Aggregate { kind, keys, constraint, now, reply } => {
            reply.send(store.aggregate(kind, &keys, constraint, now));
        }
        Request::Metrics { reply } => {
            reply.send(store.metrics().clone());
        }
        Request::Shutdown { ack } => {
            ack.send(());
        }
    }
}

/// Deployment metrics gathered from the actors: per-shard snapshots plus
/// their merged rollup (owned clones — unlike
/// [`ShardedMetrics`](apcache_shard::ShardedMetrics), the live counters
/// stay on the actor threads).
#[derive(Debug, Clone)]
pub struct RuntimeMetrics<K> {
    per_shard: Vec<StoreMetrics<K>>,
    merged: StoreMetrics<K>,
}

impl<K: Ord + Clone> RuntimeMetrics<K> {
    /// The merged rollup: every counter summed across shards.
    pub fn merged(&self) -> &StoreMetrics<K> {
        &self.merged
    }

    /// Per-shard snapshots, indexed by shard id.
    pub fn per_shard(&self) -> &[StoreMetrics<K>] {
        &self.per_shard
    }

    /// Metrics of one shard.
    pub fn shard(&self, shard: usize) -> Option<&StoreMetrics<K>> {
        self.per_shard.get(shard)
    }
}

/// A cheaply-cloneable client of the runtime: routes every request to the
/// owning shard's mailbox and blocks on the reply (or, for
/// [`write_nowait`](RuntimeHandle::write_nowait), only on mailbox
/// admission). Clone one per client thread.
pub struct RuntimeHandle<K> {
    shared: Arc<Shared<K>>,
}

impl<K> Clone for RuntimeHandle<K> {
    fn clone(&self) -> Self {
        RuntimeHandle { shared: Arc::clone(&self.shared) }
    }
}

impl<K: Hash + Ord + Clone + Send + 'static> RuntimeHandle<K> {
    /// Number of shard actors.
    pub fn shard_count(&self) -> usize {
        self.shared.senders.len()
    }

    /// The shard id that owns `key`.
    pub fn shard_of(&self, key: &K) -> usize {
        self.shared.router.route(key) as usize
    }

    /// Whether `key` was registered when the runtime launched.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shared.keys.contains(key)
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.shared.keys.len()
    }

    /// Whether the runtime serves no sources.
    pub fn is_empty(&self) -> bool {
        self.shared.keys.is_empty()
    }

    /// Resolve the owning shard, rejecting unregistered keys before any
    /// message is sent (mirrors `ShardedStore`, which never charges a
    /// shard for an unroutable request).
    fn owning_shard(&self, key: &K) -> Result<usize, RuntimeError> {
        if !self.shared.keys.contains(key) {
            return Err(RuntimeError::Store(StoreError::UnknownKey));
        }
        Ok(self.shard_of(key))
    }

    /// Enqueue a request on `shard`'s mailbox, parking if it is full.
    fn send(&self, shard: usize, request: Request<K>) -> Result<(), RuntimeError> {
        self.shared.senders[shard].send(request).map_err(|_| RuntimeError::Closed)
    }

    /// Block on a reply, mapping an unfulfilled slot to the dead-actor
    /// error.
    fn wait<T>(rx: ReplyReceiver<Result<T, StoreError>>) -> Result<T, RuntimeError> {
        rx.recv().map_err(|_| RuntimeError::ActorGone)?.map_err(RuntimeError::Store)
    }

    /// Read `key` to the given precision on its owning shard (blocking).
    pub fn read(
        &self,
        key: &K,
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<ReadResult, RuntimeError> {
        let shard = self.owning_shard(key)?;
        let (tx, rx) = reply_slot();
        self.send(shard, Request::Read { key: key.clone(), constraint, now, reply: tx })?;
        Self::wait(rx)
    }

    /// Push a new exact value for `key` and wait for the outcome.
    pub fn write(&self, key: &K, value: f64, now: TimeMs) -> Result<WriteOutcome, RuntimeError> {
        let shard = self.owning_shard(key)?;
        let (tx, rx) = reply_slot();
        self.send(shard, Request::Write { key: key.clone(), value, now, reply: Some(tx) })?;
        Self::wait(rx)
    }

    /// Fire-and-forget write: validated and enqueued (parking while the
    /// shard's mailbox is full — that is the backpressure), then the
    /// caller moves on. The write is applied in mailbox order; a draining
    /// shutdown still processes it.
    pub fn write_nowait(&self, key: &K, value: f64, now: TimeMs) -> Result<(), RuntimeError> {
        if !value.is_finite() {
            return Err(RuntimeError::Store(
                apcache_core::error::ProtocolError::NonFiniteValue(value).into(),
            ));
        }
        let shard = self.owning_shard(key)?;
        self.send(shard, Request::Write { key: key.clone(), value, now, reply: None })
    }

    /// Apply a batch of writes with one routing pass: items are validated
    /// up front (unknown keys, non-finite values — a batch failing
    /// validation sends nothing), grouped by owning shard, scattered as
    /// one [`Request::WriteBatch`] per shard, and the outcomes gathered
    /// and summed. Shards apply their items in slice order, concurrently
    /// with each other.
    ///
    /// Unlike [`ShardedStore::write_batch`], atomicity covers only the
    /// validation phase: if the runtime is shut down mid-scatter, legs
    /// already accepted by their mailboxes are still applied (the drain
    /// guarantee) while the caller sees [`RuntimeError::Closed`].
    pub fn write_batch(
        &self,
        items: &[(K, f64)],
        now: TimeMs,
    ) -> Result<WriteOutcome, RuntimeError> {
        let mut per_shard: Vec<Vec<(K, f64)>> = vec![Vec::new(); self.shard_count()];
        for (key, value) in items {
            if !value.is_finite() {
                return Err(RuntimeError::Store(
                    apcache_core::error::ProtocolError::NonFiniteValue(*value).into(),
                ));
            }
            let shard = self.owning_shard(key)?;
            per_shard[shard].push((key.clone(), *value));
        }
        let mut pending = Vec::new();
        for (shard, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (tx, rx) = reply_slot();
            self.send(shard, Request::WriteBatch { items: batch, now, reply: tx })?;
            pending.push(rx);
        }
        let mut refreshes = 0;
        for rx in pending {
            refreshes += Self::wait(rx)?.refreshes;
        }
        Ok(WriteOutcome { refreshes })
    }

    /// Partition `keys` by owning shard (slice order preserved within each
    /// shard), validating every key up front.
    fn partition(&self, keys: &[K]) -> Result<Vec<(usize, Vec<K>)>, RuntimeError> {
        let mut per_shard: Vec<Vec<K>> = vec![Vec::new(); self.shard_count()];
        for key in keys {
            let shard = self.owning_shard(key)?;
            per_shard[shard].push(key.clone());
        }
        Ok(per_shard.into_iter().enumerate().filter(|(_, keys)| !keys.is_empty()).collect())
    }

    /// Scatter one shard-local aggregate leg per part (all legs enqueued
    /// before any reply is awaited, so the shards run them concurrently)
    /// and gather the partial answers in part order — the same order the
    /// synchronous `ShardedStore` folds, so merged answers and refresh
    /// lists come out identical. This is the runtime's
    /// [`plan::FanOut`](apcache_shard::plan::FanOut) primitive.
    fn scatter(
        &self,
        local_kind: AggregateKind,
        parts: &[(usize, Vec<K>)],
        split: &dyn Fn(usize) -> Constraint,
        now: TimeMs,
    ) -> Result<(Vec<Interval>, Vec<K>), RuntimeError> {
        let mut pending = Vec::with_capacity(parts.len());
        for (shard, keys) in parts {
            let (tx, rx) = reply_slot();
            self.send(
                *shard,
                Request::Aggregate {
                    kind: local_kind,
                    keys: keys.clone(),
                    constraint: split(keys.len()),
                    now,
                    reply: tx,
                },
            )?;
            pending.push(rx);
        }
        let mut partials = Vec::with_capacity(parts.len());
        let mut refreshed = Vec::new();
        for rx in pending {
            let outcome = Self::wait(rx)?;
            partials.push(outcome.answer);
            refreshed.extend(outcome.refreshed);
        }
        Ok((partials, refreshed))
    }

    /// Bounded aggregate over `keys`, scattered to the owning shard actors
    /// and gathered with the same interval arithmetic as
    /// [`ShardedStore::aggregate`]. The constraint dispatch — including
    /// the Relative probe → local-certificates → derived-budget
    /// refinement, which here runs as up to three scatter/gather rounds —
    /// is [`plan::evaluate_constraint`](apcache_shard::plan::evaluate_constraint),
    /// literally the same code the synchronous façade folds with, so the
    /// two cannot drift.
    pub fn aggregate(
        &self,
        kind: AggregateKind,
        keys: &[K],
        constraint: Constraint,
        now: TimeMs,
    ) -> Result<AggregateOutcome<K>, RuntimeError> {
        constraint.validate().map_err(RuntimeError::Store)?;
        if keys.is_empty() {
            return empty_aggregate(kind).map_err(RuntimeError::Store);
        }
        let parts = self.partition(keys)?;
        // All keys on one shard: delegate untouched, matching an unsharded
        // store bit-for-bit (also covers single-shard runtimes).
        if let [(shard, shard_keys)] = parts.as_slice() {
            let (tx, rx) = reply_slot();
            self.send(
                *shard,
                Request::Aggregate { kind, keys: shard_keys.clone(), constraint, now, reply: tx },
            )?;
            return Self::wait(rx);
        }
        evaluate_constraint(kind, constraint, keys.len(), &mut |local_kind, split| {
            self.scatter(local_kind, &parts, split, now)
        })
    }

    /// Snapshot deployment metrics: per-shard counters gathered from the
    /// actors plus their merged rollup.
    pub fn metrics(&self) -> Result<RuntimeMetrics<K>, RuntimeError> {
        let mut pending = Vec::with_capacity(self.shard_count());
        for shard in 0..self.shard_count() {
            let (tx, rx) = reply_slot();
            self.send(shard, Request::Metrics { reply: tx })?;
            pending.push(rx);
        }
        let mut per_shard = Vec::with_capacity(pending.len());
        for rx in pending {
            per_shard.push(rx.recv().map_err(|_| RuntimeError::ActorGone)?);
        }
        let mut merged = StoreMetrics::new();
        for m in &per_shard {
            merged.merge(m);
        }
        Ok(RuntimeMetrics { per_shard, merged })
    }
}
