//! One-shot reply slots for request/response over the mailboxes.
//!
//! Every blocking verb enqueues a request carrying a [`ReplySender`]; the
//! shard actor fulfills it and the caller blocks on the paired
//! [`ReplyReceiver`]. If the sender is dropped unfulfilled — the actor
//! exited or panicked with the request still queued — the receiver wakes
//! with [`ReplyDropped`] instead of hanging forever.

use std::sync::{Arc, Condvar, Mutex};

/// The reply's producing half was dropped without sending a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyDropped;

enum State<T> {
    Pending,
    Sent(T),
    Dropped,
}

struct Core<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// Create a connected reply pair.
pub fn reply_slot<T>() -> (ReplySender<T>, ReplyReceiver<T>) {
    let core = Arc::new(Core { state: Mutex::new(State::Pending), cv: Condvar::new() });
    (ReplySender { core: Arc::clone(&core) }, ReplyReceiver { core })
}

/// The fulfilling half, held inside the queued request.
pub struct ReplySender<T> {
    core: Arc<Core<T>>,
}

impl<T> ReplySender<T> {
    /// Fulfill the reply and wake the waiting caller. (The subsequent
    /// `Drop` of `self` is a no-op: it only marks *pending* slots as
    /// dropped, never overwrites a sent value.)
    pub fn send(self, value: T) {
        let mut state = self.core.state.lock().expect("reply lock poisoned");
        *state = State::Sent(value);
        drop(state);
        self.core.cv.notify_one();
    }
}

impl<T> Drop for ReplySender<T> {
    fn drop(&mut self) {
        let mut state = self.core.state.lock().expect("reply lock poisoned");
        if matches!(*state, State::Pending) {
            *state = State::Dropped;
            drop(state);
            self.core.cv.notify_one();
        }
    }
}

/// The waiting half, held by the caller.
pub struct ReplyReceiver<T> {
    core: Arc<Core<T>>,
}

impl<T> ReplyReceiver<T> {
    /// Block until the reply arrives (or its sender is dropped).
    pub fn recv(self) -> Result<T, ReplyDropped> {
        let mut state = self.core.state.lock().expect("reply lock poisoned");
        loop {
            match std::mem::replace(&mut *state, State::Dropped) {
                State::Sent(value) => return Ok(value),
                State::Dropped => return Err(ReplyDropped),
                State::Pending => {
                    *state = State::Pending;
                    state = self.core.cv.wait(state).expect("reply lock poisoned");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn send_then_recv() {
        let (tx, rx) = reply_slot();
        tx.send(42);
        assert_eq!(rx.recv(), Ok(42));
    }

    #[test]
    fn recv_blocks_until_sent() {
        let (tx, rx) = reply_slot();
        let t = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(20));
        assert!(!t.is_finished());
        tx.send("late");
        assert_eq!(t.join().unwrap(), Ok("late"));
    }

    #[test]
    fn dropped_sender_wakes_receiver_with_error() {
        let (tx, rx) = reply_slot::<u32>();
        let t = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(ReplyDropped));
    }
}
