//! Metric registry: interned label sets, atomic observation paths.
//!
//! Registration takes a `Mutex` and allocates; observation touches only
//! `Arc`-shared atomics. Re-registering the same `(name, labels)` pair
//! returns a handle to the same underlying cell, so independent layers
//! (runtime, wire server, benches) can look up a series without
//! coordinating ownership.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::expose::{Exposition, MetricKind};

/// Default latency buckets (seconds) for submit→completion histograms:
/// 1 µs … 1 s in a 1/2.5/5 decade pattern, plus the implicit `+Inf`.
pub const LATENCY_BUCKETS_SECONDS: [f64; 19] = [
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 0.1, 0.25, 0.5, 1.0,
];

/// Monotone integer counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Monotone floating-point counter (cost totals are `f64` in the paper's
/// Ω accounting, so integer counters would lose the fractional part).
/// Stored as `f64` bits in an `AtomicU64`, updated by compare-exchange.
#[derive(Clone)]
pub struct FloatCounter(Arc<AtomicU64>);

impl FloatCounter {
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Overwrite the accumulated value. Used when a counter mirrors an
    /// authoritative external total (e.g. a `StoreMetrics` rollup) and
    /// must agree with it bit-for-bit rather than re-accumulate.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Instantaneous signed gauge (mailbox depths, in-flight windows, …).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramCell {
    /// Upper bounds, strictly increasing; `counts` has one extra slot
    /// for the implicit `+Inf` bucket.
    bounds: Box<[f64]>,
    counts: Box<[AtomicU64]>,
    sum_bits: AtomicU64,
}

/// Fixed-bucket histogram. `observe` is a linear probe over the bound
/// array plus two atomic adds — no allocation, no lock.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    pub fn observe(&self, v: f64) {
        let cell = &self.0;
        let idx = cell.bounds.iter().position(|&b| v <= b).unwrap_or(cell.bounds.len());
        cell.counts[idx].fetch_add(1, Ordering::Relaxed);
        // The sum shares the float-counter CAS loop; histograms are off
        // the read hot path so contention here is negligible.
        let mut cur = cell.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match cell.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let cell = &self.0;
        HistogramSnapshot {
            bounds: cell.bounds.to_vec(),
            counts: cell.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum: f64::from_bits(cell.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a histogram's buckets (non-cumulative counts).
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub sum: f64,
}

impl HistogramSnapshot {
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

enum Series {
    Counter(Counter),
    FloatCounter(FloatCounter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Keyed by the interned, sorted label set so exposition order is
    /// deterministic without a sort at scrape time.
    series: BTreeMap<Vec<(String, String)>, Series>,
}

/// The process-wide (or runtime-wide) metric registry.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

fn intern_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    out.sort();
    out
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn register<F>(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: F,
    ) -> Series
    where
        F: FnOnce() -> Series,
    {
        let mut families = self.families.lock().unwrap();
        let family =
            families.entry(name).or_insert_with(|| Family { help, kind, series: BTreeMap::new() });
        assert!(family.kind == kind, "metric {name} re-registered with a different type");
        let cell = family.series.entry(intern_labels(labels)).or_insert_with(make);
        match cell {
            Series::Counter(c) => Series::Counter(c.clone()),
            Series::FloatCounter(c) => Series::FloatCounter(c.clone()),
            Series::Gauge(g) => Series::Gauge(g.clone()),
            Series::Histogram(h) => Series::Histogram(h.clone()),
        }
    }

    /// Register (or look up) a monotone integer counter.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        match self.register(name, help, MetricKind::Counter, labels, || {
            Series::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Series::Counter(c) => c,
            _ => panic!("metric {name} registered with a different cell type"),
        }
    }

    /// Register (or look up) a monotone floating-point counter.
    pub fn float_counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> FloatCounter {
        match self.register(name, help, MetricKind::Counter, labels, || {
            Series::FloatCounter(FloatCounter(Arc::new(AtomicU64::new(0f64.to_bits()))))
        }) {
            Series::FloatCounter(c) => c,
            _ => panic!("metric {name} registered with a different cell type"),
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, MetricKind::Gauge, labels, || {
            Series::Gauge(Gauge(Arc::new(AtomicI64::new(0))))
        }) {
            Series::Gauge(g) => g,
            _ => panic!("metric {name} registered with a different cell type"),
        }
    }

    /// Register (or look up) a fixed-bucket histogram. The bound slice is
    /// copied once at registration.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.register(name, help, MetricKind::Histogram, labels, || {
            let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Series::Histogram(Histogram(Arc::new(HistogramCell {
                bounds: bounds.to_vec().into_boxed_slice(),
                counts,
                sum_bits: AtomicU64::new(0f64.to_bits()),
            })))
        }) {
            Series::Histogram(h) => h,
            _ => panic!("metric {name} registered with a different cell type"),
        }
    }

    /// Render every registered family into `out`, families in name order
    /// and series in sorted-label order.
    pub fn render(&self, out: &mut Exposition) {
        let families = self.families.lock().unwrap();
        for (name, family) in families.iter() {
            out.family(name, family.kind, family.help);
            for (labels, series) in family.series.iter() {
                let labels: Vec<(&str, &str)> =
                    labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                match series {
                    Series::Counter(c) => out.sample(name, &labels, c.get() as f64),
                    Series::FloatCounter(c) => out.sample(name, &labels, c.get()),
                    Series::Gauge(g) => out.sample(name, &labels, g.get() as f64),
                    Series::Histogram(h) => out.histogram(name, &labels, &h.snapshot()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_by_name_and_labels() {
        let reg = Registry::new();
        let a = reg.counter("x_total", "x", &[("dir", "in")]);
        let b = reg.counter("x_total", "x", &[("dir", "in")]);
        let c = reg.counter("x_total", "x", &[("dir", "out")]);
        a.add(3);
        b.inc();
        c.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn float_counter_accumulates_exactly() {
        let reg = Registry::new();
        let c = reg.float_counter("cost_total", "cost", &[]);
        let mut expect = 0.0f64;
        for i in 0..100 {
            let v = 0.1 * i as f64;
            c.add(v);
            expect += v;
        }
        assert_eq!(c.get().to_bits(), expect.to_bits());
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let reg = Registry::new();
        let h = reg.histogram("lat", "latency", &[0.001, 0.01, 0.1], &[]);
        for v in [0.0005, 0.005, 0.005, 0.05, 5.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 2, 1, 1]);
        assert_eq!(snap.total(), 5);
        assert!((snap.sum - 5.0605).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("y_total", "y", &[]);
        let _ = reg.gauge("y_total", "y", &[]);
    }
}
