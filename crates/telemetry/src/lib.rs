//! Observability primitives for the apcache serving stack.
//!
//! The paper's argument is quantitative — the refresh cost rate Ω, the
//! value-initiated vs. query-initiated refresh split, and interval-width
//! convergence are the observables that show adaptive precision working —
//! so the serving layers need a way to surface those numbers to an
//! operator without stopping the world. This crate provides the three
//! pieces the rest of the workspace threads through its layers:
//!
//! * [`Registry`] — a lock-cheap registry of monotone [`Counter`]s,
//!   [`FloatCounter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s.
//!   Label sets are interned once at registration; after that every
//!   observation is a handful of atomic operations with no allocation
//!   and no lock.
//! * [`Exposition`] — a Prometheus-style text renderer (`# HELP` /
//!   `# TYPE` comment lines, deterministic label ordering) that the wire
//!   layer serves both as a wire-v3 `Exposition` verb and as plain-HTTP
//!   `GET /metrics` on the same listening door.
//! * [`TraceRing`] — a bounded ring buffer of structured
//!   [`TraceEvent`]s (submit, shard dispatch, aggregate round,
//!   completion, …) so a request's path through the runtime can be
//!   reconstructed after the fact.
//!
//! Everything here is `std`-only: atomics, `Mutex` at registration /
//! scrape time, and `String` rendering. No external crates.

mod expose;
mod registry;
mod trace;

pub use expose::{format_value, Exposition, MetricKind};
pub use registry::{
    Counter, FloatCounter, Gauge, Histogram, HistogramSnapshot, Registry, LATENCY_BUCKETS_SECONDS,
};
pub use trace::{TraceEvent, TraceKind, TraceRing};
