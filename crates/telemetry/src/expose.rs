//! Prometheus text-exposition rendering (format version 0.0.4).
//!
//! Deterministic by construction: callers emit families in a fixed
//! order and [`crate::Registry::render`] walks `BTreeMap`s, so two
//! scrapes of the same state produce byte-identical text (modulo the
//! counter values themselves).

use crate::registry::HistogramSnapshot;

/// Exposition metric type, written on the `# TYPE` line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Format a sample value the way the conformance tests expect: Rust's
/// shortest round-trip `Display`, so `text.parse::<f64>()` recovers the
/// exact bits that were rendered. `+Inf`/`-Inf`/`NaN` use the exposition
/// format's spellings.
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Incremental builder for one scrape's worth of exposition text.
#[derive(Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a metric family: `# HELP` then `# TYPE`.
    pub fn family(&mut self, name: &str, kind: MetricKind, help: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind.as_str());
        self.out.push('\n');
    }

    fn write_labels(&mut self, labels: &[(&str, &str)]) {
        if labels.is_empty() {
            return;
        }
        self.out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(k);
            self.out.push_str("=\"");
            self.out.push_str(&escape_label_value(v));
            self.out.push('"');
        }
        self.out.push('}');
    }

    /// Emit one sample line. Labels are written in the order given —
    /// callers pass them pre-sorted (the registry interns them sorted).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.write_labels(labels);
        self.out.push(' ');
        self.out.push_str(&format_value(value));
        self.out.push('\n');
    }

    /// Emit the cumulative `_bucket`/`_sum`/`_count` series for one
    /// histogram, with the implicit `+Inf` bucket last.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (i, count) in snap.counts.iter().enumerate() {
            cumulative += count;
            let le = match snap.bounds.get(i) {
                Some(b) => format_value(*b),
                None => "+Inf".to_string(),
            };
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", le.as_str()));
            self.sample(&bucket_name, &with_le, cumulative as f64);
        }
        self.sample(&format!("{name}_sum"), labels, snap.sum);
        self.sample(&format!("{name}_count"), labels, cumulative as f64);
    }

    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn renders_help_type_and_samples() {
        let reg = Registry::new();
        reg.counter("apcache_frames_total", "Frames moved.", &[("dir", "in")]).add(7);
        reg.counter("apcache_frames_total", "Frames moved.", &[("dir", "out")]).add(9);
        let mut exp = Exposition::new();
        reg.render(&mut exp);
        let text = exp.finish();
        assert!(text.contains("# HELP apcache_frames_total Frames moved.\n"));
        assert!(text.contains("# TYPE apcache_frames_total counter\n"));
        assert!(text.contains("apcache_frames_total{dir=\"in\"} 7\n"));
        assert!(text.contains("apcache_frames_total{dir=\"out\"} 9\n"));
        // Deterministic ordering: "in" sorts before "out".
        assert!(
            text.find("dir=\"in\"").unwrap() < text.find("dir=\"out\"").unwrap(),
            "series must render in sorted label order"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_with_inf() {
        let reg = Registry::new();
        let h = reg.histogram("apcache_lat_seconds", "Latency.", &[0.001, 0.01], &[]);
        h.observe(0.0001);
        h.observe(0.005);
        h.observe(42.0);
        let mut exp = Exposition::new();
        reg.render(&mut exp);
        let text = exp.finish();
        assert!(text.contains("apcache_lat_seconds_bucket{le=\"0.001\"} 1\n"));
        assert!(text.contains("apcache_lat_seconds_bucket{le=\"0.01\"} 2\n"));
        assert!(text.contains("apcache_lat_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("apcache_lat_seconds_count 3\n"));
    }

    #[test]
    fn value_formatting_round_trips() {
        for v in [0.0, 1.0, 0.1, 1e-6, 123456.789, f64::MAX] {
            let parsed: f64 = format_value(v).parse().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits());
        }
        assert_eq!(format_value(f64::INFINITY), "+Inf");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut exp = Exposition::new();
        exp.sample("m", &[("k", "a\"b\\c\nd")], 1.0);
        assert_eq!(exp.finish(), "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }
}
