//! Bounded structured trace ring.
//!
//! Every runtime owns one ring; the runtime and wire layers push
//! lifecycle events into it and `trace_dump` hands back a point-in-time
//! copy. The ring is deliberately tiny machinery: a `Mutex<VecDeque>`
//! with a hard capacity, because trace events are off the hot path
//! (submission/completion, not per-key reads) and a lock keeps the
//! ordering guarantee simple — events dump in the order they were
//! recorded, with a monotone sequence number that survives eviction.

use std::collections::VecDeque;
use std::sync::Mutex;

/// What happened. Shard/round/verb context rides in [`TraceEvent`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// An operation was submitted and assigned a ticket.
    Submit,
    /// A leg of an operation was dispatched to a shard mailbox.
    Dispatch,
    /// A multi-round aggregate started another scatter round.
    AggregateRound,
    /// The operation's completion was settled.
    Completion,
    /// A connection frame failed to decode.
    DecodeFault,
    /// An idle connection was force-closed at listener teardown.
    ForcedClose,
    /// A connection was accepted and registered with a serving door.
    ConnOpen,
    /// A connection closed (peer hangup, drain, or fatal fault).
    ConnClose,
}

impl TraceKind {
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Submit => "submit",
            TraceKind::Dispatch => "dispatch",
            TraceKind::AggregateRound => "aggregate_round",
            TraceKind::Completion => "completion",
            TraceKind::DecodeFault => "decode_fault",
            TraceKind::ForcedClose => "forced_close",
            TraceKind::ConnOpen => "conn_open",
            TraceKind::ConnClose => "conn_close",
        }
    }
}

/// One recorded lifecycle event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Monotone per-ring sequence number (not reset by eviction).
    pub seq: u64,
    pub kind: TraceKind,
    /// Ticket id the event belongs to; `0` for connection-level events.
    pub ticket: u64,
    /// Verb name (`"read"`, `"aggregate"`, …) or `""` when not tied to a verb.
    pub verb: &'static str,
    /// Shard id for dispatch events, aggregate round index for
    /// `AggregateRound`, `None` otherwise.
    pub shard: Option<u32>,
}

struct Inner {
    next_seq: u64,
    buf: VecDeque<TraceEvent>,
}

/// Bounded ring of [`TraceEvent`]s; oldest events are evicted first.
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl TraceRing {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { next_seq: 0, buf: VecDeque::new() }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record an event, evicting the oldest if the ring is full.
    /// Returns the sequence number assigned.
    pub fn record(
        &self,
        kind: TraceKind,
        ticket: u64,
        verb: &'static str,
        shard: Option<u32>,
    ) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
        }
        inner.buf.push_back(TraceEvent { seq, kind, ticket, verb, shard });
        seq
    }

    /// Copy out the current contents, oldest first.
    pub fn dump(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().buf.iter().cloned().collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_sequence() {
        let ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.record(TraceKind::Submit, i, "read", None);
        }
        let dump = ring.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ring.recorded(), 5);
    }

    #[test]
    fn dump_preserves_order_and_fields() {
        let ring = TraceRing::new(8);
        ring.record(TraceKind::Submit, 7, "aggregate", None);
        ring.record(TraceKind::Dispatch, 7, "aggregate", Some(2));
        ring.record(TraceKind::AggregateRound, 7, "aggregate", Some(1));
        ring.record(TraceKind::Completion, 7, "aggregate", None);
        let dump = ring.dump();
        assert_eq!(dump.len(), 4);
        assert_eq!(dump[1].shard, Some(2));
        assert_eq!(dump[3].kind, TraceKind::Completion);
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
