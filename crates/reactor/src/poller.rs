//! The readiness surface the reactor workers park on: one [`Poller`]
//! trait, three implementations.
//!
//! * [`EpollPoller`] (Linux) — `epoll` for fd-backed connections plus an
//!   `eventfd` wake channel;
//! * [`PollFdPoller`] (any Unix) — `poll(2)` over a `pollfd` array with
//!   a self-pipe wake channel, kept as a second fd-backed door so the
//!   portable syscall path stays exercised in CI;
//! * [`MailboxPoller`] (anywhere) — a condvar mailbox with no kernel
//!   involvement, fed by *ready hooks* (see
//!   [`LoopbackStream::set_ready_hook`](apcache_wire::LoopbackStream::set_ready_hook)),
//!   so the reactor runs — and is tested — without real sockets.
//!
//! Every poller also carries a **side channel for hook-driven tokens**:
//! connections without a file descriptor (the loopback transport)
//! register no fd; their readiness arrives through the closure returned
//! by [`Poller::ready_marker`], which marks the token and wakes the
//! poller. The fd pollers merge that set into their kernel events, so
//! one worker can drive TCP sockets and loopback pipes side by side.

use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A raw file descriptor (`c_int` on every supported platform). Aliased
/// here so the crate's public API compiles on targets where the fd-based
/// pollers themselves are compiled out.
pub type RawFd = i32;

/// What a connection wants to hear about. Write interest is only
/// registered while a connection has unflushed output (level-triggered
/// pollers would otherwise spin on always-writable sockets).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Interest {
    /// Readable (and hangup/error, which all pollers always report).
    Read,
    /// Readable or writable.
    ReadWrite,
}

/// One poll round's outcome.
#[derive(Debug, Default)]
pub struct PollEvents {
    /// Tokens with pending readiness (kernel events and hook marks,
    /// merged; duplicates possible — the reactor's per-token handling is
    /// idempotent).
    pub ready: Vec<u64>,
    /// Whether this round was ended by an explicit wake (completions
    /// landed, a connection was injected) rather than only by socket
    /// readiness or the timeout.
    pub woken: bool,
}

/// A readiness multiplexer a reactor worker parks on.
///
/// Tokens are caller-assigned, unique for the lifetime of the poller
/// (the reactor never reuses one). `fd: None` registers a hook-driven
/// token: the poller will only learn about it through its
/// [`ready_marker`](Poller::ready_marker) closure.
pub trait Poller: Send {
    /// Start watching `token`.
    fn register(&mut self, token: u64, fd: Option<RawFd>, interest: Interest) -> io::Result<()>;

    /// Change the interest set of a registered token.
    fn reregister(&mut self, token: u64, fd: Option<RawFd>, interest: Interest) -> io::Result<()>;

    /// Stop watching `token`. Must be called *before* the connection's
    /// fd is closed (fd numbers are reused by the kernel).
    fn deregister(&mut self, token: u64, fd: Option<RawFd>) -> io::Result<()>;

    /// Park until readiness, a wake, or `timeout` — whichever first.
    fn poll(&mut self, events: &mut PollEvents, timeout: Duration) -> io::Result<()>;

    /// A thread-safe closure that wakes a parked `poll` call. Safe to
    /// invoke from any thread, any time, even after the poller is gone
    /// (the wake channel is refcounted).
    fn waker(&self) -> Arc<dyn Fn() + Send + Sync>;

    /// A thread-safe closure that marks one token ready *and* wakes the
    /// poller — the bridge a ready hook (loopback byte arrival) or a
    /// connection injector uses.
    fn ready_marker(&self) -> Arc<dyn Fn(u64) + Send + Sync>;
}

/// Which poller a reactor should use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PollerKind {
    /// Pick per platform: epoll on Linux, `poll(2)` on other Unix,
    /// the mailbox elsewhere.
    #[default]
    Auto,
    /// Linux `epoll` (falls back to `Auto`'s choice off-Linux).
    Epoll,
    /// POSIX `poll(2)` (falls back to the mailbox off-Unix).
    PollFd,
    /// The portable condvar mailbox. fd-backed connections degrade to
    /// timeout-paced polling under it (documented on
    /// [`MailboxPoller`]); hook-driven connections are exact.
    Mailbox,
}

/// Construct the poller `kind` resolves to on this platform.
pub fn build_poller(kind: PollerKind) -> io::Result<Box<dyn Poller>> {
    match kind {
        #[cfg(target_os = "linux")]
        PollerKind::Auto | PollerKind::Epoll => Ok(Box::new(EpollPoller::new()?)),
        #[cfg(all(unix, not(target_os = "linux")))]
        PollerKind::Auto | PollerKind::Epoll => Ok(Box::new(PollFdPoller::new()?)),
        #[cfg(not(unix))]
        PollerKind::Auto | PollerKind::Epoll => Ok(Box::new(MailboxPoller::new())),
        #[cfg(unix)]
        PollerKind::PollFd => Ok(Box::new(PollFdPoller::new()?)),
        #[cfg(not(unix))]
        PollerKind::PollFd => Ok(Box::new(MailboxPoller::new())),
        PollerKind::Mailbox => Ok(Box::new(MailboxPoller::new())),
    }
}

/// Clamp a `Duration` to a non-negative `c_int` millisecond count for
/// the kernel pollers, rounding up so a 1ns timeout still parks.
#[cfg(unix)]
fn timeout_ms(timeout: Duration) -> i32 {
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    if ms == 0 && !timeout.is_zero() {
        1
    } else {
        ms
    }
}

// ---------------------------------------------------------------------
// Shared hook-token side channel.
// ---------------------------------------------------------------------

/// The hook-driven half every poller carries: a token list marked by
/// foreign threads, plus the poller's wake closure to interrupt a park.
///
/// A `Vec` rather than a set: marks arrive once per client write, so
/// this is the hottest cross-thread path in the crate, and the worker
/// sort+dedups the ready list anyway. Consecutive duplicate marks (one
/// pipelining client bursting writes) are folded by a last-token check;
/// non-adjacent duplicates just ride along.
#[derive(Default)]
struct HookSet {
    marked: Mutex<Vec<u64>>,
}

impl HookSet {
    /// Mark `token`; returns whether the set was empty — the only
    /// transition that can find the poller parked (both fd pollers
    /// skip the park while marks are pending), so the only one where
    /// the caller needs to fire the wake channel.
    fn mark(&self, token: u64) -> bool {
        let mut marked = self.marked.lock().expect("hook set poisoned");
        if marked.last() == Some(&token) {
            return false;
        }
        let was_empty = marked.is_empty();
        marked.push(token);
        was_empty
    }

    fn drain_into(&self, out: &mut Vec<u64>) {
        let mut marked = self.marked.lock().expect("hook set poisoned");
        out.append(&mut marked);
    }

    fn is_empty(&self) -> bool {
        self.marked.lock().expect("hook set poisoned").is_empty()
    }
}

// ---------------------------------------------------------------------
// EpollPoller — Linux.
// ---------------------------------------------------------------------

/// The Linux poller: `epoll` (level-triggered) over fd-backed
/// connections, an `eventfd` as the wake channel, and the shared hook
/// set for fd-less tokens.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epoll: crate::sys::Epoll,
    wake: Arc<crate::sys::EventFd>,
    hooks: Arc<HookSet>,
    /// Scratch buffer reused across polls.
    events: Vec<crate::sys::EpollEvent>,
}

/// The token the wake eventfd reports under; connection tokens start at
/// 1, so 0 can never collide (`Reactor` allocates from 1).
#[cfg(target_os = "linux")]
const WAKE_TOKEN: u64 = u64::MAX;

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// Create the epoll instance and its eventfd wake channel.
    pub fn new() -> io::Result<Self> {
        let epoll = crate::sys::Epoll::new()?;
        let wake = Arc::new(crate::sys::EventFd::new()?);
        epoll.add(wake.raw(), crate::sys::EPOLLIN, WAKE_TOKEN)?;
        Ok(EpollPoller { epoll, wake, hooks: Arc::new(HookSet::default()), events: Vec::new() })
    }

    fn events_mask(interest: Interest) -> u32 {
        match interest {
            Interest::Read => crate::sys::EPOLLIN,
            Interest::ReadWrite => crate::sys::EPOLLIN | crate::sys::EPOLLOUT,
        }
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn register(&mut self, token: u64, fd: Option<RawFd>, interest: Interest) -> io::Result<()> {
        match fd {
            Some(fd) => self.epoll.add(fd, Self::events_mask(interest), token),
            None => Ok(()), // hook-driven: readiness arrives via ready_marker
        }
    }

    fn reregister(&mut self, token: u64, fd: Option<RawFd>, interest: Interest) -> io::Result<()> {
        match fd {
            Some(fd) => self.epoll.modify(fd, Self::events_mask(interest), token),
            None => Ok(()),
        }
    }

    fn deregister(&mut self, _token: u64, fd: Option<RawFd>) -> io::Result<()> {
        match fd {
            Some(fd) => self.epoll.delete(fd),
            None => Ok(()),
        }
    }

    fn poll(&mut self, events: &mut PollEvents, timeout: Duration) -> io::Result<()> {
        // Pending hook marks mean there is work *now*: collect kernel
        // events without parking.
        let timeout_ms = if self.hooks.is_empty() { timeout_ms(timeout) } else { 0 };
        self.events.clear();
        self.events.resize(256, crate::sys::EpollEvent { events: 0, data: 0 });
        let n = self.epoll.wait(&mut self.events, timeout_ms)?;
        for event in &self.events[..n] {
            let token = event.data;
            if token == WAKE_TOKEN {
                self.wake.drain();
                events.woken = true;
            } else {
                events.ready.push(token);
            }
        }
        self.hooks.drain_into(&mut events.ready);
        Ok(())
    }

    fn waker(&self) -> Arc<dyn Fn() + Send + Sync> {
        let wake = Arc::clone(&self.wake);
        Arc::new(move || wake.wake())
    }

    fn ready_marker(&self) -> Arc<dyn Fn(u64) + Send + Sync> {
        let wake = Arc::clone(&self.wake);
        let hooks = Arc::clone(&self.hooks);
        Arc::new(move |token| {
            if hooks.mark(token) {
                wake.wake();
            }
        })
    }
}

// ---------------------------------------------------------------------
// PollFdPoller — any Unix.
// ---------------------------------------------------------------------

/// The portable-Unix poller: one `poll(2)` call over the registered
/// fds, a nonblocking self-pipe as the wake channel. O(n) per round
/// where epoll is O(ready) — fine for hundreds of connections and for
/// keeping this syscall path covered by CI; the 10k door uses epoll.
#[cfg(unix)]
pub struct PollFdPoller {
    pipe: Arc<crate::sys::SelfPipe>,
    hooks: Arc<HookSet>,
    /// token → (fd, interest) for fd-backed registrations.
    fds: Vec<(u64, RawFd, Interest)>,
    /// Scratch pollfd array rebuilt per round (entry 0 is the pipe).
    scratch: Vec<crate::sys::PollFd>,
}

#[cfg(unix)]
impl PollFdPoller {
    /// Create the poller and its self-pipe wake channel.
    pub fn new() -> io::Result<Self> {
        Ok(PollFdPoller {
            pipe: Arc::new(crate::sys::SelfPipe::new()?),
            hooks: Arc::new(HookSet::default()),
            fds: Vec::new(),
            scratch: Vec::new(),
        })
    }
}

#[cfg(unix)]
impl Poller for PollFdPoller {
    fn register(&mut self, token: u64, fd: Option<RawFd>, interest: Interest) -> io::Result<()> {
        if let Some(fd) = fd {
            self.fds.push((token, fd, interest));
        }
        Ok(())
    }

    fn reregister(&mut self, token: u64, _fd: Option<RawFd>, interest: Interest) -> io::Result<()> {
        for entry in &mut self.fds {
            if entry.0 == token {
                entry.2 = interest;
            }
        }
        Ok(())
    }

    fn deregister(&mut self, token: u64, _fd: Option<RawFd>) -> io::Result<()> {
        self.fds.retain(|entry| entry.0 != token);
        Ok(())
    }

    fn poll(&mut self, events: &mut PollEvents, timeout: Duration) -> io::Result<()> {
        use crate::sys::{PollFd, POLLERR, POLLHUP, POLLIN, POLLOUT};
        self.scratch.clear();
        self.scratch.push(PollFd { fd: self.pipe.reader_fd(), events: POLLIN, revents: 0 });
        for &(_, fd, interest) in &self.fds {
            let mask = match interest {
                Interest::Read => POLLIN,
                Interest::ReadWrite => POLLIN | POLLOUT,
            };
            self.scratch.push(PollFd { fd, events: mask, revents: 0 });
        }
        let timeout_ms = if self.hooks.is_empty() { timeout_ms(timeout) } else { 0 };
        let n = crate::sys::sys_poll(&mut self.scratch, timeout_ms)?;
        if n > 0 {
            if self.scratch[0].revents != 0 {
                self.pipe.drain();
                events.woken = true;
            }
            for (entry, fd) in self.scratch[1..].iter().zip(&self.fds) {
                if entry.revents & (POLLIN | POLLOUT | POLLERR | POLLHUP) != 0 {
                    events.ready.push(fd.0);
                }
            }
        }
        self.hooks.drain_into(&mut events.ready);
        Ok(())
    }

    fn waker(&self) -> Arc<dyn Fn() + Send + Sync> {
        let pipe = Arc::clone(&self.pipe);
        Arc::new(move || pipe.wake())
    }

    fn ready_marker(&self) -> Arc<dyn Fn(u64) + Send + Sync> {
        let pipe = Arc::clone(&self.pipe);
        let hooks = Arc::clone(&self.hooks);
        Arc::new(move |token| {
            if hooks.mark(token) {
                pipe.wake();
            }
        })
    }
}

// ---------------------------------------------------------------------
// MailboxPoller — anywhere.
// ---------------------------------------------------------------------

/// The no-kernel poller: a condvar mailbox of marked tokens. Exact for
/// hook-driven connections (loopback pipes mark their token on every
/// byte arrival). fd-backed connections registered here have no
/// readiness source, so they **degrade to paced polling**: each round
/// reports them all ready after a short bounded park, and the reactor's
/// nonblocking reads turn false positives into cheap `WouldBlock`s.
/// Correct everywhere, efficient where hooks exist — the tests' and
/// benches' poller, and the fallback for platforms without the fd
/// pollers.
pub struct MailboxPoller {
    mailbox: Arc<Mailbox>,
    /// Hookless (fd-backed) tokens that need paced-poll degradation.
    paced: Vec<u64>,
    /// Bounded park while paced tokens exist.
    paced_timeout: Duration,
}

#[derive(Default)]
struct Mailbox {
    state: Mutex<MailboxState>,
    bell: Condvar,
}

#[derive(Default)]
struct MailboxState {
    /// Marked tokens, duplicates possible (the worker dedups). Same
    /// rationale as [`HookSet`]: a Vec push beats a hashed insert on
    /// the per-write hot path.
    marked: Vec<u64>,
    woken: bool,
}

impl Mailbox {
    fn wake(&self) {
        let mut state = self.state.lock().expect("mailbox poisoned");
        state.woken = true;
        self.bell.notify_all();
    }

    fn mark(&self, token: u64) {
        let mut state = self.state.lock().expect("mailbox poisoned");
        if state.marked.last() == Some(&token) {
            return;
        }
        // The poll loop only parks while `marked` is empty (checked
        // under this lock), so the empty→non-empty transition is the
        // only mark that needs to ring the bell.
        if state.marked.is_empty() {
            self.bell.notify_all();
        }
        state.marked.push(token);
    }
}

impl MailboxPoller {
    /// Create an empty mailbox poller.
    pub fn new() -> Self {
        MailboxPoller {
            mailbox: Arc::new(Mailbox::default()),
            paced: Vec::new(),
            paced_timeout: Duration::from_millis(5),
        }
    }
}

impl Default for MailboxPoller {
    fn default() -> Self {
        Self::new()
    }
}

impl Poller for MailboxPoller {
    fn register(&mut self, token: u64, fd: Option<RawFd>, _interest: Interest) -> io::Result<()> {
        if fd.is_some() {
            self.paced.push(token);
        }
        Ok(())
    }

    fn reregister(
        &mut self,
        _token: u64,
        _fd: Option<RawFd>,
        _interest: Interest,
    ) -> io::Result<()> {
        Ok(())
    }

    fn deregister(&mut self, token: u64, _fd: Option<RawFd>) -> io::Result<()> {
        self.paced.retain(|&t| t != token);
        Ok(())
    }

    fn poll(&mut self, events: &mut PollEvents, timeout: Duration) -> io::Result<()> {
        let timeout = if self.paced.is_empty() { timeout } else { timeout.min(self.paced_timeout) };
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.mailbox.state.lock().expect("mailbox poisoned");
        while state.marked.is_empty() && !state.woken {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            let (guard, _) =
                self.mailbox.bell.wait_timeout(state, remaining).expect("mailbox poisoned");
            state = guard;
        }
        events.ready.append(&mut state.marked);
        events.woken = state.woken;
        state.woken = false;
        drop(state);
        // Paced degradation: report every hookless token after the park.
        events.ready.extend_from_slice(&self.paced);
        Ok(())
    }

    fn waker(&self) -> Arc<dyn Fn() + Send + Sync> {
        let mailbox = Arc::clone(&self.mailbox);
        Arc::new(move || mailbox.wake())
    }

    fn ready_marker(&self) -> Arc<dyn Fn(u64) + Send + Sync> {
        let mailbox = Arc::clone(&self.mailbox);
        Arc::new(move |token| mailbox.mark(token))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut poller: Box<dyn Poller>) {
        // A pure-timeout poll returns empty after the park.
        let mut events = PollEvents::default();
        let started = std::time::Instant::now();
        poller.poll(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.ready.is_empty());
        assert!(!events.woken);
        assert!(started.elapsed() >= Duration::from_millis(5));
        // A waker fired from another thread interrupts the park.
        let waker = poller.waker();
        let t = std::thread::spawn(move || waker());
        let mut events = PollEvents::default();
        poller.poll(&mut events, Duration::from_secs(10)).unwrap();
        assert!(events.woken);
        t.join().unwrap();
        // A hook-driven token registered with no fd surfaces via the
        // marker, exactly once per mark.
        poller.register(7, None, Interest::Read).unwrap();
        let marker = poller.ready_marker();
        marker(7);
        let mut events = PollEvents::default();
        poller.poll(&mut events, Duration::from_secs(10)).unwrap();
        assert!(events.ready.contains(&7));
        let mut events = PollEvents::default();
        poller.poll(&mut events, Duration::from_millis(5)).unwrap();
        assert!(events.ready.is_empty(), "marks are consumed, not sticky");
        poller.deregister(7, None).unwrap();
    }

    #[test]
    fn mailbox_poller_contract() {
        exercise(Box::new(MailboxPoller::new()));
    }

    #[cfg(unix)]
    #[test]
    fn pollfd_poller_contract() {
        exercise(Box::new(PollFdPoller::new().unwrap()));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_poller_contract() {
        exercise(Box::new(EpollPoller::new().unwrap()));
    }

    #[cfg(unix)]
    #[test]
    fn fd_pollers_see_socket_readiness() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        for kind in [PollerKind::Epoll, PollerKind::PollFd] {
            let mut poller = build_poller(kind).unwrap();
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller.register(3, Some(server.as_raw_fd()), Interest::Read).unwrap();
            // Quiet socket: the park times out with no events.
            let mut events = PollEvents::default();
            poller.poll(&mut events, Duration::from_millis(10)).unwrap();
            assert!(events.ready.is_empty(), "{kind:?}");
            // Bytes from the peer surface the token.
            client.write_all(b"hi").unwrap();
            let mut events = PollEvents::default();
            poller.poll(&mut events, Duration::from_secs(10)).unwrap();
            assert!(events.ready.contains(&3), "{kind:?}");
            poller.deregister(3, Some(server.as_raw_fd())).unwrap();
        }
    }

    #[test]
    fn auto_kind_builds_on_this_platform() {
        build_poller(PollerKind::Auto).unwrap();
    }
}
