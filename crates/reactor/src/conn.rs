//! One event-driven connection: a state machine (`Sniff → Http |
//! Frames → Draining → closed`) over reusable buffers, whose frame
//! dispatch mirrors [`serve_pipelined`](apcache_wire::serve_pipelined)
//! arm for arm — same verbs submitted, same immediate answers, same
//! faults, same subscription bookkeeping — so the reactor door is
//! bit-identical to the threaded door on the wire.

use std::collections::HashMap;
use std::hash::Hash;
use std::io::{self, Read, Write};

use apcache_runtime::{Outcome, RuntimeHandle, Ticket};
use apcache_telemetry::TraceKind;
use apcache_wire::{
    decode_frame, encode_framed, requires_v3, split_frame, v3_fault, ConnStats, FaultKind,
    WireError, WireFault, WireKey, WireMessage, WireRequest, WireResponse, VERSION,
};

use crate::buffer::{ReadBuf, WriteBuf};
use crate::poller::Interest;

/// Where a ticket's answer goes: which connection, under which request
/// id, encoded at which protocol version.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RouteEntry {
    /// The owning connection's token.
    pub conn: u64,
    /// The request id the answer echoes.
    pub request_id: u64,
    /// The protocol version the answer is encoded at.
    pub version: u8,
}

/// Hasher for the worker-local maps, whose keys are all sequentially
/// issued integers (tickets from this worker's handle, poller tokens):
/// the identity hash lands consecutive keys in consecutive slots, so
/// the live window of a 16k-deep pipeline occupies a contiguous ring of
/// the table instead of a SipHash scatter — inserts, harvest lookups,
/// and removes walk memory in order. Never use for adversarial or
/// structured keys; these maps see neither.
#[derive(Clone, Copy, Default)]
pub(crate) struct SeqHash(u64);

impl std::hash::Hasher for SeqHash {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }

    fn write_usize(&mut self, n: usize) {
        self.0 = n as u64;
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys: a bytewise FNV-1a, never hit
        // by the maps below (their keys hash via the integer paths).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

impl std::hash::BuildHasher for SeqHash {
    type Hasher = SeqHash;

    fn build_hasher(&self) -> SeqHash {
        SeqHash(0)
    }
}

/// The worker-local ticket router. Single-threaded: a mapping is always
/// inserted in the same loop iteration as its submit, strictly before
/// any harvest — the completion-before-mapping race the threaded door
/// solves by blocking on a channel cannot happen here.
pub(crate) type RouteMap = HashMap<Ticket, RouteEntry, SeqHash>;

/// The connection lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum State {
    /// Fresh: waiting for the first four bytes to tell frames from HTTP.
    Sniff,
    /// A plain-HTTP scraper: accumulate the request head, answer, close.
    Http,
    /// The frame protocol, pipelined.
    Frames,
    /// No more requests will be read. `ack` carries the id/version of a
    /// client `Shutdown` to acknowledge once everything in flight has
    /// been answered; `None` is a plain disconnect (or a served scrape).
    Draining {
        /// Pending `ShutdownAck` correlation, if any.
        ack: Option<(u64, u8)>,
    },
}

/// One connection owned by a reactor worker.
pub(crate) struct Conn<S> {
    /// The poller token (unique per reactor, never reused).
    pub token: u64,
    /// The nonblocking stream.
    pub stream: S,
    pub(crate) state: State,
    rd: ReadBuf,
    wr: WriteBuf,
    /// Live subscriptions by the wire id their `Subscribe` arrived
    /// under — the id pushes go out tagged with, and the handle an
    /// `Unsubscribe` names.
    subs: HashMap<u64, Ticket>,
    /// Mapped route entries owned by this connection (subscriptions
    /// count until their `SubscriptionEnded` retires them).
    pub in_flight: usize,
    /// The same per-connection registry series the threaded door keeps.
    pub stats: ConnStats,
    /// Whether the poller registration currently includes write
    /// interest (kept in sync by the worker; write interest is asserted
    /// only while `wr` holds unflushed bytes).
    pub want_write: bool,
    /// The peer is unreachable (write error): close without flushing.
    dead: bool,
    /// Whether this connection's `Shutdown` ack has been queued — the
    /// signal that starts the reactor-wide drain grace.
    acked_shutdown: bool,
    /// The frame pump stopped on an exhausted submit budget with
    /// decodable bytes still buffered: the worker must re-pump this
    /// connection once completions free room, without waiting for new
    /// readiness.
    stalled: bool,
    /// Frame/byte counts accumulated since the last
    /// [`publish_stats`](Conn::publish_stats): the registry series are
    /// per-connection atomics on cold cache lines, so the hot pump and
    /// ship paths count in plain fields (the `Conn` line is already in
    /// hand) and the worker publishes once per round per touched
    /// connection.
    pend_frames_in: u64,
    pend_bytes_in: u64,
    pend_frames_out: u64,
    pend_bytes_out: u64,
    /// Response/push frames harvested onto this connection in the
    /// current worker round — the sweep turns counts above one into the
    /// coalescing counter (those frames shared one socket write) and
    /// resets it.
    pub(crate) frames_this_round: u64,
    /// The peer has closed its write side. Draining starts only once
    /// the pump has dispatched every buffered frame — a budget stall
    /// must not drop requests that arrived before the FIN.
    saw_eof: bool,
}

impl<S: Read + Write> Conn<S> {
    pub(crate) fn new(token: u64, stream: S, stats: ConnStats) -> Self {
        Conn {
            token,
            stream,
            state: State::Sniff,
            rd: ReadBuf::new(),
            wr: WriteBuf::new(),
            subs: HashMap::new(),
            in_flight: 0,
            stats,
            want_write: false,
            dead: false,
            acked_shutdown: false,
            stalled: false,
            saw_eof: false,
            pend_frames_in: 0,
            pend_bytes_in: 0,
            pend_frames_out: 0,
            pend_bytes_out: 0,
            frames_this_round: 0,
        }
    }

    /// Publish batched frame/byte counts and the in-flight window to
    /// this connection's registry series. Called by the worker once per
    /// round per touched connection (and at close), so scrapes lag the
    /// wire by less than one loop round instead of costing the pump an
    /// atomic per frame.
    pub(crate) fn publish_stats(&mut self) {
        if self.pend_frames_in > 0 {
            self.stats.frames_in.add(std::mem::take(&mut self.pend_frames_in));
            self.stats.bytes_in.add(std::mem::take(&mut self.pend_bytes_in));
        }
        if self.pend_frames_out > 0 {
            self.stats.frames_out.add(std::mem::take(&mut self.pend_frames_out));
            self.stats.bytes_out.add(std::mem::take(&mut self.pend_bytes_out));
        }
        self.stats.window.set(self.in_flight as i64);
    }

    /// Whether the last pump stopped on an exhausted submit budget with
    /// complete frames still buffered. The worker keeps such
    /// connections on its re-pump list until the backlog clears.
    pub(crate) fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// The poller interest this connection currently needs.
    pub(crate) fn interest(&self) -> Interest {
        if self.wr.is_empty() {
            Interest::Read
        } else {
            Interest::ReadWrite
        }
    }

    /// Whether the connection has nothing left to do and can be closed:
    /// draining, everything answered, everything flushed.
    pub(crate) fn should_close(&self) -> bool {
        self.dead
            || (matches!(self.state, State::Draining { ack: None })
                && self.in_flight == 0
                && self.wr.is_empty())
    }

    /// Whether this connection's `Shutdown` was just acknowledged (the
    /// reactor-wide stop trigger). Reads destructively.
    pub(crate) fn take_acked_shutdown(&mut self) -> bool {
        std::mem::take(&mut self.acked_shutdown)
    }

    /// Readiness arrived: pull bytes until the stream would block, then
    /// run the state machine over whatever accumulated. `budget` is the
    /// worker's remaining submit allowance this round — the pump stops
    /// decoding (bytes stay buffered) when it runs out, so the worker
    /// never parks on a full shard mailbox inside `submit`.
    pub(crate) fn on_readable<K>(
        &mut self,
        handle: &RuntimeHandle<K>,
        route: &mut RouteMap,
        budget: &mut usize,
    ) where
        K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
    {
        if matches!(self.state, State::Draining { .. }) || self.dead {
            self.stalled = false;
            return;
        }
        match self.rd.fill_from(&mut self.stream) {
            Ok(eof) => self.saw_eof |= eof,
            // A torn connection reads like an EOF: answers already in
            // flight still execute on the actors, they just have
            // nowhere to go — exactly the threaded door's contract.
            Err(_) => self.saw_eof = true,
        }
        self.advance(handle, route, budget);
        if self.saw_eof && !self.stalled && !matches!(self.state, State::Draining { .. }) {
            self.enter_draining(None, handle);
        }
    }

    /// Run the state machine over the buffered bytes.
    fn advance<K>(&mut self, handle: &RuntimeHandle<K>, route: &mut RouteMap, budget: &mut usize)
    where
        K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
    {
        loop {
            match self.state {
                State::Sniff => {
                    if self.rd.len() < 4 {
                        return;
                    }
                    // The frame protocol's first four bytes are a u32
                    // length prefix whose little-endian value for ASCII
                    // "GET " is far beyond MAX_FRAME_LEN — the two
                    // vocabularies cannot collide.
                    self.state =
                        if &self.rd.bytes()[..4] == b"GET " { State::Http } else { State::Frames };
                }
                State::Http => {
                    if !self.rd.bytes().windows(4).any(|w| w == b"\r\n\r\n")
                        && self.rd.len() <= 8_192
                    {
                        return; // head still arriving (8k cap: answer what we have)
                    }
                    self.respond_http(handle);
                    let n = self.rd.len();
                    self.rd.consume(n);
                    self.state = State::Draining { ack: None };
                    return;
                }
                State::Frames => {
                    if !self.pump_frames(handle, route, budget) {
                        return;
                    }
                }
                State::Draining { .. } => return,
            }
        }
    }

    /// Split and dispatch every complete frame in the read buffer, up
    /// to the worker's remaining submit `budget`. Returns `true` if the
    /// state changed (re-enter the machine).
    fn pump_frames<K>(
        &mut self,
        handle: &RuntimeHandle<K>,
        route: &mut RouteMap,
        budget: &mut usize,
    ) -> bool
    where
        K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
    {
        self.stalled = false;
        loop {
            if *budget == 0 {
                // Out of submit room: leave the remaining bytes
                // buffered and let the worker re-pump once harvested
                // completions free mailbox slots. Decoding past this
                // point would park the whole worker on a full shard
                // mailbox — one stalled socket must not stop the loop.
                self.stalled = true;
                return false;
            }
            let (body, consumed) = match split_frame(self.rd.bytes()) {
                Ok(split) => split,
                Err(WireError::Truncated { .. }) => return false, // need more bytes
                // An oversized length prefix means the stream cannot be
                // trusted any further — fatal to the connection.
                Err(_) => {
                    self.on_decode_fault(handle);
                    return true;
                }
            };
            self.pend_frames_in += 1;
            self.pend_bytes_in += consumed as u64;
            let frame = match decode_frame::<K>(body) {
                Ok(frame) => frame,
                Err(_) => {
                    self.rd.consume(consumed);
                    self.on_decode_fault(handle);
                    return true;
                }
            };
            self.rd.consume(consumed);
            let (request_id, version) = (frame.request_id, frame.version);
            let request = match frame.msg {
                WireMessage::Request(request) => request,
                WireMessage::Refresh(_)
                | WireMessage::Exact(_)
                | WireMessage::Response(_)
                | WireMessage::Push(_) => {
                    let fault = WireFault::new(
                        FaultKind::Unsupported,
                        "this endpoint serves requests; push frames have no meaning here",
                    );
                    self.ship_response::<K>(version, request_id, WireResponse::Error(fault));
                    continue;
                }
            };
            if requires_v3(&request) && version < VERSION {
                self.ship_response::<K>(version, request_id, WireResponse::Error(v3_fault()));
                continue;
            }
            let submitted = match request {
                WireRequest::Read { key, constraint, now } => {
                    handle.submit_read(&key, constraint, now)
                }
                WireRequest::Write { key, value, now } => handle.submit_write(&key, value, now),
                WireRequest::WriteBatch { items, now } => handle.submit_write_batch(&items, now),
                WireRequest::Aggregate { kind, keys, constraint, now } => {
                    handle.submit_aggregate(kind, &keys, constraint, now)
                }
                WireRequest::Metrics => handle.submit_metrics(),
                WireRequest::Subscribe { key, filter, now } => {
                    if version < VERSION {
                        // Pre-v3 peers have no Push frame in their
                        // vocabulary; refuse rather than stream frames
                        // the peer cannot decode.
                        self.ship_response::<K>(
                            version,
                            request_id,
                            WireResponse::Error(WireFault::new(
                                FaultKind::Unsupported,
                                "push subscriptions require protocol v3",
                            )),
                        );
                        continue;
                    }
                    let submitted = handle.submit_subscribe(&key, filter, now);
                    if let Ok(ticket) = &submitted {
                        self.subs.insert(request_id, *ticket);
                    }
                    submitted
                }
                WireRequest::Unsubscribe { sub } => match self.subs.remove(&sub) {
                    Some(ticket) => handle.submit_unsubscribe(ticket),
                    None => {
                        self.ship_response::<K>(
                            version,
                            request_id,
                            WireResponse::Unsubscribed { existed: false },
                        );
                        continue;
                    }
                },
                WireRequest::Lease { key, cfg, now } => handle.submit_lease(&key, cfg, now),
                WireRequest::ReleaseLease { key, now } => handle.submit_release_lease(&key, now),
                WireRequest::AdvanceTime { now } => handle.submit_advance_time(now),
                // Migration verbs are control-plane and run inline, like
                // the threaded door: no later frame on this connection
                // can race the export.
                WireRequest::KeyList => {
                    self.ship_response(
                        version,
                        request_id,
                        WireResponse::Keys(handle.sorted_keys()),
                    );
                    continue;
                }
                WireRequest::ExportKeys { keys } => {
                    let response = match handle.export_key_states(&keys) {
                        Ok(states) => WireResponse::Exported(states),
                        Err(e) => WireResponse::Error(WireFault::from(e)),
                    };
                    self.ship_response(version, request_id, response);
                    continue;
                }
                WireRequest::ImportKeys { states } => {
                    let response = match handle.import_key_states(states) {
                        Ok(()) => WireResponse::<K>::Imported,
                        Err(e) => WireResponse::Error(WireFault::from(e)),
                    };
                    self.ship_response(version, request_id, response);
                    continue;
                }
                WireRequest::Exposition => handle.submit_exposition(),
                WireRequest::PushStats => handle.submit_push_stats(),
                WireRequest::Shutdown => {
                    // Frames after a Shutdown are not served (the
                    // threaded reader breaks here too).
                    self.enter_draining(Some((request_id, version)), handle);
                    return true;
                }
            };
            match submitted {
                Ok(ticket) => {
                    route.insert(ticket, RouteEntry { conn: self.token, request_id, version });
                    self.in_flight += 1;
                    *budget -= 1;
                }
                Err(e) => self.ship_response::<K>(
                    version,
                    request_id,
                    WireResponse::Error(WireFault::from(e)),
                ),
            }
        }
    }

    /// A frame failed to decode: count it, trace it, drain.
    fn on_decode_fault<K>(&mut self, handle: &RuntimeHandle<K>)
    where
        K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
    {
        self.stats.decode_faults.inc();
        handle.telemetry().trace().record(TraceKind::DecodeFault, 0, "", None);
        self.enter_draining(None, handle);
    }

    /// Stop reading. Cancels subscriptions the client left open: each
    /// cancel makes the actor drop the subscription's sink, whose
    /// `SubscriptionEnded` completion retires this connection's route
    /// entry — without it a draining connection would wait forever on
    /// tickets that stream but never settle. The cancel acks themselves
    /// are never routed and are dropped by the worker as orphans.
    pub(crate) fn enter_draining<K>(&mut self, ack: Option<(u64, u8)>, handle: &RuntimeHandle<K>)
    where
        K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
    {
        if matches!(self.state, State::Draining { .. }) {
            return;
        }
        self.state = State::Draining { ack };
        for (_, ticket) in self.subs.drain() {
            let _ = handle.submit_unsubscribe(ticket);
        }
    }

    /// If draining with a pending `Shutdown` ack and everything in
    /// flight has been answered, queue the `ShutdownAck` — always the
    /// connection's last frame, exactly like the threaded drainer.
    pub(crate) fn maybe_ack_shutdown(&mut self) {
        if let State::Draining { ack: Some((request_id, version)) } = self.state {
            if self.in_flight == 0 {
                self.ship_response::<String>(version, request_id, WireResponse::ShutdownAck);
                self.state = State::Draining { ack: None };
                self.acked_shutdown = true;
            }
        }
    }

    /// Encode one completion outcome under its stored correlation.
    /// Mirrors the threaded drainer's outcome table exactly.
    pub(crate) fn ship_outcome<K>(
        &mut self,
        outcome: Result<Outcome<K>, apcache_runtime::RuntimeError>,
        request_id: u64,
        version: u8,
    ) where
        K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
    {
        let msg = match outcome {
            Ok(Outcome::Read(result)) => WireMessage::Response(WireResponse::Read(result)),
            Ok(Outcome::Write(outcome)) => WireMessage::Response(WireResponse::Write(outcome)),
            Ok(Outcome::Aggregate(outcome)) => WireMessage::Response(WireResponse::Aggregate {
                answer: outcome.answer,
                refreshed: outcome.refreshed,
            }),
            Ok(Outcome::Metrics(metrics)) => {
                WireMessage::Response(WireResponse::Metrics(metrics.merged().clone()))
            }
            Ok(Outcome::Subscribed { interval }) => {
                WireMessage::Response(WireResponse::Subscribed { interval })
            }
            // The server-initiated frame: a subscribed key's interval
            // changed, multiplexed under the subscription's wire id.
            Ok(Outcome::Push(event)) => WireMessage::Push(event),
            // Terminal subscription completion: the route entry is
            // already retired; no frame goes out.
            Ok(Outcome::SubscriptionEnded) => return,
            Ok(Outcome::Unsubscribed { existed }) => {
                WireMessage::Response(WireResponse::Unsubscribed { existed })
            }
            Ok(Outcome::Leased { active }) => {
                WireMessage::Response(WireResponse::Leased { active })
            }
            Ok(Outcome::TimeAdvanced(report)) => {
                WireMessage::Response(WireResponse::TimeAdvanced(report))
            }
            Ok(Outcome::Exposition(text)) => WireMessage::Response(WireResponse::Exposition(text)),
            Err(e) => WireMessage::Response(WireResponse::Error(WireFault::from(e))),
        };
        self.ship(version, request_id, &msg);
    }

    /// Fault every still-mapped request on this connection — the
    /// lost-ticket fallback (`ActorGone`), same message as the threaded
    /// drainer.
    pub(crate) fn fault_in_flight(&mut self, request_id: u64, version: u8) {
        let fault =
            WireFault::new(FaultKind::ActorGone, "the serving runtime lost this request's ticket");
        self.ship_response::<String>(version, request_id, WireResponse::Error(fault));
    }

    /// Retire one routed ticket (everything except streaming pushes).
    pub(crate) fn retire(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    fn ship_response<K>(&mut self, version: u8, request_id: u64, response: WireResponse<K>)
    where
        K: WireKey + Ord + Clone,
    {
        self.ship(version, request_id, &WireMessage::Response(response));
    }

    /// Encode one frame into the write buffer and count it — the
    /// reactor's equivalent of the threaded door's `ship`.
    fn ship<K>(&mut self, version: u8, request_id: u64, msg: &WireMessage<K>)
    where
        K: WireKey + Ord + Clone,
    {
        let n = encode_framed(version, request_id, msg, self.wr.vec());
        self.pend_frames_out += 1;
        self.pend_bytes_out += n as u64;
    }

    /// Flush queued bytes. Returns `false` if the peer is gone (the
    /// connection should be reaped).
    pub(crate) fn flush(&mut self) -> bool {
        if self.dead {
            return false;
        }
        match self.wr.flush_to(&mut self.stream) {
            Ok(_) => true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => true,
            Err(_) => {
                self.dead = true;
                false
            }
        }
    }

    /// Answer one buffered plain-HTTP request: `GET /metrics` gets the
    /// full Prometheus text exposition (format 0.0.4), anything else a
    /// 404. One request, then close — scrapers reconnect per scrape.
    fn respond_http<K>(&mut self, handle: &RuntimeHandle<K>)
    where
        K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
    {
        let head = self.rd.bytes();
        let request_line = head.split(|&b| b == b'\r').next().unwrap_or(&[]);
        let path = std::str::from_utf8(request_line)
            .ok()
            .and_then(|line| line.split_whitespace().nth(1))
            .unwrap_or("");
        let (status, body) = if path == "/metrics" || path.starts_with("/metrics?") {
            handle
                .telemetry()
                .registry()
                .counter(
                    "apcache_http_scrapes_total",
                    "Plain-HTTP GET /metrics scrapes served.",
                    &[],
                )
                .inc();
            match handle.render_exposition() {
                Ok(text) => ("200 OK", text),
                Err(e) => ("500 Internal Server Error", format!("exposition failed: {e}\n")),
            }
        } else {
            ("404 Not Found", "only /metrics is served over HTTP here\n".to_string())
        };
        let response = format!(
            "HTTP/1.1 {status}\r\n\
             Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\n\
             Connection: close\r\n\r\n{}",
            body.len(),
            body
        );
        self.wr.extend(response.as_bytes());
        self.pend_bytes_out += response.len() as u64;
    }
}
