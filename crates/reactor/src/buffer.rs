//! Reusable per-connection byte buffers: a compacting read accumulator
//! frames are split out of, and a write accumulator flushed down
//! nonblocking sockets in partial steps. Both keep their allocations
//! across rounds — the per-round cost of a busy connection is the bytes
//! moved, not fresh `Vec`s.

use std::io::{self, Read, Write};

/// The largest headroom one growth step adds (and so the most one
/// `read` call asks for). Large enough that a deep pipelined window
/// drains in a few syscalls, small enough that 10k idle connections
/// don't pin hundreds of megabytes.
pub const READ_CHUNK: usize = 16 * 1024;

/// The smallest growth step. Connections trickling small frames stay
/// at this footprint instead of paying [`READ_CHUNK`] each — with
/// thousands of connections resident, per-connection buffer size is
/// cache pressure, not just memory.
const MIN_CHUNK: usize = 1024;

/// The inbound accumulator: bytes land at the tail, frames are consumed
/// off the head, and the consumed prefix is compacted away once it
/// outgrows half the buffer (amortized O(1) per byte).
///
/// The backing `Vec`'s length is the zero-initialized extent, grown
/// geometrically in steps between `MIN_CHUNK` and [`READ_CHUNK`];
/// live bytes are `[start..end]`. Keeping the extent stable means the
/// zero-fill is paid once per growth, not once per `read` call.
#[derive(Debug, Default)]
pub struct ReadBuf {
    buf: Vec<u8>,
    /// Bytes `[..start]` are consumed; `[start..end]` are live.
    start: usize,
    /// Bytes `[end..]` are zeroed headroom for the next read.
    end: usize,
}

impl ReadBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        ReadBuf::default()
    }

    /// The unconsumed bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Number of unconsumed bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mark `n` bytes consumed off the head.
    pub fn consume(&mut self, n: usize) {
        self.start += n;
        debug_assert!(self.start <= self.end);
        if self.start == self.end {
            // Fully drained — the common case after a pump: reset for
            // free, no bytes move.
            self.start = 0;
            self.end = 0;
        } else if self.start > 4096 && self.start * 2 >= self.end {
            // Compact once the dead prefix dominates, so the buffer
            // never creeps unboundedly while staying O(1) amortized.
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
    }

    /// Read from `stream` until it would block, returns EOF, or errors.
    ///
    /// Returns `Ok(true)` if the peer has closed (EOF seen), `Ok(false)`
    /// if the stream is merely drained for now. Bytes read before either
    /// outcome are kept. `Interrupted` is retried, `WouldBlock` ends the
    /// loop — everything else is the connection's error.
    pub fn fill_from<S: Read>(&mut self, stream: &mut S) -> io::Result<bool> {
        loop {
            if self.end == self.buf.len() {
                // Out of headroom: grow geometrically (current size as
                // the step), bounded by the chunk limits.
                let grow = self.buf.len().clamp(MIN_CHUNK, READ_CHUNK);
                self.buf.resize(self.buf.len() + grow, 0);
            }
            match stream.read(&mut self.buf[self.end..]) {
                Ok(0) => return Ok(true),
                Ok(n) => self.end += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
    }
}

/// The outbound accumulator: responses are encoded straight into it
/// (coalescing — many frames, one buffer) and flushed down the socket
/// in as many partial writes as the kernel accepts.
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    /// Bytes `[..sent]` are already on the wire.
    sent: usize,
}

impl WriteBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        WriteBuf::default()
    }

    /// Whether every queued byte has been flushed.
    pub fn is_empty(&self) -> bool {
        self.sent == self.buf.len()
    }

    /// Append raw bytes to the tail.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The queue tail frames are encoded into directly.
    pub fn vec(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Write queued bytes until done or the socket would block.
    ///
    /// Returns `Ok(true)` when the buffer is fully flushed (and reset
    /// for reuse), `Ok(false)` when bytes remain — reassert write
    /// interest and retry on the next readiness.
    pub fn flush_to<S: Write>(&mut self, stream: &mut S) -> io::Result<bool> {
        while self.sent < self.buf.len() {
            match stream.write(&self.buf[self.sent..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.sent += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.sent = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Read that yields scripted results.
    struct Script(Vec<io::Result<Vec<u8>>>);
    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.0.pop() {
                Some(Ok(mut bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    if n < bytes.len() {
                        // Didn't fit this call: requeue the remainder.
                        bytes.drain(..n);
                        self.0.push(Ok(bytes));
                    }
                    Ok(n)
                }
                Some(Err(e)) => Err(e),
                None => Ok(0),
            }
        }
    }

    #[test]
    fn read_buf_accumulates_consumes_and_compacts() {
        let mut rb = ReadBuf::new();
        // Scripted in pop order: data, Interrupted (retried), data, WouldBlock.
        let mut stream = Script(vec![
            Err(io::ErrorKind::WouldBlock.into()),
            Ok(b"world".to_vec()),
            Err(io::ErrorKind::Interrupted.into()),
            Ok(b"hello ".to_vec()),
        ]);
        assert!(!rb.fill_from(&mut stream).unwrap(), "WouldBlock is not EOF");
        assert_eq!(rb.bytes(), b"hello world");
        rb.consume(6);
        assert_eq!(rb.bytes(), b"world");
        // EOF surfaces as Ok(true).
        let mut eof = Script(vec![]);
        assert!(rb.fill_from(&mut eof).unwrap());
        // Compaction: consume past the threshold and the dead prefix goes.
        let mut rb = ReadBuf::new();
        let mut big = Script(vec![Err(io::ErrorKind::WouldBlock.into()), Ok(vec![7u8; 10_000])]);
        rb.fill_from(&mut big).unwrap();
        rb.consume(9_000);
        assert_eq!(rb.len(), 1_000);
        assert_eq!(rb.start, 0, "compacted");
        assert!(rb.bytes().iter().all(|&b| b == 7));
    }

    /// A Write that accepts `cap` bytes per call, then WouldBlocks once.
    struct Choked {
        accepted: Vec<u8>,
        cap: usize,
        block_next: bool,
    }
    impl Write for Choked {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.cap);
            self.accepted.extend_from_slice(&buf[..n]);
            self.block_next = true;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_flushes_partially_and_resumes() {
        let mut wb = WriteBuf::new();
        wb.extend(b"0123456789");
        let mut sink = Choked { accepted: Vec::new(), cap: 4, block_next: false };
        assert!(!wb.flush_to(&mut sink).unwrap(), "choked mid-buffer");
        assert!(!wb.is_empty());
        assert!(!wb.flush_to(&mut sink).unwrap());
        assert!(wb.flush_to(&mut sink).unwrap(), "resumed to completion");
        assert!(wb.is_empty());
        assert_eq!(sink.accepted, b"0123456789");
        // The buffer is reusable after a full flush.
        wb.extend(b"ab");
        sink.cap = 16;
        sink.block_next = false;
        assert!(wb.flush_to(&mut sink).unwrap());
        assert_eq!(&sink.accepted[10..], b"ab");
    }
}
