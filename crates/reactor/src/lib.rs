//! # apcache-reactor
//!
//! An **event-driven server core** for the wire protocol: a small fixed
//! pool of worker threads drives thousands of pipelined connections
//! through `epoll` / `poll(2)` readiness (or a portable condvar
//! mailbox), in front of the actor runtime's ticketed surface.
//!
//! The threaded door ([`serve_connections`](apcache_wire::serve_connections))
//! spends two OS threads per connection — reader plus drainer — which
//! tops out around the platform's thread budget long before the paper's
//! workloads do. This crate serves the **same contract with a constant
//! thread count**:
//!
//! * [`serve_reactor`] accepts on a listener and is bit-identical on
//!   the wire to `serve_connections`: v1/v2/v3 version echo, pipelined
//!   out-of-order replies, push subscriptions with per-subscription
//!   ordering, `Unsupported` faults for pre-v3 peers, plain-HTTP
//!   `GET /metrics` sniffed off the first four bytes, subscription
//!   cancel on disconnect, and a bounded drain grace after the first
//!   client `Shutdown` (`tests/reactor_conformance.rs` holds the two
//!   doors frame-for-frame equal);
//! * each worker owns its connections outright — poller, buffers,
//!   ticket routes, a private [`RuntimeHandle`](apcache_runtime::RuntimeHandle)
//!   clone — so the whole data path is lock-free across connections and
//!   completions are harvested in batches, **coalescing** every frame
//!   that became ready in one round into one socket write per
//!   connection (`apcache_push_frames_coalesced_total` counts the
//!   savings; `apcache_connections_open` and
//!   `apcache_reactor_wakeups_total` watch the pool);
//! * the [`Poller`] trait isolates the platform: `epoll` on Linux,
//!   `poll(2)` on other Unix, and a [`MailboxPoller`] everywhere else —
//!   the last fed by ready hooks, so the in-process
//!   [`LoopbackStream`](apcache_wire::LoopbackStream) transport drives
//!   the reactor with **no sockets or fd limits at all** (how the 10k
//!   connection bench runs in CI).
//!
//! The only `unsafe` in the crate is the syscall shim in its private
//! `sys` module (five hand-declared POSIX/Linux calls; the workspace is
//! std-only by charter).
//!
//! ## Quick example
//!
//! ```
//! use apcache_reactor::{serve_reactor, ReactorConfig};
//! use apcache_runtime::Runtime;
//! use apcache_shard::ShardedStoreBuilder;
//! use apcache_store::Constraint;
//! use apcache_wire::{RemoteStoreClient, TcpTransport};
//!
//! let store = ShardedStoreBuilder::new()
//!     .shards(2)
//!     .source("cpu".to_string(), 40.0)
//!     .build()
//!     .unwrap();
//! let runtime = Runtime::launch(store).unwrap();
//! let handle = runtime.handle();
//!
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//! let server = std::thread::spawn(move || {
//!     serve_reactor(listener, handle, ReactorConfig::default()).unwrap();
//! });
//!
//! let mut client: RemoteStoreClient<String, _> =
//!     RemoteStoreClient::new(TcpTransport::connect(addr).unwrap());
//! let r = client.read(&"cpu".to_string(), Constraint::Absolute(10.0), 0).unwrap();
//! assert!(r.answer.contains(40.0));
//! client.shutdown().unwrap(); // stops the accept loop, drains, joins
//! server.join().unwrap();
//! runtime.shutdown().unwrap();
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod buffer;
mod conn;
pub mod poller;
pub mod serve;
#[cfg_attr(not(unix), allow(dead_code))]
mod sys;

pub use buffer::{ReadBuf, WriteBuf, READ_CHUNK};
#[cfg(target_os = "linux")]
pub use poller::EpollPoller;
#[cfg(unix)]
pub use poller::PollFdPoller;
pub use poller::{build_poller, Interest, MailboxPoller, PollEvents, Poller, PollerKind, RawFd};
pub use serve::{serve_reactor, Reactor, ReactorConfig, ReactorStream};
