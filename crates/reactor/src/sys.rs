//! Minimal FFI to the kernel readiness syscalls: `epoll` (Linux) and
//! `poll(2)` (any Unix), plus the wake primitives they need (`eventfd`
//! on Linux, a nonblocking self-pipe elsewhere). This is the only
//! module in the crate allowed to use `unsafe`; everything above it
//! sees safe wrappers that own their file descriptors (RAII close) and
//! translate errors through `io::Error::last_os_error()` — which reads
//! `errno`, so no errno FFI is needed.
//!
//! Declarations are hand-written against the stable Linux/POSIX ABI
//! instead of pulling in the `libc` crate: the workspace is std-only by
//! charter, and the surface is five syscalls.

#![allow(unsafe_code)]

use std::io;

use core::ffi::{c_int, c_uint, c_ulong, c_void};

/// A raw file descriptor, aliased locally so the portable layers above
/// compile on non-Unix targets (where the fd-based pollers are compiled
/// out and the alias is inert).
pub type RawFd = c_int;

// ---------------------------------------------------------------------
// poll(2) — any Unix.
// ---------------------------------------------------------------------

/// `struct pollfd` from `<poll.h>`: the layout is fixed by POSIX.
#[cfg(unix)]
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    pub fd: c_int,
    pub events: i16,
    pub revents: i16,
}

#[cfg(unix)]
pub const POLLIN: i16 = 0x001;
#[cfg(unix)]
pub const POLLOUT: i16 = 0x004;
#[cfg(unix)]
pub const POLLERR: i16 = 0x008;
#[cfg(unix)]
pub const POLLHUP: i16 = 0x010;

#[cfg(unix)]
extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

#[cfg(unix)]
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0x800;
// The BSD family (macOS included) uses 0x4; this crate only needs the
// flag on the self-pipe, so the two-value split covers every Unix the
// workspace builds on.
#[cfg(all(unix, not(target_os = "linux")))]
const O_NONBLOCK: c_int = 0x4;

/// `poll(2)` over a `pollfd` slice. Returns the number of entries with
/// non-zero `revents`. `EINTR` is retried internally.
#[cfg(unix)]
pub fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A nonblocking self-pipe: writing one byte to `writer` wakes a
/// `poll(2)` watching `reader`. Both ends close on drop.
#[cfg(unix)]
#[derive(Debug)]
pub struct SelfPipe {
    reader: OwnedFd,
    writer: OwnedFd,
}

#[cfg(unix)]
impl SelfPipe {
    pub fn new() -> io::Result<Self> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let (reader, writer) = (OwnedFd(fds[0]), OwnedFd(fds[1]));
        for fd in [reader.0, writer.0] {
            if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(SelfPipe { reader, writer })
    }

    pub fn reader_fd(&self) -> RawFd {
        self.reader.0
    }

    /// Wake the poller. A full pipe means a wake is already pending —
    /// that is success, not an error, so `EAGAIN` is swallowed.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe { write(self.writer.0, (&byte as *const u8).cast(), 1) };
    }

    /// Drain every pending wake byte (nonblocking).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.reader.0, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

/// RAII file descriptor.
#[cfg(unix)]
#[derive(Debug)]
pub struct OwnedFd(RawFd);

#[cfg(unix)]
impl OwnedFd {
    pub fn raw(&self) -> RawFd {
        self.0
    }
}

#[cfg(unix)]
impl Drop for OwnedFd {
    fn drop(&mut self) {
        unsafe { close(self.0) };
    }
}

// ---------------------------------------------------------------------
// epoll + eventfd — Linux.
// ---------------------------------------------------------------------

/// `struct epoll_event`. Packed on x86/x86_64 (the kernel ABI packs it
/// there so 32- and 64-bit layouts agree); naturally aligned everywhere
/// else.
#[cfg(target_os = "linux")]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[cfg(target_os = "linux")]
pub const EPOLLIN: u32 = 0x001;
#[cfg(target_os = "linux")]
pub const EPOLLOUT: u32 = 0x004;
// EPOLLERR / EPOLLHUP need no constants: epoll reports both
// unconditionally, and the reactor treats any event as "go service the
// socket" (the nonblocking read surfaces the actual condition).

#[cfg(target_os = "linux")]
const EPOLL_CTL_ADD: c_int = 1;
#[cfg(target_os = "linux")]
const EPOLL_CTL_DEL: c_int = 2;
#[cfg(target_os = "linux")]
const EPOLL_CTL_MOD: c_int = 3;
#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: c_int = 0x80000;
#[cfg(target_os = "linux")]
const EFD_CLOEXEC: c_int = 0x80000;
#[cfg(target_os = "linux")]
const EFD_NONBLOCK: c_int = 0x800;

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

/// An owned epoll instance.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct Epoll(OwnedFd);

#[cfg(target_os = "linux")]
impl Epoll {
    pub fn new() -> io::Result<Self> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll(OwnedFd(fd)))
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut event = EpollEvent { events, data };
        let event_ptr =
            if op == EPOLL_CTL_DEL { std::ptr::null_mut() } else { (&mut event) as *mut _ };
        if unsafe { epoll_ctl(self.0.raw(), op, fd, event_ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn add(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, data)
    }

    pub fn modify(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, data)
    }

    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for events; `EINTR` retried internally with the same
    /// timeout (the reactor's safety-net timeout makes exactness moot).
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let rc = unsafe {
                epoll_wait(self.0.raw(), events.as_mut_ptr(), events.len() as c_int, timeout_ms)
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// An owned nonblocking eventfd: the epoll poller's wake channel. A
/// `wake()` is one 8-byte write; the poller drains the counter with one
/// read per wakeup. Shared via `Arc` with every installed waker, so the
/// fd cannot be closed (and its number reused) while a foreign thread
/// still holds a waker — the classic use-after-close bug this RAII
/// sharing exists to prevent.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct EventFd(OwnedFd);

#[cfg(target_os = "linux")]
impl EventFd {
    pub fn new() -> io::Result<Self> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd(OwnedFd(fd)))
    }

    pub fn raw(&self) -> RawFd {
        self.0.raw()
    }

    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        unsafe { write(self.0.raw(), one.as_ptr().cast(), 8) };
    }

    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.0.raw(), buf.as_mut_ptr().cast(), 8) };
    }
}
