//! The reactor: a small fixed pool of worker threads, each parking one
//! [`Poller`] over its own set of nonblocking connections, in front of
//! the actor runtime's ticketed surface.
//!
//! Each worker is **single-threaded end to end**: it owns its
//! connections, its poller, and a fresh [`RuntimeHandle`] clone (its
//! own completion queue). One loop iteration adopts injected
//! connections, polls for readiness, pumps ready sockets through the
//! `Conn` state machine (decode → submit), harvests the completion
//! queue, encodes answers **coalesced per connection** (one socket
//! write carries every frame that became ready this round), and flushes.
//! Completions landing while the worker is parked wake it through the
//! queue's waker hook — no busy polling, no thread per connection.

use std::collections::HashMap;
use std::hash::Hash;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use apcache_runtime::{Outcome, RuntimeHandle};
use apcache_telemetry::{Counter, Gauge, TraceKind};
use apcache_wire::{next_conn_id, ConnStats, WireError, WireKey};

use crate::conn::{Conn, RouteMap, SeqHash};
use crate::poller::{build_poller, Interest, PollEvents, Poller, PollerKind, RawFd};

/// A byte stream the reactor can drive: nonblocking reads/writes, plus
/// either a raw fd (kernel pollers watch it) or a ready hook (the
/// stream calls back when bytes arrive — the loopback transport's
/// mode). Implemented for [`std::net::TcpStream`] and
/// [`LoopbackStream`](apcache_wire::LoopbackStream).
pub trait ReactorStream: Read + Write + Send + 'static {
    /// Switch the stream's read/write calls to nonblocking mode.
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;

    /// The raw fd a kernel poller can watch, if the stream has one.
    fn raw_fd(&self) -> Option<RawFd>;

    /// Install (or clear) a readiness callback, fired whenever bytes
    /// arrive or the peer closes. Returns whether the stream supports
    /// hooks — a stream with neither an fd nor hooks degrades to the
    /// mailbox poller's paced mode.
    fn set_ready_hook(&self, hook: Option<Arc<dyn Fn() + Send + Sync>>) -> bool;
}

impl ReactorStream for std::net::TcpStream {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        std::net::TcpStream::set_nonblocking(self, nonblocking)
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> Option<RawFd> {
        Some(std::os::unix::io::AsRawFd::as_raw_fd(self))
    }

    #[cfg(not(unix))]
    fn raw_fd(&self) -> Option<RawFd> {
        None
    }

    fn set_ready_hook(&self, _hook: Option<Arc<dyn Fn() + Send + Sync>>) -> bool {
        false // readiness comes from the kernel via the fd
    }
}

impl ReactorStream for apcache_wire::LoopbackStream {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        apcache_wire::LoopbackStream::set_nonblocking(self, nonblocking);
        Ok(())
    }

    fn raw_fd(&self) -> Option<RawFd> {
        None
    }

    fn set_ready_hook(&self, hook: Option<Arc<dyn Fn() + Send + Sync>>) -> bool {
        apcache_wire::LoopbackStream::set_ready_hook(self, hook);
        true
    }
}

/// Reactor tuning. The defaults serve both doors: a handful of workers,
/// the platform's best poller, a safety-net poll timeout far below the
/// drain grace.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Worker threads (each owns a poller and a share of the
    /// connections). Clamped to at least 1.
    pub workers: usize,
    /// Which readiness backend to use.
    pub poller: PollerKind,
    /// The safety-net park bound: how stale a worker can be about
    /// cross-thread state (the stop flag, forced-close deadlines) when
    /// no event wakes it sooner. Events always wake immediately.
    pub poll_timeout: Duration,
    /// How long draining connections get to finish their shutdown
    /// handshakes after a stop before being force-closed — the same
    /// grace the threaded door gives.
    pub drain_grace: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        let workers = thread::available_parallelism().map(|n| n.get().min(4)).unwrap_or(2);
        ReactorConfig {
            workers,
            poller: PollerKind::Auto,
            poll_timeout: Duration::from_millis(25),
            drain_grace: Duration::from_secs(2),
        }
    }
}

/// The reactor-wide registry series.
#[derive(Clone)]
struct ReactorCounters {
    /// Response/push frames that shared a socket write with an earlier
    /// frame from the same harvest round.
    coalesced: Counter,
    /// Connections currently open across all workers.
    open: Gauge,
    /// Worker wake-ups that carried work (kernel events, hook marks, or
    /// explicit wakes).
    wakeups: Counter,
    /// Connections force-closed when the drain grace expired.
    forced: Counter,
}

impl ReactorCounters {
    fn register(registry: &apcache_telemetry::Registry) -> Self {
        ReactorCounters {
            coalesced: registry.counter(
                "apcache_push_frames_coalesced_total",
                "Response and push frames that rode a socket write already carrying an earlier frame.",
                &[],
            ),
            open: registry.gauge(
                "apcache_connections_open",
                "Connections currently open across reactor workers.",
                &[],
            ),
            wakeups: registry.counter(
                "apcache_reactor_wakeups_total",
                "Reactor worker wake-ups that carried readiness events or explicit wakes.",
                &[],
            ),
            forced: registry.counter(
                "apcache_wire_forced_closes_total",
                "Idle or lingering connections force-closed at listener teardown.",
                &[],
            ),
        }
    }
}

/// One worker's cross-thread face: where to inject connections, how to
/// wake its parked poller.
struct Mailbox<S> {
    inbox: Arc<Mutex<Vec<S>>>,
    waker: Arc<dyn Fn() + Send + Sync>,
}

/// State shared by the workers and the reactor's front handle.
struct Shared<S> {
    stop: AtomicBool,
    /// Set (once) when the stop is triggered: the instant after which
    /// still-open connections are force-closed.
    deadline: Mutex<Option<Instant>>,
    /// Run on the first stop trigger (e.g. dial the listener so a
    /// blocking accept loop observes the flag).
    stop_hooks: Mutex<Vec<Box<dyn Fn() + Send>>>,
    /// Poller tokens, unique for the reactor's lifetime (from 1: the
    /// epoll wake channel reserves `u64::MAX`).
    next_token: AtomicU64,
    round_robin: AtomicUsize,
    mailboxes: Vec<Mailbox<S>>,
    drain_grace: Duration,
}

impl<S> Shared<S> {
    /// Flip the stop flag (idempotent), arm the forced-close deadline,
    /// fire the stop hooks, and wake every worker.
    fn trigger_stop(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let mut deadline = self.deadline.lock().expect("deadline lock poisoned");
            if deadline.is_none() {
                *deadline = Some(Instant::now() + self.drain_grace);
            }
            drop(deadline);
            for hook in self.stop_hooks.lock().expect("stop hooks poisoned").iter() {
                hook();
            }
        }
        for mailbox in &self.mailboxes {
            (mailbox.waker)();
        }
    }

    fn deadline_passed(&self) -> bool {
        self.deadline
            .lock()
            .expect("deadline lock poisoned")
            .is_some_and(|deadline| Instant::now() >= deadline)
    }
}

/// An event-driven serving core: a fixed pool of poller-driven worker
/// threads fronting one runtime. Connections are injected with
/// [`add_connection`](Reactor::add_connection) (round-robin across
/// workers) and live until their peer shuts down, disconnects, or the
/// reactor stops.
pub struct Reactor<S> {
    shared: Arc<Shared<S>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl<S: ReactorStream> Reactor<S> {
    /// Spawn the worker pool in front of `handle`'s runtime.
    pub fn launch<K>(handle: &RuntimeHandle<K>, config: ReactorConfig) -> io::Result<Self>
    where
        K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
    {
        let counters = ReactorCounters::register(handle.telemetry().registry());
        let worker_count = config.workers.max(1);
        let mut pollers = Vec::with_capacity(worker_count);
        let mut mailboxes = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let poller = build_poller(config.poller)?;
            mailboxes
                .push(Mailbox { inbox: Arc::new(Mutex::new(Vec::new())), waker: poller.waker() });
            pollers.push(poller);
        }
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            deadline: Mutex::new(None),
            stop_hooks: Mutex::new(Vec::new()),
            next_token: AtomicU64::new(1),
            round_robin: AtomicUsize::new(0),
            mailboxes,
            drain_grace: config.drain_grace,
        });
        let mut workers = Vec::with_capacity(worker_count);
        for (index, poller) in pollers.into_iter().enumerate() {
            let inbox = Arc::clone(&shared.mailboxes[index].inbox);
            let shared = Arc::clone(&shared);
            // A handle clone is a fresh logical client with its own
            // completion queue: this worker's tickets are its own.
            let handle = handle.clone();
            let counters = counters.clone();
            let config = config.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("apcache-reactor-{index}"))
                    .spawn(move || worker_loop(poller, inbox, shared, handle, counters, config))?,
            );
        }
        Ok(Reactor { shared, workers })
    }

    /// Hand one connection to the least-recently-used worker. The
    /// stream is switched to nonblocking and registered by the worker
    /// itself on its next wake-up.
    pub fn add_connection(&self, stream: S) {
        let index =
            self.shared.round_robin.fetch_add(1, Ordering::Relaxed) % self.shared.mailboxes.len();
        let mailbox = &self.shared.mailboxes[index];
        mailbox.inbox.lock().expect("reactor inbox poisoned").push(stream);
        (mailbox.waker)();
    }

    /// Whether a client `Shutdown` (or [`join`](Reactor::join)) has
    /// stopped the reactor.
    pub fn stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Register a hook run on the first stop trigger — before the drain
    /// grace starts counting. [`serve_reactor`] uses one to unblock its
    /// accept loop.
    pub fn on_stop(&self, hook: impl Fn() + Send + 'static) {
        self.shared.stop_hooks.lock().expect("stop hooks poisoned").push(Box::new(hook));
    }

    /// Stop and wait for every worker: open connections get the
    /// configured drain grace to finish their handshakes, then are
    /// force-closed; each worker thread is joined before returning, so
    /// no request is in flight afterwards.
    pub fn join(self) {
        self.shared.trigger_stop();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// One worker: the whole per-connection life cycle on one thread.
fn worker_loop<K, S>(
    mut poller: Box<dyn Poller>,
    inbox: Arc<Mutex<Vec<S>>>,
    shared: Arc<Shared<S>>,
    handle: RuntimeHandle<K>,
    counters: ReactorCounters,
    config: ReactorConfig,
) where
    K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
    S: ReactorStream,
{
    let mut conns: HashMap<u64, Conn<S>, SeqHash> = HashMap::default();
    let mut route: RouteMap = RouteMap::default();
    // Per-worker cap on requests submitted but not yet harvested. Shard
    // mailboxes are bounded and park their producers when full; a
    // worker that decoded past that bound would block inside `submit` —
    // one saturating connection stalling every socket the worker owns.
    // Held at half the runtime's bound so even a worst-case
    // single-shard skew leaves headroom: the pump stops decoding here
    // (bytes wait in the read buffer) and resumes as harvested
    // completions free room.
    let submit_cap = (handle.mailbox_capacity() / 2).max(1);
    // Completions landing while this worker is parked in the poller
    // must wake it: bridge the queue's notifications into the poller.
    handle.completions().set_waker(Some(poller.waker()));
    let ready_marker = poller.ready_marker();
    let mut events = PollEvents::default();
    let mut completions = Vec::new();
    let mut to_close: Vec<u64> = Vec::new();
    // Connections this round did anything to: readiness, a harvested
    // completion, a lost-ticket fault. The ack/flush/interest sweep
    // visits only these — an idle connection costs nothing per round,
    // which is what keeps 10k mostly-idle connections cheap.
    let mut touched: Vec<u64> = Vec::new();
    // Tokens whose registration just happened: their bytes (or their
    // HTTP request, or EOF) may predate the hook install / fd
    // registration, so their first round treats them as ready.
    let mut initially_ready: Vec<u64> = Vec::new();
    // Connections the submit budget stalled with decodable frames still
    // buffered: re-pumped every round (no new readiness will announce
    // those bytes) until the backlog clears.
    let mut deferred: Vec<u64> = Vec::new();

    loop {
        touched.clear();
        // ------------------------------------------------------ adopt
        let injected: Vec<S> = {
            let mut inbox = inbox.lock().expect("reactor inbox poisoned");
            inbox.drain(..).collect()
        };
        for stream in injected {
            let token = shared.next_token.fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_nonblocking(true);
            let marker = Arc::clone(&ready_marker);
            stream.set_ready_hook(Some(Arc::new(move || marker(token))));
            let _ = poller.register(token, stream.raw_fd(), Interest::Read);
            let stats = ConnStats::register(handle.telemetry().registry(), next_conn_id());
            conns.insert(token, Conn::new(token, stream, stats));
            counters.open.add(1);
            handle.telemetry().trace().record(TraceKind::ConnOpen, 0, "", None);
            initially_ready.push(token);
        }

        // ------------------------------------------------------- park
        events.ready.clear();
        events.woken = false;
        let timeout = if initially_ready.is_empty() { config.poll_timeout } else { Duration::ZERO };
        if poller.poll(&mut events, timeout).is_err() {
            // A failed poll is unrecoverable for this worker; behave as
            // a stop so its connections drain through the grace path.
            shared.trigger_stop();
        }
        if events.woken || !events.ready.is_empty() {
            counters.wakeups.inc();
        }
        events.ready.append(&mut initially_ready);
        events.ready.append(&mut deferred);
        events.ready.sort_unstable();
        events.ready.dedup();

        // ----------------------------------------------- pump sockets
        // The round's submit allowance: completions already waiting in
        // the queue are about to be harvested, so only entries still on
        // the actors count against the cap. The floor of one keeps a
        // route pinned by long-lived subscriptions from starving
        // control frames (their own unsubscribes) forever.
        let pending = route.len().saturating_sub(handle.completions().ready_len());
        let mut budget = submit_cap.saturating_sub(pending).max(1);
        for &token in &events.ready {
            let Some(conn) = conns.get_mut(&token) else { continue };
            // Writable readiness: move queued bytes first so a peer
            // draining slowly frees buffer space before we read more.
            if !conn.flush() {
                continue; // reaped below via should_close
            }
            conn.on_readable(&handle, &mut route, &mut budget);
            if conn.is_stalled() {
                deferred.push(token);
            }
        }

        // ------------------------------------------------- harvest
        loop {
            completions.clear();
            if handle.completions().drain_ready_into(&mut completions, 1024) == 0 {
                break;
            }
            for completion in completions.drain(..) {
                // Subscription tickets stream: the Subscribed ack and
                // every Push reuse the mapping, which only
                // SubscriptionEnded retires — everything else settles
                // its ticket with exactly one frame.
                let streaming = matches!(
                    completion.outcome,
                    Ok(Outcome::Subscribed { .. }) | Ok(Outcome::Push(_))
                );
                let entry = if streaming {
                    route.get(&completion.ticket).copied()
                } else {
                    route.remove(&completion.ticket)
                };
                // Unrouted completions are orphans (a force-closed
                // connection's answers, a teardown unsubscribe's ack):
                // dropped, like the threaded drainer drops them.
                let Some(entry) = entry else { continue };
                let Some(conn) = conns.get_mut(&entry.conn) else { continue };
                touched.push(entry.conn);
                if !streaming {
                    conn.retire();
                }
                let ended = matches!(completion.outcome, Ok(Outcome::SubscriptionEnded));
                conn.ship_outcome(completion.outcome, entry.request_id, entry.version);
                if !ended {
                    conn.frames_this_round += 1;
                }
            }
        }

        // The harvest freed submit room: re-pump budget-stalled
        // connections in the same round rather than park on the poller
        // with decodable frames waiting. Whatever stalls again carries
        // to the next round's ready set (a completion wake follows —
        // stalling implies outstanding work on the actors).
        if !deferred.is_empty() {
            let pending = route.len().saturating_sub(handle.completions().ready_len());
            let mut budget = submit_cap.saturating_sub(pending).max(1);
            for &token in &std::mem::take(&mut deferred) {
                let Some(conn) = conns.get_mut(&token) else { continue };
                conn.on_readable(&handle, &mut route, &mut budget);
                if conn.is_stalled() {
                    deferred.push(token);
                }
            }
        }

        // Lost-ticket fallback: tickets are mapped, yet the queue has
        // nothing outstanding and nothing ready — no completion can
        // ever arrive for them (every registered op settles exactly
        // once). Fail them as answers instead of waiting forever.
        if !route.is_empty()
            && handle.completions().outstanding() == 0
            && handle.completions().ready_len() == 0
        {
            for (_, entry) in route.drain() {
                if let Some(conn) = conns.get_mut(&entry.conn) {
                    touched.push(entry.conn);
                    conn.retire();
                    conn.fault_in_flight(entry.request_id, entry.version);
                }
            }
        }

        // ------------------------------------- acks, flush, interest
        let stop = shared.stop.load(Ordering::SeqCst);
        let force = stop && shared.deadline_passed();
        to_close.clear();
        touched.extend_from_slice(&events.ready);
        if stop {
            // Stop phases must visit every connection (sibling drains,
            // the forced-close deadline); the full scan is bounded by
            // the grace period, not the steady state.
            touched.extend(conns.keys().copied());
        }
        touched.sort_unstable();
        touched.dedup();
        for &token in &touched {
            let Some(conn) = conns.get_mut(&token) else { continue };
            // Frames that became ready together left in one socket
            // write: everything past the first coalesced.
            let frames = std::mem::take(&mut conn.frames_this_round);
            if frames > 1 {
                counters.coalesced.add(frames - 1);
            }
            conn.publish_stats();
            conn.maybe_ack_shutdown();
            if conn.take_acked_shutdown() {
                // This connection's client asked the whole endpoint to
                // stop; siblings now get the drain grace.
                shared.trigger_stop();
            }
            if conn.flush() {
                let interest = conn.interest();
                let want_write = interest == Interest::ReadWrite;
                if want_write != conn.want_write {
                    conn.want_write = want_write;
                    let _ = poller.reregister(token, conn.stream.raw_fd(), interest);
                }
            }
            if conn.should_close() || force {
                to_close.push(token);
            }
        }
        for token in to_close.drain(..) {
            let Some(mut conn) = conns.remove(&token) else { continue };
            let forced = !conn.should_close();
            if forced {
                counters.forced.inc();
                handle.telemetry().trace().record(TraceKind::ForcedClose, 0, "", None);
            }
            let _ = poller.deregister(token, conn.stream.raw_fd());
            conn.stream.set_ready_hook(None);
            conn.publish_stats();
            conn.stats.window.set(0);
            counters.open.add(-1);
            handle.telemetry().trace().record(TraceKind::ConnClose, 0, "", None);
            // Cancel whatever the peer left open so the actors drop
            // their subscription sinks; the acks land as orphans.
            conn.enter_draining(None, &handle);
            route.retain(|_, entry| entry.conn != token);
            // Dropping the stream closes it (FIN): the reactor holds
            // the only handle.
        }

        // ------------------------------------------------------- exit
        if shared.stop.load(Ordering::SeqCst)
            && conns.is_empty()
            && inbox.lock().expect("reactor inbox poisoned").is_empty()
        {
            break;
        }
    }
    handle.completions().set_waker(None);
}

/// Accept TCP connections on `listener` and serve each through the
/// reactor — the event-driven sibling of
/// [`serve_connections`](apcache_wire::serve_connections), same
/// contract on the wire: pipelined out-of-order replies, v1/v2/v3
/// version echo, push subscriptions, plain-HTTP `GET /metrics` sniffed
/// off the first bytes, and the first client `Shutdown` stopping the
/// accept loop with a bounded drain grace for its siblings. The
/// difference is purely mechanical: a fixed worker pool multiplexes
/// every connection instead of two threads per connection, so the same
/// process holds 10k+ connections open.
pub fn serve_reactor<K>(
    listener: TcpListener,
    handle: RuntimeHandle<K>,
    config: ReactorConfig,
) -> Result<(), WireError>
where
    K: WireKey + Hash + Ord + Clone + Send + Sync + 'static,
{
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpStream};

    let reactor: Reactor<TcpStream> =
        Reactor::launch(&handle, config).map_err(|e| WireError::Io(e.to_string()))?;
    // The wake-up dial must target a routable address: a listener bound
    // to the unspecified address (0.0.0.0 / ::) is reachable on
    // loopback, but *connecting to* 0.0.0.0 is platform-dependent.
    let local_addr = listener.local_addr().map_err(|e| WireError::Io(e.to_string()))?;
    let wake_addr = SocketAddr::new(
        match local_addr.ip() {
            IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
            routable => routable,
        },
        local_addr.port(),
    );
    reactor.on_stop(move || {
        let _ = TcpStream::connect(wake_addr);
    });
    while !reactor.stopped() {
        let (stream, _) = listener.accept().map_err(|e| WireError::Io(e.to_string()))?;
        if reactor.stopped() {
            break; // the wake-up dial from the stop hook; discard it
        }
        reactor.add_connection(stream);
    }
    reactor.join();
    Ok(())
}
