//! Regenerates Figures 14-15 (comparison against Divergence Caching).

fn main() {
    for table in apcache_bench::experiments::fig14_15::run() {
        table.print();
    }
}
