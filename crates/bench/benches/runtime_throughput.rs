//! Regenerates the concurrent-runtime throughput sweep (clients × shards).

fn main() {
    for table in apcache_bench::experiments::runtime::run() {
        table.print();
    }
}
