//! Guards the telemetry layer's zero-cost-hot-path claim and writes the
//! machine-readable perf record (`BENCH_telemetry.json` at the workspace
//! root). Run with `cargo bench -p apcache-bench --bench telemetry_overhead`.

fn main() {
    let (table, json) = apcache_bench::experiments::telemetry::run();
    table.print();
    // Anchor to the workspace root so the record lands in the same place
    // no matter which directory cargo invokes the bench from.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    std::fs::write(path, &json).expect("write BENCH_telemetry.json");
    println!("wrote {path}");
}
