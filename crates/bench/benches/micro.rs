//! Criterion micro-benchmarks for the core data structures and the
//! simulator, following the perf-book guidance (criterion for micro,
//! plain harnesses for macro experiments).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use apcache_core::cache::Cache;
use apcache_core::policy::{AdaptiveParams, AdaptivePolicy, Escape, PrecisionPolicy};
use apcache_core::source::Refresh;
use apcache_core::{CacheId, Interval, Key, Rng};
use apcache_queries::{evaluate, AggregateKind, ItemBound, PrecisionConstraint};
use apcache_sim::systems::{
    build_adaptive_simulation, AdaptiveSystemConfig, QuerySpec, WorkloadSpec,
};
use apcache_sim::SimConfig;
use apcache_workload::query::KindMix;
use apcache_workload::trace::{TraceConfig, TraceSet};
use apcache_workload::walk::WalkConfig;

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next_u64", |b| {
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    c.bench_function("rng/uniform", |b| {
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| black_box(rng.uniform(0.0, 100.0)));
    });
    c.bench_function("rng/sample_indices_10_of_50", |b| {
        let mut rng = Rng::seed_from_u64(1);
        b.iter(|| black_box(rng.sample_indices(50, 10)));
    });
}

fn bench_policy(c: &mut Criterion) {
    c.bench_function("policy/adaptive_refresh_pair", |b| {
        let params = AdaptiveParams::from_theta(1.0, 1.0).expect("valid");
        let mut policy = AdaptivePolicy::new(params, 100.0).expect("valid");
        let mut rng = Rng::seed_from_u64(2);
        b.iter(|| {
            policy.on_value_refresh(Escape::Above, &mut rng);
            policy.on_query_refresh(&mut rng);
            black_box(policy.internal_width())
        });
    });
}

fn bench_interval(c: &mut Criterion) {
    let a = Interval::new(1.0, 5.0).expect("valid");
    let b_iv = Interval::new(2.0, 9.0).expect("valid");
    c.bench_function("interval/add", |b| b.iter(|| black_box(a.add(&b_iv))));
    c.bench_function("interval/max_of", |b| b.iter(|| black_box(a.max_of(&b_iv))));
    c.bench_function("interval/contains", |b| b.iter(|| black_box(a.contains(3.0))));
}

fn make_items(n: usize) -> Vec<ItemBound> {
    let mut rng = Rng::seed_from_u64(7);
    (0..n)
        .map(|i| {
            let lo = rng.uniform(0.0, 1_000.0);
            let w = rng.uniform(0.0, 100.0);
            ItemBound::new(Key(i as u32), Interval::new(lo, lo + w).expect("valid"))
        })
        .collect()
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    for n in [10usize, 100, 1_000] {
        let items = make_items(n);
        group.bench_with_input(BenchmarkId::new("sum", n), &items, |b, items| {
            let constraint =
                PrecisionConstraint::new(50.0 * items.len() as f64 / 4.0).expect("valid");
            b.iter(|| {
                black_box(
                    evaluate(AggregateKind::Sum, constraint, items, |k| k.0 as f64)
                        .expect("evaluates"),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("max_exact", n), &items, |b, items| {
            b.iter(|| {
                black_box(
                    evaluate(AggregateKind::Max, PrecisionConstraint::exact(), items, |k| {
                        k.0 as f64
                    })
                    .expect("evaluates"),
                )
            });
        });
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/apply_refresh_full_64", |b| {
        b.iter_batched(
            || {
                let mut cache = Cache::new(CacheId(0), 64).expect("valid");
                for i in 0..64u32 {
                    cache.apply_refresh(Refresh {
                        key: Key(i),
                        spec: apcache_core::policy::ApproxSpec::constant_centered(0.0, i as f64),
                        internal_width: i as f64,
                    });
                }
                cache
            },
            |mut cache| {
                // Narrower than the widest resident → evict + insert path.
                cache.apply_refresh(Refresh {
                    key: Key(1_000),
                    spec: apcache_core::policy::ApproxSpec::constant_centered(0.0, 1.0),
                    internal_width: 1.5,
                });
                black_box(cache.len())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_trace_gen(c: &mut Criterion) {
    c.bench_function("workload/trace_generate_small", |b| {
        let cfg = TraceConfig::small();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(TraceSet::generate(&cfg, seed).expect("generates"))
        });
    });
}

fn bench_simulation(c: &mut Criterion) {
    c.bench_function("sim/walks_5src_600s", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let sim_cfg = SimConfig::builder()
                .duration_secs(600)
                .warmup_secs(60)
                .seed(seed)
                .build()
                .expect("valid");
            let queries = QuerySpec {
                period_secs: 1.0,
                fanout: 3,
                delta_avg: 20.0,
                delta_rho: 1.0,
                kind_mix: KindMix::SumOnly,
            };
            let report = build_adaptive_simulation(
                &sim_cfg,
                &AdaptiveSystemConfig::default(),
                WorkloadSpec::random_walks(5, WalkConfig::paper_default()),
                queries,
            )
            .expect("assembles")
            .run()
            .expect("runs");
            black_box(report.stats.cost_rate())
        });
    });
}

criterion_group!(
    benches,
    bench_rng,
    bench_policy,
    bench_interval,
    bench_planner,
    bench_cache,
    bench_trace_gen,
    bench_simulation
);
criterion_main!(benches);
