//! Multi-level caching ablation (paper Section 5 future work): two-level
//! hierarchy vs flat fan-out as the number of leaf caches grows.

fn main() {
    apcache_bench::experiments::hierarchy::run().print();
}
