//! Regenerates Figures 4 and 5 (value + interval time series).

fn main() {
    for table in apcache_bench::experiments::fig04_05::run() {
        table.print();
    }
}
