//! Regenerates the MAX-query comparison (Sections 4.4/4.6).

fn main() {
    apcache_bench::experiments::max_queries::run().print();
}
