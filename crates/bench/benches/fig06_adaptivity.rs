//! Regenerates Figure 6 (adaptivity parameter sweep).

fn main() {
    apcache_bench::experiments::fig06::run().print();
}
