//! Regenerates Figure 3 and the Section 4.2 optimality grid.

fn main() {
    apcache_bench::experiments::fig03::run_sweep().print();
    apcache_bench::experiments::fig03::run_grid().print();
}
