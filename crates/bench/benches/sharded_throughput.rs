//! Regenerates the sharded-deployment throughput/cost sweep (1/2/4/8 shards).

fn main() {
    apcache_bench::experiments::sharded::run().print();
}
