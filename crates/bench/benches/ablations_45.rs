//! Regenerates the Section 4.5 ablations (unsuccessful variations).

fn main() {
    for table in apcache_bench::experiments::ablations::run() {
        table.print();
    }
}
