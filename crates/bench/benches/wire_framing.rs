//! Regenerates the wire-protocol measurements: frame encode/decode ns/op
//! and the loopback round-trip throughput table.

fn main() {
    for table in apcache_bench::experiments::wire::run() {
        table.print();
    }
}
