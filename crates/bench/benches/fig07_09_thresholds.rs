//! Regenerates Figures 7-9 (upper threshold settings).

fn main() {
    for table in apcache_bench::experiments::fig07_09::run() {
        table.print();
    }
}
