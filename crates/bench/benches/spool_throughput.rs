//! What durability costs: write-path throughput with the spool attached
//! (in-memory and real-fs, across fsync policies) plus warm-restart
//! replay speed, with a recovery bit-identity smoke baked in. Writes the
//! machine-readable perf record (`BENCH_spool.json` at the workspace
//! root). Run with `cargo bench -p apcache-bench --bench spool_throughput`.

fn main() {
    let (table, json) = apcache_bench::experiments::spool::run();
    table.print();
    // Anchor to the workspace root so the record lands in the same place
    // no matter which directory cargo invokes the bench from.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spool.json");
    std::fs::write(path, &json).expect("write BENCH_spool.json");
    println!("wrote {path}");
}
