//! Regenerates Figures 10-13 (comparison against WJH97 exact caching).

fn main() {
    for table in apcache_bench::experiments::fig10_13::run() {
        table.print();
    }
}
