//! Regenerates the Section 4.4 sensitivity tables (gamma0 and rho).

fn main() {
    for table in apcache_bench::experiments::sensitivity::run() {
        table.print();
    }
}
