//! Regenerates the push fan-out measurement: loopback write→push
//! latency by subscriber count (1 / 100 / 10k), through the full v3
//! streaming stack.

fn main() {
    for table in apcache_bench::experiments::push::run() {
        table.print();
    }
}
