//! Regenerates the pipelined wire-protocol measurement: loopback
//! round-trip throughput by in-flight window × shard count, with the
//! window = 1 row as the strict call-reply (PR 4-equivalent) baseline.

fn main() {
    for table in apcache_bench::experiments::pipelined::run() {
        table.print();
    }
}
