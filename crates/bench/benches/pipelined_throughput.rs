//! Regenerates the pipelined wire-protocol measurement: loopback
//! round-trip throughput by in-flight window × shard count, with the
//! window = 1 row as the strict call-reply (PR 4-equivalent) baseline —
//! plus the reactor connection sweep (100/1k/10k open connections ×
//! window {1,32}, threaded vs reactor doors), which asserts the
//! reactor's window-32 throughput retention from 100 → 1k connections
//! and writes the machine-readable record (`BENCH_reactor.json` at the
//! workspace root).

fn main() {
    for table in apcache_bench::experiments::pipelined::run() {
        table.print();
    }
    let (table, json) = apcache_bench::experiments::reactor::run();
    table.print();
    // Anchor to the workspace root so the record lands in the same place
    // no matter which directory cargo invokes the bench from.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reactor.json");
    std::fs::write(path, &json).expect("write BENCH_reactor.json");
    println!("wrote {path}");
}
