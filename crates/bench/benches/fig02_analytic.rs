//! Regenerates Figure 2 (analytic model curves).

fn main() {
    apcache_bench::experiments::fig02::run().print();
}
