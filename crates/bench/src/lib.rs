//! # apcache-bench
//!
//! Experiment harness regenerating every table and figure of the SIGMOD
//! 2001 evaluation. Each `benches/figXX_*.rs` target is a plain `main`
//! (`harness = false`) that runs the corresponding experiment module and
//! prints the series the paper plots, annotated with the paper's expected
//! *shape* (who wins, by roughly what factor, where crossovers fall) —
//! absolute numbers are not expected to match the authors' 2001 testbed.
//!
//! Run everything with `cargo bench --workspace`, or a single figure with
//! e.g. `cargo bench -p apcache-bench --bench fig06_adaptivity`.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod table;

pub use table::Table;
