//! Wire protocol micro/macro measurements: frame codec ns/op and
//! loopback round-trip serving throughput.
//!
//! Not a paper figure — this harness measures the workspace's own wire
//! layer. The mixed-precision literature's requirement is that precision
//! metadata travel *with* the value at near-zero overhead: the codec
//! table checks encode/decode stay in the tens-of-nanoseconds band (far
//! below one refresh's network cost), and the round-trip table measures
//! the full client → frame → server → frame → client loop over the
//! in-process loopback, i.e. the protocol's ceiling with the kernel
//! removed.

use std::thread;
use std::time::Instant;

use apcache_core::policy::ApproxSpec;
use apcache_core::{Interval, Rng};
use apcache_queries::AggregateKind;
use apcache_shard::{ShardedStore, ShardedStoreBuilder};
use apcache_store::{Constraint, InitialWidth};
use apcache_wire::{
    decode_message, encode_message, encode_to_vec, loopback, RemoteStoreClient, StoreServer,
    WireMessage, WireRefresh, WireRequest,
};

use crate::experiments::common::MASTER_SEED;
use crate::table::{fmt_num, Table};

const CODEC_ITERS: u64 = 400_000;
const RT_KEYS: u64 = 512;
const RT_OPS: u64 = 60_000;

/// Representative frames, one per hot message family.
fn codec_cases() -> Vec<(&'static str, WireMessage<u64>)> {
    vec![
        (
            "Refresh (paper push)",
            WireMessage::Refresh(WireRefresh {
                key: 7u64,
                spec: ApproxSpec::Constant(Interval::new(95.0, 105.0).unwrap()),
                internal_width: 10.0,
            }),
        ),
        (
            "Read request",
            WireMessage::Request(WireRequest::Read {
                key: 12_345,
                constraint: Constraint::Absolute(2.5),
                now: 1_000,
            }),
        ),
        (
            "Write request",
            WireMessage::Request(WireRequest::Write { key: 12_345, value: 101.25, now: 1_000 }),
        ),
        (
            "WriteBatch x32",
            WireMessage::Request(WireRequest::WriteBatch {
                items: (0..32u64).map(|k| (k, k as f64 * 1.5)).collect(),
                now: 1_000,
            }),
        ),
        (
            "Aggregate x32 keys",
            WireMessage::Request(WireRequest::Aggregate {
                kind: AggregateKind::Sum,
                keys: (0..32u64).collect(),
                constraint: Constraint::Relative(0.01),
                now: 1_000,
            }),
        ),
    ]
}

fn bench_encode(msg: &WireMessage<u64>) -> f64 {
    let mut buf = Vec::with_capacity(1024);
    let started = Instant::now();
    for _ in 0..CODEC_ITERS {
        buf.clear();
        encode_message(msg, &mut buf);
        std::hint::black_box(&buf);
    }
    started.elapsed().as_secs_f64() / CODEC_ITERS as f64 * 1e9
}

fn bench_decode(msg: &WireMessage<u64>) -> f64 {
    let body = encode_to_vec(msg);
    let started = Instant::now();
    for _ in 0..CODEC_ITERS {
        std::hint::black_box(decode_message::<u64>(std::hint::black_box(&body)).expect("valid"));
    }
    started.elapsed().as_secs_f64() / CODEC_ITERS as f64 * 1e9
}

fn build_fleet(shards: usize) -> ShardedStore<u64> {
    let mut b = ShardedStoreBuilder::new()
        .shards(shards)
        .rng(Rng::seed_from_u64(MASTER_SEED))
        .initial_width(InitialWidth::Fixed(10.0));
    for k in 0..RT_KEYS {
        b = b.source(k, (k % 977) as f64);
    }
    b.build().expect("fleet config valid")
}

/// Round-trip ops/s for a read/write mix over loopback against a
/// `shards`-shard fleet; returns (ops/s, avg request frame bytes).
fn drive_loopback(shards: usize, read_fraction: f64) -> (f64, f64) {
    let (mut server_end, client_end) = loopback();
    let server = thread::spawn(move || {
        let mut server = StoreServer::new(build_fleet(shards));
        server.serve::<u64, _>(&mut server_end).expect("serving succeeds");
    });
    let mut client: RemoteStoreClient<u64, _> = RemoteStoreClient::new(client_end);
    let mut rng = Rng::seed_from_u64(MASTER_SEED ^ 0x31BE);
    let ops: Vec<(u64, f64, bool)> = (0..RT_OPS)
        .map(|_| (rng.below(RT_KEYS), rng.uniform(0.0, 1_000.0), rng.bernoulli(read_fraction)))
        .collect();
    // Frame-size bookkeeping off the clock.
    let read_bytes = encode_to_vec(&WireMessage::Request(WireRequest::Read {
        key: 0u64,
        constraint: Constraint::Absolute(25.0),
        now: 0,
    }))
    .len();
    let write_bytes =
        encode_to_vec(&WireMessage::Request(WireRequest::Write { key: 0u64, value: 1.0, now: 0 }))
            .len();
    let reads = ops.iter().filter(|(_, _, is_read)| *is_read).count();
    let avg_bytes =
        (reads * read_bytes + (ops.len() - reads) * write_bytes) as f64 / ops.len() as f64;
    let started = Instant::now();
    for (i, &(key, value, is_read)) in ops.iter().enumerate() {
        let now = i as u64;
        if is_read {
            client.read(&key, Constraint::Absolute(25.0), now).expect("known key");
        } else {
            client.write(&key, value, now).expect("known key");
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    client.shutdown().expect("clean shutdown");
    server.join().expect("server thread");
    (RT_OPS as f64 / elapsed, avg_bytes)
}

/// Regenerate the wire codec + loopback round-trip tables.
pub fn run() -> Vec<Table> {
    let mut codec = Table::new(
        "Wire codec: frame encode/decode (ns/op, frame bytes)",
        vec!["frame".into(), "bytes".into(), "encode ns".into(), "decode ns".into()],
    );
    codec.note("hand-rolled fixed-width LE codec, f64s as raw bits; the");
    codec.note("acceptance bar is staying orders of magnitude below one");
    codec.note("refresh's network cost so precision metadata is ~free.");
    for (name, msg) in codec_cases() {
        let bytes = encode_to_vec(&msg).len();
        codec.push_row(vec![
            name.to_string(),
            bytes.to_string(),
            fmt_num(bench_encode(&msg)),
            fmt_num(bench_decode(&msg)),
        ]);
    }

    let mut rt = Table::new(
        "Loopback round trip: Kops/s by read fraction (rows) x shards (columns)",
        std::iter::once("read frac".to_string())
            .chain([1usize, 2, 4].iter().map(|s| format!("{s} shard(s)")))
            .chain(std::iter::once("avg req bytes".to_string()))
            .collect(),
    );
    rt.note("one blocking client over an in-process byte-queue pair: every");
    rt.note("op pays encode + frame + decode + dispatch + the reverse —");
    rt.note("the protocol ceiling with the kernel socket removed. On a");
    rt.note("1-core host the server thread shares the core, so treat");
    rt.note("cells as liveness + order-of-magnitude, not scaling curves.");
    for read_fraction in [0.0, 0.5, 1.0] {
        let mut row = vec![fmt_num(read_fraction)];
        let mut avg_bytes = 0.0;
        for shards in [1usize, 2, 4] {
            let (ops_per_sec, bytes) = drive_loopback(shards, read_fraction);
            avg_bytes = bytes;
            row.push(fmt_num(ops_per_sec / 1e3));
        }
        row.push(fmt_num(avg_bytes));
        rt.push_row(row);
    }
    vec![codec, rt]
}
