//! Figures 14 and 15: comparison against Divergence Caching (HSW94) on
//! stale-value approximations, for `T_q ∈ {1, 5}`.
//!
//! Setting (paper, Section 4.7): `C_vr = 1`, `C_qr = 2` so the adapted
//! cost factor is `θ' = 0.5`; window size `k = 23` for Divergence Caching;
//! `α = 1`, `γ0 = 1` for our specialized algorithm, with `γ1 = γ0` when
//! `δ_avg = 0` and `γ1 = ∞` otherwise. Precision constraints count
//! *updates*, swept `δ_avg ∈ [0, 14]`.
//!
//! Paper shape: our algorithm shows a modest improvement over Divergence
//! Caching across the sweep.

use apcache_baselines::divergence::{DivergenceCachingSystem, DivergenceConfig};
use apcache_baselines::stale::{StaleApproxConfig, StaleApproxSystem};
use apcache_core::cost::CostModel;
use apcache_sim::systems::{QuerySpec, WorkloadSpec};
use apcache_sim::{CacheSystem, Simulation};
use apcache_workload::query::KindMix;
use apcache_workload::trace::TraceSet;

use crate::experiments::common::{paper_trace, trace_sim_config, MASTER_SEED};
use crate::table::{fmt_num, Table};

/// δ_avg sweep in update counts.
pub const DELTA_AVGS: [f64; 8] = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0];

/// Single-value reads with tolerance δ (the HSW94 client-server setting).
fn stale_queries(tq: f64, delta_avg: f64) -> QuerySpec {
    QuerySpec {
        period_secs: tq,
        fanout: 1,
        delta_avg,
        delta_rho: 1.0,
        kind_mix: KindMix::SumOnly, // kind is irrelevant to stale systems
    }
}

/// Run either stale-approximation system over the trace-driven update
/// workload (sources update whenever their traffic level changes).
fn run_system<S: CacheSystem>(trace: &TraceSet, system: S, queries: QuerySpec, seed: u64) -> f64 {
    let sim_cfg = trace_sim_config(seed);
    let mut master = apcache_core::Rng::seed_from_u64(sim_cfg.seed());
    let workload = WorkloadSpec::trace(trace.clone());
    let processes = workload.build_processes(&mut master).expect("processes build");
    let query_gen =
        apcache_workload::query::QueryGenerator::new(queries, processes.len(), master.fork())
            .expect("query generator builds");
    Simulation::new(sim_cfg, system, processes, query_gen)
        .expect("assembles")
        .run()
        .expect("runs")
        .stats
        .cost_rate()
}

/// One figure (one query period).
pub fn run_one(tq: f64) -> Table {
    let trace = paper_trace();
    let cost = CostModel::new(1.0, 2.0).expect("static costs"); // θ' = 0.5
    let fig = if tq <= 1.0 { "14" } else { "15" };
    let mut table = Table::new(
        format!("Figure {fig}: vs Divergence Caching, T_q = {tq} (C_vr=1, C_qr=2, k=23)"),
        vec![
            "delta_avg (updates)".into(),
            "Divergence Caching".into(),
            "ours (gamma1=inf)".into(),
            "ours/DC %".into(),
            "ours (gamma1 tuned)".into(),
            "tuned/DC %".into(),
        ],
    );
    table.note("paper shape: our algorithm modestly outperforms Divergence Caching across");
    table.note("the tolerance sweep (ratio below 100%). The paper's setting is gamma1=inf");
    table.note("for delta_avg>0; the 'tuned' column snaps widths above delta_max to");
    table.note("uncached (gamma1 = 2*delta_avg+1), which lets busy sources stop paying");
    table.note("refresh costs when reads are rare — the decision DC reaches via explicit");
    table.note("rate projections.");
    let mut seed = MASTER_SEED + 141_500 + (tq * 7.0) as u64;
    for &delta_avg in &DELTA_AVGS {
        seed += 10;
        let initial: Vec<f64> = (0..trace.n_hosts()).map(|h| trace.host(h)[0]).collect();
        let dc = DivergenceCachingSystem::new(
            DivergenceConfig { cost, ..DivergenceConfig::default() },
            &initial,
        )
        .expect("DC builds");
        let omega_dc = run_system(&trace, dc, stale_queries(tq, delta_avg), seed);

        let run_ours = |gamma1: f64, seed: u64| {
            let stale_cfg =
                StaleApproxConfig { cost, alpha: 1.0, gamma0: 1.0, gamma1, initial_width: 4.0 };
            let ours = StaleApproxSystem::new(
                &stale_cfg,
                &initial,
                apcache_core::Rng::seed_from_u64(seed ^ 0xDEAD),
            )
            .expect("stale system builds");
            run_system(&trace, ours, stale_queries(tq, delta_avg), seed + 1)
        };
        let gamma1_paper = if delta_avg == 0.0 { 1.0 } else { f64::INFINITY };
        let omega_ours = run_ours(gamma1_paper, seed);
        let gamma1_tuned = if delta_avg == 0.0 { 1.0 } else { 2.0 * delta_avg + 1.0 };
        let omega_tuned = run_ours(gamma1_tuned, seed + 3);

        table.push_row(vec![
            fmt_num(delta_avg),
            fmt_num(omega_dc),
            fmt_num(omega_ours),
            fmt_num(omega_ours / omega_dc * 100.0),
            fmt_num(omega_tuned),
            fmt_num(omega_tuned / omega_dc * 100.0),
        ]);
    }
    table
}

/// Regenerate Figures 14 and 15.
pub fn run() -> Vec<Table> {
    vec![run_one(1.0), run_one(5.0)]
}
