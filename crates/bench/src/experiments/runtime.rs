//! Concurrent-runtime throughput: the clients × shards sweep.
//!
//! Not a paper figure — this harness measures the workspace's own
//! concurrent serving layer. A fixed per-client op mix (fire-and-forget
//! writes, blocking bounded reads, a periodic scatter/gather SUM) is
//! replayed by `c` client threads against an actor-per-shard runtime
//! with `s` shards, for every `(c, s)` in the sweep. Expected shape:
//!
//! * every op pays the mailbox round-trip over the raw store (the price
//!   of thread isolation); fire-and-forget writes pipeline, blocking
//!   reads ping-pong;
//! * with more cores than shards, adding clients raises actor occupancy
//!   and throughput scales toward the per-shard serving rate × shards —
//!   the runtime's reason to exist is that it scales with cores while
//!   `ShardedStore` cannot. On a single-core host (this CI container)
//!   the sweep instead stresses liveness under forced interleaving:
//!   cells vary only by scheduling overhead;
//! * no combination deadlocks: backpressure parks producers, actors
//!   never message each other, so every cell terminating is the
//!   acceptance check.
//!
//! A second table reports the single-threaded read-hit hot path of the
//! store itself (one interning hash + one dense-slot index after the
//! PR 3 collapse of the second hash lookup).

use std::time::Instant;

use apcache_core::Rng;
use apcache_runtime::{Runtime, RuntimeConfig};
use apcache_shard::{AggregateKind, Constraint, InitialWidth, ShardedStore, ShardedStoreBuilder};
use apcache_store::{PrecisionStore, StoreBuilder};

use crate::experiments::common::MASTER_SEED;
use crate::table::{fmt_num, Table};

/// Shard counts swept.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Client-thread counts swept.
pub const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

const KEYS: usize = 2_048;
const OPS_PER_CLIENT: u64 = 40_000;
const AGG_EVERY: u64 = 4_096;

fn build_fleet(shards: usize) -> ShardedStore<u64> {
    let mut b = ShardedStoreBuilder::new()
        .shards(shards)
        .rng(Rng::seed_from_u64(MASTER_SEED))
        .initial_width(InitialWidth::Fixed(10.0));
    for k in 0..KEYS as u64 {
        b = b.source(k, (k % 977) as f64);
    }
    b.build().expect("fleet config valid")
}

/// Drive `clients` threads against a fresh `shards`-actor runtime;
/// returns (elapsed seconds, total ops served).
fn drive(shards: usize, clients: usize) -> (f64, u64) {
    let runtime = Runtime::launch_with(
        build_fleet(shards),
        RuntimeConfig { mailbox_capacity: 1_024, ..RuntimeConfig::default() },
    )
    .expect("runtime launches");
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let handle = runtime.handle();
            scope.spawn(move || {
                // Pre-generated per-client trace so the clock sees only
                // serving work.
                let mut rng = Rng::seed_from_u64(MASTER_SEED ^ (0xC11E + c as u64));
                let ops: Vec<(u64, f64, bool)> = (0..OPS_PER_CLIENT)
                    .map(|_| {
                        (rng.below(KEYS as u64), rng.uniform(0.0, 1_000.0), rng.bernoulli(0.5))
                    })
                    .collect();
                let agg_keys: Vec<u64> = (0..32).collect();
                for (i, &(key, value, is_read)) in ops.iter().enumerate() {
                    let now = i as u64;
                    if is_read {
                        handle.read(&key, Constraint::Absolute(25.0), now).expect("known key");
                    } else {
                        handle.write_nowait(&key, value, now).expect("known key");
                    }
                    if i as u64 % AGG_EVERY == 0 {
                        handle
                            .aggregate(
                                AggregateKind::Sum,
                                &agg_keys,
                                Constraint::Absolute(500.0),
                                now,
                            )
                            .expect("known keys");
                    }
                }
            });
        }
    });
    // The clock covers the draining shutdown too: the drained totals are
    // the op count, so the mailbox backlog the clients left behind must
    // be inside the measured window, not free.
    let store = runtime.into_store().expect("clean shutdown");
    let elapsed = started.elapsed().as_secs_f64();
    let metrics = store.metrics();
    let totals = metrics.merged().totals();
    (elapsed, totals.reads + totals.writes)
}

/// Single-threaded read-hit rate of the raw store (the hot path the
/// dense-slot cache collapsed to one hash lookup).
fn hot_path_ns_per_op() -> f64 {
    const HOT_OPS: u64 = 4_000_000;
    let mut b: StoreBuilder<u64> = StoreBuilder::new().initial_width(InitialWidth::Fixed(10.0));
    for k in 0..KEYS as u64 {
        b = b.source(k, k as f64);
    }
    let mut store: PrecisionStore<u64> = b.build().expect("store config valid");
    let started = Instant::now();
    for i in 0..HOT_OPS {
        store.read(&(i % KEYS as u64), Constraint::Absolute(20.0), 0).expect("known key");
    }
    started.elapsed().as_secs_f64() / HOT_OPS as f64 * 1e9
}

/// Regenerate the concurrent-runtime throughput sweep.
pub fn run() -> Vec<Table> {
    let mut sweep = Table::new(
        "Concurrent runtime: Mops/s by clients (columns) x shards (rows)",
        std::iter::once("shards".to_string())
            .chain(CLIENT_COUNTS.iter().map(|c| format!("{c} client(s)")))
            .collect(),
    );
    sweep.note("each cell replays the same per-client op mix (50/50 bounded");
    sweep.note("reads / fire-and-forget writes + a periodic 32-key SUM) from");
    sweep.note("c threads against s shard actors; bounded mailboxes park");
    sweep.note("producers, so every cell finishing IS the no-deadlock check.");
    sweep.note("Rates include the mailbox round-trip; scaling with clients");
    sweep.note("and shards needs cores to run on (1-core hosts show only");
    sweep.note("scheduling noise across cells).");
    for shards in SHARD_COUNTS {
        let mut row = vec![shards.to_string()];
        for clients in CLIENT_COUNTS {
            let (elapsed, ops) = drive(shards, clients);
            row.push(fmt_num(ops as f64 / elapsed / 1e6));
        }
        sweep.push_row(row);
    }
    let mut hot = Table::new(
        "Store read-hit hot path (single-threaded, no runtime)",
        vec!["path".into(), "ns/op".into()],
    );
    hot.note("PR 3 collapsed the read path's second hash lookup (cache map)");
    hot.note("into a dense slot index; before the change this measured");
    hot.note("~98-126 ns/op on the same harness.");
    hot.push_row(vec!["intern hash + dense slot".into(), fmt_num(hot_path_ns_per_op())]);
    vec![sweep, hot]
}
