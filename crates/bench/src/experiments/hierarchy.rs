//! Multi-level caching experiment (paper Section 5 future work): the
//! two-level hierarchy of `apcache-hier` vs a flat fan-out deployment,
//! sweeping the number of leaf caches.
//!
//! Expected shape: costs grow with the leaf count in both deployments,
//! but the hierarchy amortizes the expensive source hop across leaves, so
//! its advantage widens as leaves are added.

use apcache_core::Rng;
use apcache_hier::{FlatFanoutSystem, MultiLevelConfig, MultiLevelSystem};
use apcache_sim::systems::{QuerySpec, WorkloadSpec};
use apcache_sim::{CacheSystem, SimConfig, Simulation};
use apcache_workload::query::KindMix;
use apcache_workload::walk::WalkConfig;

use crate::experiments::common::MASTER_SEED;
use crate::table::{fmt_num, Table};

const N_SOURCES: usize = 8;
const DURATION: u64 = 10_000;

fn run_system<S: CacheSystem>(system: S, seed: u64) -> f64 {
    let cfg = SimConfig::builder()
        .duration_secs(DURATION)
        .warmup_secs(DURATION / 10)
        .seed(seed)
        .build()
        .expect("valid");
    let mut master = Rng::seed_from_u64(cfg.seed());
    let workload = WorkloadSpec::random_walks(N_SOURCES, WalkConfig::paper_default());
    let processes = workload.build_processes(&mut master).expect("builds");
    let queries = QuerySpec {
        period_secs: 0.5,
        fanout: 2,
        delta_avg: 20.0,
        delta_rho: 1.0,
        kind_mix: KindMix::SumOnly,
    };
    let query_gen = apcache_workload::query::QueryGenerator::new(queries, N_SOURCES, master.fork())
        .expect("builds");
    Simulation::new(cfg, system, processes, query_gen)
        .expect("assembles")
        .run()
        .expect("runs")
        .stats
        .cost_rate()
}

/// Regenerate the hierarchy-vs-flat sweep.
pub fn run() -> Table {
    let mut table = Table::new(
        "Multi-level caching (Section 5): two-level hierarchy vs flat fan-out",
        vec!["leaves".into(), "hierarchy".into(), "flat".into(), "hier/flat %".into()],
    );
    table.note("expected shape: the hierarchy pays the expensive source hop once per");
    table.note("refresh regardless of the leaf count, so its relative advantage widens");
    table.note("as leaves are added (upper hop C=(1,2), lower hop C=(0.25,0.5)).");
    let mut seed = MASTER_SEED + 550_000;
    for n_leaves in [1usize, 2, 4, 8, 16] {
        let cfg = MultiLevelConfig { n_leaves, ..MultiLevelConfig::default() };
        let initial = vec![0.0; N_SOURCES];
        seed += 2;
        let hier =
            MultiLevelSystem::new(&cfg, &initial, Rng::seed_from_u64(seed)).expect("hier builds");
        let omega_hier = run_system(hier, seed);
        let flat =
            FlatFanoutSystem::new(&cfg, &initial, Rng::seed_from_u64(seed)).expect("flat builds");
        let omega_flat = run_system(flat, seed + 1);
        table.push_row(vec![
            n_leaves.to_string(),
            fmt_num(omega_hier),
            fmt_num(omega_flat),
            fmt_num(omega_hier / omega_flat * 100.0),
        ]);
    }
    table
}
