//! Figure 3 (and the Section 4.2 optimality grid): measured refresh
//! probabilities and cost rate on steady-state random-walk data, and the
//! adaptive algorithm's convergence to the empirically best fixed width.

use apcache_core::cost::CostModel;
use apcache_core::Key;
use apcache_sim::systems::{
    build_adaptive_simulation, AdaptiveSystemConfig, InitialWidth, PolicyKind, QuerySpec,
    WorkloadSpec,
};
use apcache_sim::SimConfig;
use apcache_workload::query::KindMix;
use apcache_workload::walk::WalkConfig;

use crate::experiments::common::MASTER_SEED;
use crate::table::{fmt_num, Table};

/// Duration for the steady-state runs (long enough that P_vr estimates are
/// stable at the widths of interest).
const DURATION_SECS: u64 = 40_000;

fn queries(tq: f64, delta_avg: f64) -> QuerySpec {
    QuerySpec { period_secs: tq, fanout: 1, delta_avg, delta_rho: 1.0, kind_mix: KindMix::SumOnly }
}

fn run_fixed(width: f64, tq: f64, delta_avg: f64, theta: f64, seed: u64) -> (f64, f64, f64) {
    let sim = SimConfig::builder()
        .duration_secs(DURATION_SECS)
        .warmup_secs(DURATION_SECS / 10)
        .seed(seed)
        .build()
        .expect("static config");
    let sys = AdaptiveSystemConfig {
        cost: CostModel::from_theta(theta).expect("theta valid"),
        policy: PolicyKind::Fixed { width },
        ..AdaptiveSystemConfig::default()
    };
    let stats = build_adaptive_simulation(
        &sim,
        &sys,
        WorkloadSpec::random_walks(1, WalkConfig::paper_default()),
        queries(tq, delta_avg),
    )
    .expect("assembles")
    .run()
    .expect("runs")
    .stats;
    (stats.p_vr(), stats.p_qr(), stats.cost_rate())
}

fn run_adaptive(tq: f64, delta_avg: f64, theta: f64, alpha: f64, seed: u64) -> (f64, f64) {
    let sim = SimConfig::builder()
        .duration_secs(DURATION_SECS)
        .warmup_secs(DURATION_SECS / 10)
        .seed(seed)
        .build()
        .expect("static config");
    let sys = AdaptiveSystemConfig {
        cost: CostModel::from_theta(theta).expect("theta valid"),
        alpha,
        initial_width: InitialWidth::Fixed(4.0),
        ..AdaptiveSystemConfig::default()
    };
    let report = build_adaptive_simulation(
        &sim,
        &sys,
        WorkloadSpec::random_walks(1, WalkConfig::paper_default()),
        queries(tq, delta_avg),
    )
    .expect("assembles")
    .run()
    .expect("runs");
    let width = report.system.internal_width_of(Key(0)).expect("source 0 exists");
    (report.stats.cost_rate(), width)
}

/// The fixed-width sweep of Figure 3 (`T_q = 2`, `δ_avg = 20`, `ρ = 1`,
/// `θ = 1`).
pub fn run_sweep() -> Table {
    let mut table = Table::new(
        "Figure 3: measured refresh probabilities and cost rate vs fixed width \
         (random walk +-U[0.5,1.5], T_q=2, delta_avg=20, rho=1, theta=1)",
        vec!["W".into(), "P_vr".into(), "P_qr".into(), "Omega".into()],
    );
    table.note("paper shape: P_vr proportional to 1/W^2, P_qr proportional to W,");
    table.note("minimum Omega where the curves cross; adaptive run converges near it.");
    let widths = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0, 16.0, 20.0];
    let mut best = (f64::MAX, 0.0);
    for (i, &w) in widths.iter().enumerate() {
        let (pvr, pqr, omega) = run_fixed(w, 2.0, 20.0, 1.0, MASTER_SEED + i as u64);
        if omega < best.0 {
            best = (omega, w);
        }
        table.push_row(vec![fmt_num(w), fmt_num(pvr), fmt_num(pqr), fmt_num(omega)]);
    }
    // Steady-state convergence uses a small alpha: the adaptivity
    // parameter trades convergence precision against reaction speed
    // (Figure 6 covers the dynamic case where alpha = 1 wins). The paper's
    // "converged to W = 3.11, within 1% of optimal" is a steady-state
    // fine-alpha result; with alpha = 1 the width oscillates one doubling
    // around the optimum and pays 15-30% (also reported below).
    let (omega_fine, w_fine) = run_adaptive(2.0, 20.0, 1.0, 0.05, MASTER_SEED + 100);
    let (omega_coarse, w_coarse) = run_adaptive(2.0, 20.0, 1.0, 1.0, MASTER_SEED + 101);
    table.note(format!("best fixed width W={} with Omega={}", fmt_num(best.1), fmt_num(best.0),));
    table.note(format!(
        "adaptive alpha=0.05 converged to W={} with Omega={} ({}% of best fixed)",
        fmt_num(w_fine),
        fmt_num(omega_fine),
        fmt_num(omega_fine / best.0 * 100.0),
    ));
    table.note(format!(
        "adaptive alpha=1 ended at W={} with Omega={} ({}% of best fixed)",
        fmt_num(w_coarse),
        fmt_num(omega_coarse),
        fmt_num(omega_coarse / best.0 * 100.0),
    ));
    table
}

/// The Section 4.2 grid: adaptive-vs-best-fixed over all combinations of
/// `T_q ∈ {1, 2}`, `δ_avg ∈ {10, 20}`, `θ ∈ {1, 4}` (paper: within 5 % of
/// optimal in every scenario).
pub fn run_grid() -> Table {
    let mut table = Table::new(
        "Section 4.2 grid: adaptive cost rate relative to the best fixed width",
        vec![
            "T_q".into(),
            "delta_avg".into(),
            "theta".into(),
            "best fixed W".into(),
            "Omega fixed".into(),
            "Omega adaptive".into(),
            "adaptive/fixed %".into(),
        ],
    );
    table.note("paper: adaptive within ~5% of the optimal fixed width in all scenarios.");
    let widths = [1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 24.0];
    let mut seed = MASTER_SEED + 1_000;
    for tq in [1.0, 2.0] {
        for delta_avg in [10.0, 20.0] {
            for theta in [1.0, 4.0] {
                let mut best = (f64::MAX, 0.0);
                for &w in &widths {
                    seed += 1;
                    let (_, _, omega) = run_fixed(w, tq, delta_avg, theta, seed);
                    if omega < best.0 {
                        best = (omega, w);
                    }
                }
                seed += 1;
                let (adaptive_omega, _) = run_adaptive(tq, delta_avg, theta, 0.05, seed);
                table.push_row(vec![
                    fmt_num(tq),
                    fmt_num(delta_avg),
                    fmt_num(theta),
                    fmt_num(best.1),
                    fmt_num(best.0),
                    fmt_num(adaptive_omega),
                    fmt_num(adaptive_omega / best.0 * 100.0),
                ]);
            }
        }
    }
    table
}
