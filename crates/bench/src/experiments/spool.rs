//! Spool throughput: what durability costs on the write path, and how
//! fast a warm restart replays.
//!
//! Not a paper figure — this harness guards the PR that added the
//! write-ahead spool. Four write-loop variants over the same key set:
//!
//! * **baseline** — the bare store, no spool attached;
//! * **mem/always** — an in-memory [`MemIo`] spool with fsync-per-append
//!   accounting on, isolating the *logging* cost (record encode + CRC
//!   framing + segment bookkeeping) from any real disk;
//! * **fs/never** and **fs/rotate** — a real [`apcache_store::StdFsIo`]
//!   spool on a temp
//!   directory with the two buffered fsync policies (`Always` on a real
//!   disk is dominated by device fsync latency, so it runs a much
//!   shorter loop and is reported, not compared).
//!
//! The harness then crashes the `mem/always` subject, recovers it, and
//! checks a sample of keys bit-identical against the live store — the
//! bench doubles as a correctness smoke for the recovery path — while
//! timing the replay (records/s). Results land in `BENCH_spool.json`.

use std::time::Instant;

use apcache_store::{
    Constraint, FsyncPolicy, InitialWidth, MemIo, PrecisionStore, SpoolConfig, SpoolIo,
    StoreBuilder,
};

use crate::table::Table;

const KEYS: u64 = 1_024;
/// Write ops per buffered variant (baseline, mem, fs/never, fs/rotate).
const OPS: u64 = 200_000;
/// Write ops for the fsync-per-append-on-disk cell (each op is a real
/// device fsync, so the loop is short; the cell is informational).
const FS_ALWAYS_OPS: u64 = 2_000;
const ROUNDS: usize = 3;

fn build_store() -> PrecisionStore<u64> {
    let mut b = StoreBuilder::new().initial_width(InitialWidth::Fixed(10.0));
    for k in 0..KEYS {
        b = b.source(k, k as f64);
    }
    b.build().expect("store config valid")
}

/// One timing window: `ops` writes walking every key; returns ns/op.
/// Values alternate inside/outside the cached interval, so the loop
/// exercises both the free write and the escape/refresh path.
fn window(store: &mut PrecisionStore<u64>, ops: u64) -> f64 {
    let started = Instant::now();
    for i in 0..ops {
        let k = i % KEYS;
        let v = k as f64 + if i % 3 == 0 { 100.0 } else { 0.1 };
        store.write(&k, v, i + 1).expect("write");
    }
    started.elapsed().as_secs_f64() / ops as f64 * 1e9
}

fn min_over_rounds(store: &mut PrecisionStore<u64>, ops: u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        best = best.min(window(store, ops));
    }
    best
}

fn temp_dir(tag: &str) -> String {
    let dir =
        std::env::temp_dir().join(format!("apcache-bench-spool-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

/// All measured cells.
pub struct Cells {
    /// Bare store write loop, no spool attached (ns/op).
    pub baseline_ns: f64,
    /// In-memory spool, fsync accounting per append (ns/op).
    pub mem_always_ns: f64,
    /// Real fs spool, `FsyncPolicy::Never` (ns/op).
    pub fs_never_ns: f64,
    /// Real fs spool, `FsyncPolicy::OnRotate` (ns/op).
    pub fs_rotate_ns: f64,
    /// Real fs spool, `FsyncPolicy::Always` — device-fsync bound, short
    /// loop, informational (ns/op).
    pub fs_always_ns: f64,
    /// Log records replayed by the timed recovery.
    pub replay_records: u64,
    /// Replay speed of the timed recovery.
    pub replay_records_per_sec: f64,
}

/// Time every cell and the warm-restart replay.
pub fn measure() -> Cells {
    let cfg = SpoolConfig::default();

    let mut baseline = build_store();
    let baseline_ns = min_over_rounds(&mut baseline, OPS);

    // Logging cost in isolation: MemIo, fsync accounting on.
    let mut mem_subject = build_store();
    mem_subject.attach_spool_io(Box::new(MemIo::new()), "spool", cfg).expect("attach");
    let mem_always_ns = min_over_rounds(&mut mem_subject, OPS);

    // Real filesystem, buffered policies.
    let fs_cell = |tag: &str, fsync: FsyncPolicy, ops: u64| -> f64 {
        let dir = temp_dir(tag);
        let mut s = build_store();
        let builder_cfg = SpoolConfig { fsync, ..cfg };
        s.attach_spool_io(Box::new(apcache_store::StdFsIo::new()), &dir, builder_cfg)
            .expect("attach fs spool");
        let ns = min_over_rounds(&mut s, ops);
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
        ns
    };
    let fs_never_ns = fs_cell("never", FsyncPolicy::Never, OPS);
    let fs_rotate_ns = fs_cell("rotate", FsyncPolicy::OnRotate, OPS);
    let fs_always_ns = fs_cell("always", FsyncPolicy::Always, FS_ALWAYS_OPS);

    // Crash the MemIo subject and time the replay — and use the bench as
    // a recovery-correctness smoke while we are here.
    let replay_records = ROUNDS as u64 * OPS;
    let mut io = mem_subject.detach_spool().expect("subject has a spool");
    io.as_any_mut().downcast_mut::<MemIo>().expect("MemIo subject").crash(0);
    let started = Instant::now();
    let recovered =
        PrecisionStore::<u64>::recover_with_io(io, "spool", cfg).expect("recovery succeeds");
    let replay_secs = started.elapsed().as_secs_f64();
    for k in (0..KEYS).step_by(97) {
        assert_eq!(mem_subject.value(&k), recovered.value(&k), "value of {k} diverged");
        assert_eq!(
            mem_subject.internal_width(&k),
            recovered.internal_width(&k),
            "width of {k} diverged"
        );
        assert_eq!(
            mem_subject.cached_interval(&k, ROUNDS as u64 * OPS + 1),
            recovered.cached_interval(&k, ROUNDS as u64 * OPS + 1),
            "interval of {k} diverged"
        );
    }
    // The recovered store still answers: one tight read per decile.
    let mut recovered = recovered;
    for k in (0..KEYS).step_by(128) {
        recovered
            .read(&k, Constraint::Exact, ROUNDS as u64 * OPS + 2)
            .expect("recovered store serves");
    }

    Cells {
        baseline_ns,
        mem_always_ns,
        fs_never_ns,
        fs_rotate_ns,
        fs_always_ns,
        replay_records,
        replay_records_per_sec: replay_records as f64 / replay_secs,
    }
}

/// Machine-readable record for the perf-trajectory trail.
pub fn to_json(c: &Cells) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"spool_throughput\",\n",
            "  \"keys\": {},\n",
            "  \"ops_per_window\": {},\n",
            "  \"rounds\": {},\n",
            "  \"baseline_ns_per_op\": {},\n",
            "  \"mem_always_ns_per_op\": {},\n",
            "  \"fs_never_ns_per_op\": {},\n",
            "  \"fs_rotate_ns_per_op\": {},\n",
            "  \"fs_always_ns_per_op\": {},\n",
            "  \"fs_always_ops\": {},\n",
            "  \"replay_records\": {},\n",
            "  \"replay_records_per_sec\": {}\n",
            "}}\n"
        ),
        KEYS,
        OPS,
        ROUNDS,
        c.baseline_ns,
        c.mem_always_ns,
        c.fs_never_ns,
        c.fs_rotate_ns,
        c.fs_always_ns,
        FS_ALWAYS_OPS,
        c.replay_records,
        c.replay_records_per_sec,
    )
}

/// Run the cells, verify recovery bit-identity, and return the printable
/// table plus the JSON record.
pub fn run() -> (Table, String) {
    let cells = measure();
    let mut table = Table::new(
        "spool_throughput — write path with the durability spool attached",
        vec!["variant".into(), "ns/op".into(), "Mops/s".into()],
    );
    table.note(format!(
        "{KEYS} keys, {OPS} writes x {ROUNDS} rounds per variant (min kept); \
         fs/always runs {FS_ALWAYS_OPS} ops (device-fsync bound, informational)"
    ));
    table.note(format!(
        "recovery replayed {} records at {:.0} records/s, sampled keys bit-identical",
        cells.replay_records, cells.replay_records_per_sec
    ));
    for (name, ns) in [
        ("baseline (no spool)", cells.baseline_ns),
        ("mem/always", cells.mem_always_ns),
        ("fs/never", cells.fs_never_ns),
        ("fs/rotate", cells.fs_rotate_ns),
        ("fs/always", cells.fs_always_ns),
    ] {
        table.push_row(vec![name.into(), format!("{ns:.1}"), format!("{:.2}", 1e3 / ns)]);
    }
    (table, to_json(&cells))
}
