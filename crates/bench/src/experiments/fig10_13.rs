//! Figures 10–13: comparison against WJH97 adaptive exact caching for SUM
//! queries, across query periods, cost factors (`θ ∈ {1, 4}`) and cache
//! sizes (`κ ∈ {50, 20}`).
//!
//! Paper shape:
//! * ours with `γ1 = γ0` almost precisely matches exact caching under all
//!   workloads, cache sizes and cost configurations;
//! * ours with `γ1 = ∞` significantly outperforms exact caching when
//!   imprecision is allowed (`δ_avg ∈ {100K, 500K}`), at a slight penalty
//!   for exact-precision SUM workloads (`δ_avg = 0`);
//! * with a small cache (κ = 20), nonzero constraints help less because
//!   inexact intervals tend to be evicted.

use apcache_baselines::exact::{ExactCachingConfig, ExactCachingSystem};
use apcache_core::cost::CostModel;
use apcache_sim::systems::{AdaptiveSystemConfig, QuerySpec, WorkloadSpec};
use apcache_sim::Simulation;
use apcache_workload::trace::TraceSet;

use crate::experiments::common::{
    paper_trace, run_on_trace, sum_queries, trace_sim_config, MASTER_SEED,
};
use crate::table::{fmt_num, Table};

/// Reevaluation periods swept for the exact-caching baseline (the paper
/// sweeps 3..45 per run and reports the best).
pub const X_SWEEP: [u32; 6] = [3, 5, 9, 15, 25, 45];

/// Query periods on the x-axis.
pub const TQS: [f64; 4] = [0.5, 1.0, 2.0, 5.0];

/// Run the WJH97 baseline over the trace and return the measured cost rate.
pub fn run_exact(
    trace: &TraceSet,
    x: u32,
    theta: f64,
    capacity: Option<usize>,
    queries: QuerySpec,
    seed: u64,
) -> f64 {
    let cost = CostModel::from_theta(theta).expect("theta valid");
    let sim_cfg = trace_sim_config(seed);
    let mut master = apcache_core::Rng::seed_from_u64(sim_cfg.seed());
    let workload = WorkloadSpec::trace(trace.clone());
    let processes = workload.build_processes(&mut master).expect("processes build");
    let initial: Vec<f64> = processes.iter().map(|p| p.value()).collect();
    let system =
        ExactCachingSystem::new(ExactCachingConfig { cost, x, cache_capacity: capacity }, &initial)
            .expect("system builds");
    let query_gen =
        apcache_workload::query::QueryGenerator::new(queries, initial.len(), master.fork())
            .expect("query generator builds");
    Simulation::new(sim_cfg, system, processes, query_gen)
        .expect("assembles")
        .run()
        .expect("runs")
        .stats
        .cost_rate()
}

/// Best-x exact caching cost rate.
pub fn best_exact(
    trace: &TraceSet,
    theta: f64,
    capacity: Option<usize>,
    queries: QuerySpec,
    seed: u64,
) -> (u32, f64) {
    let mut best = (0u32, f64::MAX);
    for (i, &x) in X_SWEEP.iter().enumerate() {
        let omega = run_exact(trace, x, theta, capacity, queries, seed + i as u64);
        if omega < best.1 {
            best = (x, omega);
        }
    }
    best
}

/// One figure: fixed `θ` and κ, sweeping `T_q`.
pub fn run_one(theta: f64, capacity: Option<usize>) -> Table {
    let trace = paper_trace();
    let kappa = capacity.map(|k| k.to_string()).unwrap_or_else(|| "50".into());
    let fig = match (theta as u32, capacity) {
        (1, None) => "10",
        (4, None) => "11",
        (1, _) => "12",
        _ => "13",
    };
    let mut table = Table::new(
        format!("Figure {fig}: vs exact caching, theta = {theta}, kappa = {kappa} (SUM)"),
        vec![
            "T_q".into(),
            "exact caching (best x)".into(),
            "ours g1=g0".into(),
            "ours g1=inf d=0".into(),
            "ours g1=inf d=100K".into(),
            "ours g1=inf d=500K".into(),
        ],
    );
    table.note("paper shape: column 3 tracks column 2 closely; columns 5-6 beat both when");
    table.note("imprecision is allowed; column 4 (exact answers from intervals) pays a small");
    table.note("penalty for SUM. With kappa=20 the delta>0 advantage shrinks (evictions).");
    let mut seed = MASTER_SEED + 101_300 + theta as u64 * 17 + capacity.unwrap_or(50) as u64;
    for &tq in &TQS {
        let mut row = vec![fmt_num(tq)];
        // Exact caching with the best reevaluation period for this run.
        seed += 100;
        let (best_x, omega_exact) =
            best_exact(&trace, theta, capacity, sum_queries(tq, 0.0, 0.0), seed);
        row.push(format!("{} (x={best_x})", fmt_num(omega_exact)));
        // Ours, exact-caching special case.
        let ours_exact = AdaptiveSystemConfig {
            cost: CostModel::from_theta(theta).expect("theta valid"),
            alpha: 1.0,
            gamma0: 1_000.0,
            gamma1: 1_000.0,
            cache_capacity: capacity,
            ..AdaptiveSystemConfig::default()
        };
        seed += 1;
        let stats = run_on_trace(&trace, &ours_exact, sum_queries(tq, 0.0, 0.0), seed);
        row.push(fmt_num(stats.cost_rate()));
        // Ours with gamma1 = inf at three constraint levels.
        for delta_avg in [0.0, 100_000.0, 500_000.0] {
            let ours = AdaptiveSystemConfig {
                cost: CostModel::from_theta(theta).expect("theta valid"),
                alpha: 1.0,
                gamma0: 1_000.0,
                gamma1: f64::INFINITY,
                cache_capacity: capacity,
                ..AdaptiveSystemConfig::default()
            };
            seed += 1;
            let rho = if delta_avg > 0.0 { 0.5 } else { 0.0 };
            let stats = run_on_trace(&trace, &ours, sum_queries(tq, delta_avg, rho), seed);
            row.push(fmt_num(stats.cost_rate()));
        }
        table.push_row(row);
    }
    table
}

/// Regenerate Figures 10–13.
pub fn run() -> Vec<Table> {
    vec![run_one(1.0, None), run_one(4.0, None), run_one(1.0, Some(20)), run_one(4.0, Some(20))]
}
