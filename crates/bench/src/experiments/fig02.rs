//! Figure 2: analytic cost rate and refresh probabilities vs interval
//! width (`θ = 1`, `K1 = 1`, `K2 = 1/200`).

use apcache_core::cost::CostModel;
use apcache_core::model::RefreshModel;

use crate::table::{fmt_num, Table};

/// Regenerate Figure 2.
pub fn run() -> Table {
    let cost = CostModel::multiversion(); // θ = 1
    let model = RefreshModel::new(1.0, 1.0 / 200.0, cost).expect("figure 2 constants valid");
    let mut table = Table::new(
        "Figure 2: cost rate and refresh probabilities (analytic), theta=1, K1=1, K2=1/200",
        vec!["W".into(), "P_vr".into(), "P_qr".into(), "Omega".into()],
    );
    table.note("paper shape: P_vr ~ 1/W^2 falling, P_qr ~ W rising; Omega minimized exactly");
    table.note("where the curves cross (W* = (theta*K1/K2)^(1/3) ~ 5.85).");
    for w10 in 2..=40u32 {
        let w = f64::from(w10) / 2.0;
        table.push_row(vec![
            fmt_num(w),
            fmt_num(model.p_vr(w)),
            fmt_num(model.p_qr(w)),
            fmt_num(model.omega(w)),
        ]);
    }
    let w_star = model.w_star();
    table.note(format!(
        "W* = {} with Omega(W*) = {}; P_vr(W*) = {} vs P_qr(W*) = {} (equal at the optimum)",
        fmt_num(w_star),
        fmt_num(model.omega_star()),
        fmt_num(model.p_vr(w_star)),
        fmt_num(model.p_qr(w_star)),
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_table_has_expected_shape() {
        let t = run();
        assert_eq!(t.columns.len(), 4);
        assert!(t.rows.len() > 30);
        // Omega at the ends is worse than near the middle.
        let omega = |row: &Vec<String>| row[3].parse::<f64>().unwrap_or(f64::MAX);
        let first = omega(&t.rows[0]);
        let mid = t.rows.iter().map(omega).fold(f64::MAX, f64::min);
        let last = omega(t.rows.last().unwrap());
        assert!(mid < first && mid < last);
    }
}
