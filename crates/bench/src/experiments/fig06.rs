//! Figure 6: effect of the adaptivity parameter α on the average cost
//! rate, across 12 combinations of `θ`, `T_q`, and the constraint range.
//!
//! Paper conclusion: `α = 1` (doubling/halving) is a good overall setting.

use crate::experiments::common::{paper_trace, run_on_trace, sum_queries, MASTER_SEED};
use crate::table::{fmt_num, Table};
use apcache_core::cost::CostModel;
use apcache_sim::systems::AdaptiveSystemConfig;

/// The α values swept (the paper plots α ∈ (0, 10]).
pub const ALPHAS: [f64; 7] = [0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 10.0];

/// The 12 curve configurations: (θ, T_q, δ_min, δ_max) as labelled in the
/// paper's legend.
pub const COMBOS: [(f64, f64, f64, f64); 12] = [
    (1.0, 0.5, 50_000.0, 150_000.0),
    (1.0, 0.5, 0.0, 100_000.0),
    (1.0, 1.0, 50_000.0, 150_000.0),
    (1.0, 1.0, 0.0, 100_000.0),
    (1.0, 6.0, 50_000.0, 150_000.0),
    (1.0, 6.0, 0.0, 100_000.0),
    (4.0, 0.5, 50_000.0, 150_000.0),
    (4.0, 0.5, 0.0, 100_000.0),
    (4.0, 1.0, 50_000.0, 150_000.0),
    (4.0, 1.0, 0.0, 100_000.0),
    (4.0, 6.0, 50_000.0, 150_000.0),
    (4.0, 6.0, 0.0, 100_000.0),
];

/// Regenerate Figure 6.
pub fn run() -> Table {
    let trace = paper_trace();
    let mut columns = vec!["alpha".into()];
    for (theta, tq, dmin, dmax) in COMBOS {
        columns.push(format!("th={theta},Tq={tq},[{}..{}]", fmt_num(dmin), fmt_num(dmax)));
    }
    let mut table = Table::new(
        "Figure 6: average cost rate Omega vs adaptivity alpha (SUM queries, trace data)",
        columns,
    );
    table.note("paper shape: cost is poor for tiny alpha (too slow to adapt), flat-ish and");
    table.note("good around alpha=1, and degrades slowly for large alpha; alpha=1 is the");
    table.note("recommended overall setting.");

    let mut best_alpha_votes: Vec<(f64, f64)> = vec![(f64::MAX, 0.0); COMBOS.len()];
    let mut seed = MASTER_SEED + 60_000;
    for &alpha in &ALPHAS {
        let mut row = vec![fmt_num(alpha)];
        for (ci, (theta, tq, dmin, dmax)) in COMBOS.iter().enumerate() {
            let delta_avg = (dmin + dmax) / 2.0;
            let rho = if delta_avg > 0.0 { (dmax - dmin) / (2.0 * delta_avg) } else { 0.0 };
            let sys = AdaptiveSystemConfig {
                cost: CostModel::from_theta(*theta).expect("theta valid"),
                alpha,
                gamma0: 0.0,
                gamma1: f64::INFINITY,
                ..AdaptiveSystemConfig::default()
            };
            seed += 1;
            let stats = run_on_trace(&trace, &sys, sum_queries(*tq, delta_avg, rho), seed);
            let omega = stats.cost_rate();
            if omega < best_alpha_votes[ci].0 {
                best_alpha_votes[ci] = (omega, alpha);
            }
            row.push(fmt_num(omega));
        }
        table.push_row(row);
    }
    let ones = best_alpha_votes.iter().filter(|(_, a)| (0.5..=2.0).contains(a)).count();
    table.note(format!(
        "best alpha per combo: {:?}; {ones}/12 combos have their optimum in [0.5, 2].",
        best_alpha_votes.iter().map(|(_, a)| *a).collect::<Vec<_>>()
    ));
    table
}
