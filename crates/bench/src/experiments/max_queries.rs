//! MAX query experiments (Sections 4.4 and 4.6).
//!
//! For MAX queries, cached intervals can *eliminate* values from
//! consideration ("values can be eliminated as candidates for the exact
//! maximum based on intervals of finite, nonzero width"), so
//! `γ1 = ∞` is the best setting for **all** constraint levels — including
//! `δ_avg = 0` — and our algorithm substantially outperforms exact
//! caching on MAX workloads.

use apcache_core::cost::CostModel;
use apcache_sim::systems::AdaptiveSystemConfig;

use crate::experiments::common::{max_queries, paper_trace, run_on_trace, MASTER_SEED};
use crate::experiments::fig10_13::best_exact;
use crate::table::{fmt_num, Table};

/// Regenerate the MAX-query comparison.
pub fn run() -> Table {
    let trace = paper_trace();
    let mut table = Table::new(
        "MAX queries (Sections 4.4/4.6): gamma1=inf vs gamma1=gamma0 vs exact caching, T_q=1",
        vec![
            "delta_avg".into(),
            "ours g1=inf".into(),
            "ours g1=g0".into(),
            "exact caching (best x)".into(),
        ],
    );
    table.note("paper shape: for MAX, gamma1=inf gives the best performance for ALL");
    table.note("delta_avg values including 0, because finite intervals eliminate");
    table.note("non-candidates without any fetch; exact caching cannot do that.");
    let mut seed = MASTER_SEED + 999_000;
    for delta_avg in [0.0, 100_000.0, 500_000.0] {
        let rho = if delta_avg > 0.0 { 0.5 } else { 0.0 };
        let queries = max_queries(1.0, delta_avg, rho);
        let mut row = vec![fmt_num(delta_avg)];
        for gamma1 in [f64::INFINITY, 1_000.0] {
            let sys = AdaptiveSystemConfig {
                cost: CostModel::from_theta(1.0).expect("theta valid"),
                alpha: 1.0,
                gamma0: 1_000.0,
                gamma1,
                ..AdaptiveSystemConfig::default()
            };
            seed += 1;
            let stats = run_on_trace(&trace, &sys, queries, seed);
            row.push(fmt_num(stats.cost_rate()));
        }
        seed += 100;
        let (best_x, omega_exact) = best_exact(&trace, 1.0, None, queries, seed);
        row.push(format!("{} (x={best_x})", fmt_num(omega_exact)));
        table.push_row(row);
    }
    table
}
