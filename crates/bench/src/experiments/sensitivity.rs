//! Section 4.4 sensitivity tables: the lower threshold `γ0` and the
//! precision-constraint variation `ρ`.

use apcache_sim::systems::AdaptiveSystemConfig;

use crate::experiments::common::{paper_trace, pct_diff, run_on_trace, sum_queries, MASTER_SEED};
use crate::table::{fmt_num, Table};

/// γ0 impact: the paper reports that for constraints in \[5K, 15K\]
/// (`δ_avg = 10K`, `ρ = 0.5`) setting `γ0 = 1K` degrades performance by
/// less than 1 % relative to `γ0 = 0` (with `T_q = 1`, `γ1 = ∞`, `θ = 1`).
pub fn run_gamma0() -> Table {
    let trace = paper_trace();
    let mut table = Table::new(
        "Section 4.4: impact of the lower threshold gamma0 (delta in [5K,15K], T_q=1)",
        vec!["gamma0".into(), "Omega".into(), "vs gamma0=0 %".into()],
    );
    table.note("paper: gamma0=1K costs < 1% on moderately tight workloads; it exists to");
    table.note("serve exact (delta=0) queries from cached copies.");
    let mut seed = MASTER_SEED + 440;
    let mut base = f64::NAN;
    for gamma0 in [0.0, 1_000.0, 5_000.0] {
        let sys = AdaptiveSystemConfig {
            alpha: 1.0,
            gamma0,
            gamma1: f64::INFINITY,
            ..AdaptiveSystemConfig::default()
        };
        seed += 1;
        let stats = run_on_trace(&trace, &sys, sum_queries(1.0, 10_000.0, 0.5), seed);
        let omega = stats.cost_rate();
        if gamma0 == 0.0 {
            base = omega;
        }
        table.push_row(vec![fmt_num(gamma0), fmt_num(omega), fmt_num(pct_diff(base, omega))]);
    }
    table
}

/// ρ sensitivity: the paper reports the cost difference between `ρ = 0`
/// (identical constraints) and `ρ = 1` (widely spread constraints) is
/// 1.9 % at `δ_avg = 100K`, 5.5 % at 10K, < 1 % at 5K (with `T_q = 1`,
/// `γ0 = 1K`, `γ1 = ∞`, `θ = 1`).
pub fn run_rho() -> Table {
    let trace = paper_trace();
    let mut table = Table::new(
        "Section 4.4: sensitivity to constraint variation rho (T_q=1, gamma0=1K)",
        vec!["delta_avg".into(), "Omega rho=0".into(), "Omega rho=1".into(), "diff %".into()],
    );
    table.note("paper: the degradation from widely spread constraints is small");
    table.note("(1.9% at 100K, 5.5% at 10K, <1% at 5K).");
    let mut seed = MASTER_SEED + 441_000;
    for delta_avg in [5_000.0, 10_000.0, 100_000.0] {
        let sys = AdaptiveSystemConfig {
            alpha: 1.0,
            gamma0: 1_000.0,
            gamma1: f64::INFINITY,
            ..AdaptiveSystemConfig::default()
        };
        seed += 2;
        let rho0 = run_on_trace(&trace, &sys, sum_queries(1.0, delta_avg, 0.0), seed).cost_rate();
        let rho1 =
            run_on_trace(&trace, &sys, sum_queries(1.0, delta_avg, 1.0), seed + 1).cost_rate();
        table.push_row(vec![
            fmt_num(delta_avg),
            fmt_num(rho0),
            fmt_num(rho1),
            fmt_num(pct_diff(rho0, rho1).abs()),
        ]);
    }
    table
}

/// Regenerate both Section 4.4 tables.
pub fn run() -> Vec<Table> {
    vec![run_gamma0(), run_rho()]
}
