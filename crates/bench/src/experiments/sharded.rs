//! Sharded-deployment throughput: the scale-out experiment.
//!
//! Not a paper figure — this harness measures the workspace's own
//! scale-out layer. Two sweeps over shard counts 1/2/4/8:
//!
//! 1. **Serving throughput**: a fixed read/write trace over a large key
//!    population is replayed directly against a `ShardedStore` and timed.
//!    Routing adds one hash + ring lookup per operation, so ops/s should
//!    hold roughly flat as the fleet grows (the protocol work dominates);
//!    the interesting output is the per-shard balance and the merged
//!    metrics staying invariant.
//! 2. **Simulated cost**: the paper's Section 4 environment driven through
//!    `ShardedAdaptiveSystem`, reporting the cost rate Ω per shard count —
//!    a sharded deployment pays a modest Ω premium on fan-out queries
//!    because each shard plans its refreshes with only local information.

use std::time::Instant;

use apcache_core::Rng;
use apcache_shard::{AggregateKind, Constraint, InitialWidth, ShardedStore, ShardedStoreBuilder};
use apcache_sim::systems::{build_sharded_simulation, ShardedSystemConfig, WorkloadSpec};
use apcache_workload::walk::WalkConfig;

use crate::experiments::common::{sum_queries, trace_sim_config, MASTER_SEED};
use crate::table::{fmt_num, Table};

/// Shard counts swept by both parts of the experiment.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

const KEYS: usize = 2_000;
const OPS: u64 = 200_000;

fn build_fleet(shards: usize) -> ShardedStore<u64> {
    let mut b = ShardedStoreBuilder::new()
        .shards(shards)
        .rng(Rng::seed_from_u64(MASTER_SEED))
        .initial_width(InitialWidth::Fixed(10.0));
    for k in 0..KEYS as u64 {
        b = b.source(k, (k % 977) as f64);
    }
    b.build().expect("fleet config valid")
}

/// Replay the fixed trace against a fleet; returns (elapsed seconds,
/// merged totals, per-shard key counts).
fn drive(shards: usize) -> (f64, u64, u64, f64, Vec<usize>) {
    let mut fleet = build_fleet(shards);
    let mut rng = Rng::seed_from_u64(MASTER_SEED ^ 0xD51E);
    // Pre-generate the trace so the clock only sees store work.
    let ops: Vec<(u64, f64, bool)> = (0..OPS)
        .map(|_| {
            let key = rng.below(KEYS as u64);
            let value = rng.uniform(0.0, 1_000.0);
            (key, value, rng.bernoulli(0.5))
        })
        .collect();
    let agg_keys: Vec<u64> = (0..32).collect();
    let started = Instant::now();
    for (i, &(key, value, is_read)) in ops.iter().enumerate() {
        let now = i as u64;
        if is_read {
            fleet.read(&key, Constraint::Absolute(25.0), now).expect("known key");
        } else {
            fleet.write(&key, value, now).expect("known key");
        }
        if i % 4_096 == 0 {
            fleet
                .aggregate(AggregateKind::Sum, &agg_keys, Constraint::Absolute(500.0), now)
                .expect("known keys");
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let m = fleet.metrics();
    let per_shard_keys = (0..shards).map(|s| fleet.shard(s).expect("shard index").len()).collect();
    (
        elapsed,
        m.merged().qr_count(),
        m.merged().vr_count(),
        m.merged().totals().hit_rate(),
        per_shard_keys,
    )
}

/// Regenerate the sharded-throughput comparison.
pub fn run() -> Table {
    let mut table = Table::new(
        "Sharded deployment: throughput and simulated cost vs shard count",
        vec![
            "shards".into(),
            "Mops/s".into(),
            "hit rate".into(),
            "QR".into(),
            "VR".into(),
            "keys/shard (min..max)".into(),
            "sim cost rate".into(),
        ],
    );
    table.note("expected shape: ops/s roughly flat (routing is one hash + ring");
    table.note("lookup); QR/VR/hit-rate near-invariant because per-key protocol");
    table.note("state is shard-local (the periodic fan-out aggregate splits its");
    table.note("budget, perturbing refresh sets by well under 1%); the simulated");
    table.note("cost rate drifts up with shard count because fan-out queries");
    table.note("plan refreshes with local information only.");
    for shards in SHARD_COUNTS {
        let (elapsed, qr, vr, hit_rate, per_shard) = drive(shards);
        let sim = run_simulated(shards);
        let (lo, hi) = (
            per_shard.iter().copied().min().unwrap_or(0),
            per_shard.iter().copied().max().unwrap_or(0),
        );
        table.push_row(vec![
            shards.to_string(),
            fmt_num(OPS as f64 / elapsed / 1e6),
            fmt_num(hit_rate),
            qr.to_string(),
            vr.to_string(),
            format!("{lo}..{hi}"),
            fmt_num(sim),
        ]);
    }
    table
}

/// Cost rate Ω of the Section 4 environment on a sharded deployment.
fn run_simulated(shards: usize) -> f64 {
    // One fixed seed for every shard count: the rows must replay the same
    // workload or the Ω drift would be confounded with trace variance.
    let report = build_sharded_simulation(
        &trace_sim_config(MASTER_SEED + 777),
        &ShardedSystemConfig { shards, ..ShardedSystemConfig::default() },
        WorkloadSpec::random_walks(50, WalkConfig::paper_default()),
        sum_queries(1.0, 200.0, 0.5),
    )
    .expect("sim config valid")
    .run()
    .expect("sim run succeeds");
    report.stats.cost_rate()
}
