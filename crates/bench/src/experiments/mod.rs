//! Experiment implementations, one module per paper figure/table group.
//!
//! Every public `run()` function returns (or prints) [`crate::Table`]s
//! containing the series the paper plots, with the expected shape recorded
//! in the notes. See `DESIGN.md` §5 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub mod ablations;
pub mod common;
pub mod fig02;
pub mod fig03;
pub mod fig04_05;
pub mod fig06;
pub mod fig07_09;
pub mod fig10_13;
pub mod fig14_15;
pub mod hierarchy;
pub mod max_queries;
pub mod pipelined;
pub mod push;
pub mod reactor;
pub mod runtime;
pub mod sensitivity;
pub mod sharded;
pub mod spool;
pub mod telemetry;
pub mod wire;
