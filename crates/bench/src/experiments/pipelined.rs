//! Pipelined wire throughput: loopback round-trip ops/s as a function of
//! the client's in-flight window × shard count.
//!
//! Not a paper figure — this harness measures the v2 protocol's
//! pipelining win over the strict call-reply baseline. The full stack
//! runs on every op: client codec → frame → pipelined reader → ticketed
//! runtime submission → shard actor → completion queue → drainer →
//! frame → client codec. At `window = 1` the client degenerates to the
//! v1 call-reply discipline (one op in flight, the PR 4-equivalent
//! baseline); at `window ≥ 8` submission overlaps serving, so the
//! per-op client↔server hand-off cost amortizes across the window — the
//! acceptance bar is window ≥ 8 throughput strictly above window = 1 on
//! the same run.

use std::thread;
use std::time::Instant;

use apcache_core::Rng;
use apcache_runtime::Runtime;
use apcache_shard::{ShardedStore, ShardedStoreBuilder};
use apcache_store::{Constraint, InitialWidth};
use apcache_wire::{loopback, serve_pipelined, RemoteStoreClient, Ticket};

use crate::experiments::common::MASTER_SEED;
use crate::table::{fmt_num, Table};

const KEYS: u64 = 512;
const OPS: u64 = 40_000;
const WINDOWS: [usize; 4] = [1, 4, 8, 32];
const SHARDS: [usize; 3] = [1, 2, 4];

fn build_fleet(shards: usize) -> ShardedStore<u64> {
    let mut b = ShardedStoreBuilder::new()
        .shards(shards)
        .rng(Rng::seed_from_u64(MASTER_SEED))
        .initial_width(InitialWidth::Fixed(10.0));
    for k in 0..KEYS {
        b = b.source(k, (k % 977) as f64);
    }
    b.build().expect("fleet config valid")
}

/// Ops/s for a 50/50 read/write mix driven through a `window`-deep
/// pipelined client against a `shards`-actor runtime over loopback.
fn drive(shards: usize, window: usize) -> f64 {
    let runtime = Runtime::launch(build_fleet(shards)).expect("runtime launches");
    let handle = runtime.handle();
    let (server_end, client_end) = loopback();
    let server = thread::spawn(move || serve_pipelined(server_end, handle).expect("serves"));
    let mut client: RemoteStoreClient<u64, _> = RemoteStoreClient::with_window(client_end, window);
    let mut rng = Rng::seed_from_u64(MASTER_SEED ^ 0x91BE);
    let ops: Vec<(u64, f64, bool)> = (0..OPS)
        .map(|_| (rng.below(KEYS), rng.uniform(0.0, 1_000.0), rng.bernoulli(0.5)))
        .collect();
    // Keep `window` tickets in flight: submit ahead, harvest the oldest
    // once the pipeline is full (submission itself also backpressures).
    let mut in_flight: std::collections::VecDeque<(Ticket, bool)> =
        std::collections::VecDeque::with_capacity(window);
    let started = Instant::now();
    for (i, &(key, value, is_read)) in ops.iter().enumerate() {
        let now = i as u64;
        if in_flight.len() >= window {
            let (ticket, was_read) = in_flight.pop_front().expect("non-empty");
            if was_read {
                client.wait_read(ticket).expect("known key");
            } else {
                client.wait_write(ticket).expect("known key");
            }
        }
        let ticket = if is_read {
            client.submit_read(&key, Constraint::Absolute(25.0), now).expect("submit")
        } else {
            client.submit_write(&key, value, now).expect("submit")
        };
        in_flight.push_back((ticket, is_read));
    }
    for (ticket, was_read) in in_flight.drain(..) {
        if was_read {
            client.wait_read(ticket).expect("known key");
        } else {
            client.wait_write(ticket).expect("known key");
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    client.shutdown().expect("clean shutdown");
    server.join().expect("server thread");
    drop(runtime);
    OPS as f64 / elapsed
}

/// Regenerate the pipelined-throughput table (window × shards sweep).
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "Pipelined loopback throughput: Kops/s by window (rows) x shards (columns)",
        std::iter::once("window".to_string())
            .chain(SHARDS.iter().map(|s| format!("{s} shard(s)")))
            .chain(std::iter::once("vs window=1".to_string()))
            .collect(),
    );
    table.note("50/50 read/write mix through the full pipelined stack:");
    table.note("codec -> pipelined reader -> ticketed runtime -> drainer.");
    table.note("window=1 is the strict call-reply (v1/PR 4) baseline; the");
    table.note("acceptance bar is window>=8 strictly above it per column.");
    table.note("1-core hosts amortize hand-off cost, not true parallelism.");
    let mut baseline = vec![0.0f64; SHARDS.len()];
    for (wi, &window) in WINDOWS.iter().enumerate() {
        let mut row = vec![window.to_string()];
        let mut speedups = Vec::new();
        for (si, &shards) in SHARDS.iter().enumerate() {
            let ops_per_sec = drive(shards, window);
            if wi == 0 {
                baseline[si] = ops_per_sec;
            }
            speedups.push(ops_per_sec / baseline[si]);
            row.push(fmt_num(ops_per_sec / 1e3));
        }
        let avg: f64 = speedups.iter().sum::<f64>() / speedups.len() as f64;
        row.push(format!("{:.2}x", avg));
        table.push_row(row);
    }
    vec![table]
}
