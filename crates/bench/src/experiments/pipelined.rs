//! Pipelined wire throughput: loopback round-trip ops/s as a function of
//! the client's in-flight window × shard count.
//!
//! Not a paper figure — this harness measures the v2 protocol's
//! pipelining win over the strict call-reply baseline. The full stack
//! runs on every op: client codec → frame → pipelined reader → ticketed
//! runtime submission → shard actor → completion queue → drainer →
//! frame → client codec. At `window = 1` the client degenerates to the
//! v1 call-reply discipline (one op in flight, the PR 4-equivalent
//! baseline); at `window ≥ 8` submission overlaps serving, so the
//! per-op client↔server hand-off cost amortizes across the window — the
//! acceptance bar is window ≥ 8 throughput strictly above window = 1 on
//! the same run.

use std::thread;
use std::time::Instant;

use apcache_core::Rng;
use apcache_runtime::Runtime;
use apcache_shard::{ShardedStore, ShardedStoreBuilder};
use apcache_store::{Constraint, InitialWidth};
use apcache_wire::{loopback, serve_pipelined, ClientPool, RemoteStoreClient, Ticket};

use crate::experiments::common::MASTER_SEED;
use crate::table::{fmt_num, Table};

const KEYS: u64 = 512;
const OPS: u64 = 40_000;
const WINDOWS: [usize; 4] = [1, 4, 8, 32];
const SHARDS: [usize; 3] = [1, 2, 4];

/// The pooled smoke cell: 8 logical clients over 2 member sockets vs a
/// socket per client, same per-socket window.
const POOL_LOGICAL: usize = 8;
const POOL_SOCKETS: usize = 2;
const POOL_WINDOW: usize = 8;
const POOL_OPS_PER_CLIENT: u64 = 5_000;
const POOL_SHARDS: usize = 2;

fn build_fleet(shards: usize) -> ShardedStore<u64> {
    let mut b = ShardedStoreBuilder::new()
        .shards(shards)
        .rng(Rng::seed_from_u64(MASTER_SEED))
        .initial_width(InitialWidth::Fixed(10.0));
    for k in 0..KEYS {
        b = b.source(k, (k % 977) as f64);
    }
    b.build().expect("fleet config valid")
}

/// Ops/s for a 50/50 read/write mix driven through a `window`-deep
/// pipelined client against a `shards`-actor runtime over loopback.
fn drive(shards: usize, window: usize) -> f64 {
    let runtime = Runtime::launch(build_fleet(shards)).expect("runtime launches");
    let handle = runtime.handle();
    let (server_end, client_end) = loopback();
    let server = thread::spawn(move || serve_pipelined(server_end, handle).expect("serves"));
    let mut client: RemoteStoreClient<u64, _> = RemoteStoreClient::with_window(client_end, window);
    let mut rng = Rng::seed_from_u64(MASTER_SEED ^ 0x91BE);
    let ops: Vec<(u64, f64, bool)> = (0..OPS)
        .map(|_| (rng.below(KEYS), rng.uniform(0.0, 1_000.0), rng.bernoulli(0.5)))
        .collect();
    // Keep `window` tickets in flight: submit ahead, harvest the oldest
    // once the pipeline is full (submission itself also backpressures).
    let mut in_flight: std::collections::VecDeque<(Ticket, bool)> =
        std::collections::VecDeque::with_capacity(window);
    let started = Instant::now();
    for (i, &(key, value, is_read)) in ops.iter().enumerate() {
        let now = i as u64;
        if in_flight.len() >= window {
            let (ticket, was_read) = in_flight.pop_front().expect("non-empty");
            if was_read {
                client.wait_read(ticket).expect("known key");
            } else {
                client.wait_write(ticket).expect("known key");
            }
        }
        let ticket = if is_read {
            client.submit_read(&key, Constraint::Absolute(25.0), now).expect("submit")
        } else {
            client.submit_write(&key, value, now).expect("submit")
        };
        in_flight.push_back((ticket, is_read));
    }
    for (ticket, was_read) in in_flight.drain(..) {
        if was_read {
            client.wait_read(ticket).expect("known key");
        } else {
            client.wait_write(ticket).expect("known key");
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    client.shutdown().expect("clean shutdown");
    server.join().expect("server thread");
    drop(runtime);
    OPS as f64 / elapsed
}

/// The submit/harvest surface a worker drives, abstracted over pooled
/// handles and dedicated clients.
trait Connection {
    fn submit_read(&mut self, key: &u64, now: u64) -> Ticket;
    fn submit_write(&mut self, key: &u64, value: f64, now: u64) -> Ticket;
    fn wait_read(&mut self, ticket: Ticket);
    fn wait_write(&mut self, ticket: Ticket);
}

impl Connection for RemoteStoreClient<u64, apcache_wire::LoopbackTransport> {
    fn submit_read(&mut self, key: &u64, now: u64) -> Ticket {
        RemoteStoreClient::submit_read(self, key, Constraint::Absolute(25.0), now).expect("submit")
    }
    fn submit_write(&mut self, key: &u64, value: f64, now: u64) -> Ticket {
        RemoteStoreClient::submit_write(self, key, value, now).expect("submit")
    }
    fn wait_read(&mut self, ticket: Ticket) {
        RemoteStoreClient::wait_read(self, ticket).expect("known key");
    }
    fn wait_write(&mut self, ticket: Ticket) {
        RemoteStoreClient::wait_write(self, ticket).expect("known key");
    }
}

impl Connection for apcache_wire::PooledClient<u64, apcache_wire::LoopbackTransport> {
    fn submit_read(&mut self, key: &u64, now: u64) -> Ticket {
        apcache_wire::PooledClient::submit_read(self, key, Constraint::Absolute(25.0), now)
            .expect("submit")
    }
    fn submit_write(&mut self, key: &u64, value: f64, now: u64) -> Ticket {
        apcache_wire::PooledClient::submit_write(self, key, value, now).expect("submit")
    }
    fn wait_read(&mut self, ticket: Ticket) {
        apcache_wire::PooledClient::wait_read(self, ticket).expect("known key");
    }
    fn wait_write(&mut self, ticket: Ticket) {
        apcache_wire::PooledClient::wait_write(self, ticket).expect("known key");
    }
}

/// One logical client's 50/50 mix over its own key range, keeping up to
/// 4 tickets of its own in flight on whatever connection carries it.
fn drive_worker(client_no: usize, conn: &mut dyn Connection) {
    let span = KEYS / POOL_LOGICAL as u64;
    let base = client_no as u64 * span;
    let mut rng = Rng::seed_from_u64(MASTER_SEED ^ 0xB0_07 ^ client_no as u64);
    let mut in_flight: std::collections::VecDeque<(Ticket, bool)> =
        std::collections::VecDeque::with_capacity(4);
    for i in 0..POOL_OPS_PER_CLIENT {
        if in_flight.len() >= 4 {
            let (ticket, was_read) = in_flight.pop_front().expect("non-empty");
            if was_read {
                conn.wait_read(ticket);
            } else {
                conn.wait_write(ticket);
            }
        }
        let key = base + rng.below(span);
        let is_read = rng.bernoulli(0.5);
        let ticket = if is_read {
            conn.submit_read(&key, i)
        } else {
            conn.submit_write(&key, rng.uniform(0.0, 1_000.0), i)
        };
        in_flight.push_back((ticket, is_read));
    }
    for (ticket, was_read) in in_flight.drain(..) {
        if was_read {
            conn.wait_read(ticket);
        } else {
            conn.wait_write(ticket);
        }
    }
}

/// Aggregate ops/s for 8 logical clients over a pool of 2 sockets.
fn drive_pooled() -> f64 {
    let runtime = Runtime::launch(build_fleet(POOL_SHARDS)).expect("runtime launches");
    let mut transports = Vec::new();
    let mut servers = Vec::new();
    for _ in 0..POOL_SOCKETS {
        let handle = runtime.handle();
        let (server_end, client_end) = loopback();
        servers.push(thread::spawn(move || serve_pipelined(server_end, handle).expect("serves")));
        transports.push(client_end);
    }
    let mut pool: ClientPool<u64, _> = ClientPool::with_window(transports, POOL_WINDOW);
    let started = Instant::now();
    let workers: Vec<_> = (0..POOL_LOGICAL)
        .map(|c| {
            let mut handle = pool.handle();
            thread::spawn(move || drive_worker(c, &mut handle))
        })
        .collect();
    for w in workers {
        w.join().expect("pooled worker");
    }
    let elapsed = started.elapsed().as_secs_f64();
    pool.shutdown().expect("pool drains");
    for s in servers {
        s.join().expect("server thread");
    }
    drop(runtime);
    (POOL_LOGICAL as u64 * POOL_OPS_PER_CLIENT) as f64 / elapsed
}

/// Aggregate ops/s for 8 logical clients with a dedicated socket each.
fn drive_per_client_sockets() -> f64 {
    let runtime = Runtime::launch(build_fleet(POOL_SHARDS)).expect("runtime launches");
    let mut clients = Vec::new();
    let mut servers = Vec::new();
    for _ in 0..POOL_LOGICAL {
        let handle = runtime.handle();
        let (server_end, client_end) = loopback();
        servers.push(thread::spawn(move || serve_pipelined(server_end, handle).expect("serves")));
        clients.push(RemoteStoreClient::<u64, _>::with_window(client_end, POOL_WINDOW));
    }
    let started = Instant::now();
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(c, mut client)| {
            thread::spawn(move || {
                drive_worker(c, &mut client);
                client
            })
        })
        .collect();
    let mut drained = Vec::new();
    for w in workers {
        drained.push(w.join().expect("dedicated worker"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    for client in drained {
        client.shutdown().expect("clean shutdown");
    }
    for s in servers {
        s.join().expect("server thread");
    }
    drop(runtime);
    (POOL_LOGICAL as u64 * POOL_OPS_PER_CLIENT) as f64 / elapsed
}

/// Regenerate the pipelined-throughput table (window × shards sweep).
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "Pipelined loopback throughput: Kops/s by window (rows) x shards (columns)",
        std::iter::once("window".to_string())
            .chain(SHARDS.iter().map(|s| format!("{s} shard(s)")))
            .chain(std::iter::once("vs window=1".to_string()))
            .collect(),
    );
    table.note("50/50 read/write mix through the full pipelined stack:");
    table.note("codec -> pipelined reader -> ticketed runtime -> drainer.");
    table.note("window=1 is the strict call-reply (v1/PR 4) baseline; the");
    table.note("acceptance bar is window>=8 strictly above it per column.");
    table.note("1-core hosts amortize hand-off cost, not true parallelism.");
    let mut baseline = vec![0.0f64; SHARDS.len()];
    for (wi, &window) in WINDOWS.iter().enumerate() {
        let mut row = vec![window.to_string()];
        let mut speedups = Vec::new();
        for (si, &shards) in SHARDS.iter().enumerate() {
            let ops_per_sec = drive(shards, window);
            if wi == 0 {
                baseline[si] = ops_per_sec;
            }
            speedups.push(ops_per_sec / baseline[si]);
            row.push(fmt_num(ops_per_sec / 1e3));
        }
        let avg: f64 = speedups.iter().sum::<f64>() / speedups.len() as f64;
        row.push(format!("{:.2}x", avg));
        table.push_row(row);
    }

    // The pooled smoke cell: multiplexing 8 logical clients over 2
    // pipelined sockets vs a window-8 socket per client. The acceptance
    // bar is parity — sticky pinning must not cost throughput on the
    // shared-socket deployment.
    let mut pooled_table = Table::new(
        "Pooled client smoke: 8 logical clients, Kops/s by deployment",
        vec!["deployment".into(), "sockets".into(), "Kops/s".into(), "vs dedicated".into()],
    );
    pooled_table.note("Same 50/50 mix, disjoint per-client key ranges, 2 shards;");
    pooled_table.note("each logical client keeps 4 of its own tickets in flight.");
    pooled_table.note("acceptance bar: pooled >= dedicated (window-8) parity.");
    let dedicated = drive_per_client_sockets();
    let pooled = drive_pooled();
    pooled_table.push_row(vec![
        "socket per client".into(),
        POOL_LOGICAL.to_string(),
        fmt_num(dedicated / 1e3),
        "1.00x".into(),
    ]);
    pooled_table.push_row(vec![
        "pooled".into(),
        POOL_SOCKETS.to_string(),
        fmt_num(pooled / 1e3),
        format!("{:.2}x", pooled / dedicated),
    ]);

    vec![table, pooled_table]
}
