//! Shared experiment plumbing: the canonical trace, run helpers, and the
//! parameter conventions of Section 4.

use apcache_core::cost::CostModel;
use apcache_sim::systems::{
    build_adaptive_simulation, AdaptiveSystemConfig, QuerySpec, WorkloadSpec,
};
use apcache_sim::{SimConfig, Stats};
use apcache_workload::query::KindMix;
use apcache_workload::trace::{TraceConfig, TraceSet};
use apcache_workload::walk::WalkConfig;

/// The master seed every experiment derives from (change to re-randomize
/// the whole evaluation).
pub const MASTER_SEED: u64 = 0x5151_2001;

/// The canonical network trace of the evaluation: 50 hosts, two hours,
/// one-minute moving averages, peak 5.2·10⁶ B/s.
pub fn paper_trace() -> TraceSet {
    TraceSet::generate(&TraceConfig::paper_like(), MASTER_SEED)
        .expect("paper-like trace config is valid")
}

/// Simulation config for trace runs: the full two hours with a 600 s
/// warm-up discarded, as in the paper.
pub fn trace_sim_config(seed: u64) -> SimConfig {
    SimConfig::builder()
        .duration_secs(7_200)
        .warmup_secs(600)
        .seed(seed)
        .build()
        .expect("static sim config valid")
}

/// SUM query workload over 10 random sources (the paper's standard).
pub fn sum_queries(tq: f64, delta_avg: f64, rho: f64) -> QuerySpec {
    QuerySpec { period_secs: tq, fanout: 10, delta_avg, delta_rho: rho, kind_mix: KindMix::SumOnly }
}

/// MAX query workload over 10 random sources.
pub fn max_queries(tq: f64, delta_avg: f64, rho: f64) -> QuerySpec {
    QuerySpec { period_secs: tq, fanout: 10, delta_avg, delta_rho: rho, kind_mix: KindMix::MaxOnly }
}

/// Adaptive system config with the paper's recommended settings
/// (`α = 1`, `γ0 = 1K`, `γ1 = ∞`) for the given cost factor.
pub fn paper_system(theta: f64) -> AdaptiveSystemConfig {
    AdaptiveSystemConfig {
        cost: CostModel::from_theta(theta).expect("theta valid"),
        alpha: 1.0,
        gamma0: 1_000.0,
        gamma1: f64::INFINITY,
        ..AdaptiveSystemConfig::default()
    }
}

/// Run the adaptive system over a trace workload; returns measured stats.
pub fn run_on_trace(
    trace: &TraceSet,
    sys: &AdaptiveSystemConfig,
    queries: QuerySpec,
    seed: u64,
) -> Stats {
    let report = build_adaptive_simulation(
        &trace_sim_config(seed),
        sys,
        WorkloadSpec::trace(trace.clone()),
        queries,
    )
    .expect("trace experiment assembles")
    .run()
    .expect("trace experiment runs");
    report.stats
}

/// Run the adaptive system over random walks; returns measured stats.
pub fn run_on_walks(
    n: usize,
    walk: WalkConfig,
    sys: &AdaptiveSystemConfig,
    queries: QuerySpec,
    duration_secs: u64,
    seed: u64,
) -> Stats {
    let cfg = SimConfig::builder()
        .duration_secs(duration_secs)
        .warmup_secs(duration_secs / 10)
        .seed(seed)
        .build()
        .expect("static sim config valid");
    let report = build_adaptive_simulation(&cfg, sys, WorkloadSpec::random_walks(n, walk), queries)
        .expect("walk experiment assembles")
        .run()
        .expect("walk experiment runs");
    report.stats
}

/// Percentage difference of `b` relative to `a`.
pub fn pct_diff(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        return 0.0;
    }
    (b - a) / a * 100.0
}
