//! Telemetry overhead: does a live metrics registry cost the hot path?
//!
//! Not a paper figure — this harness guards the PR that threaded
//! `apcache-telemetry` through the serving layers. The design claim is
//! that the *read-hit hot path is untouched*: counters live in
//! `StoreMetrics` exactly as before, the per-verb latency clocks run at
//! the completion queue (submit → settle), and scrapes render from
//! atomics off-path. So the instrumented build's read hit must stay
//! within a few percent of the same loop run without any telemetry
//! objects in the process — the budget here is 5%, against the PR 3
//! hot-path baseline of ~71–78 ns/op on the reference machine.
//!
//! Two variants of the identical 10k-key read-hit loop
//! (`Constraint::Absolute(20)` against `InitialWidth::Fixed(10)`, so
//! every read is a cache hit):
//!
//! * **baseline** — the bare store loop, nothing else alive.
//! * **instrumented** — the same loop with a populated [`Registry`] and
//!   [`TraceRing`] in the process, and a full registry render (a
//!   Prometheus scrape's work) performed between timing windows.
//!
//! Each variant runs three interleaved windows and keeps the
//! fastest (minimum ns/op is the noise-robust estimator). The harness
//! asserts the overhead budget and writes `BENCH_telemetry.json` next
//! to the invocation cwd — the machine-readable start of the
//! perf-trajectory record.

use std::time::Instant;

use apcache_store::{Constraint, InitialWidth, PrecisionStore, StoreBuilder};
use apcache_telemetry::{Registry, TraceKind, TraceRing, LATENCY_BUCKETS_SECONDS};

use crate::table::Table;

const KEYS: u64 = 10_000;
/// Read hits per timing window (per round, per variant).
const OPS: u64 = 5_000_000;
const ROUNDS: usize = 3;
/// Allowed instrumented-over-baseline slowdown.
pub const BUDGET_PCT: f64 = 5.0;
/// PR 3's recorded reference band, ns/op (for the JSON trail; absolute
/// numbers are machine-dependent, so nothing asserts against this).
const PR3_BASELINE_NS: (f64, f64) = (71.0, 78.0);

fn build_store() -> PrecisionStore<u64> {
    let mut b = StoreBuilder::new().initial_width(InitialWidth::Fixed(10.0));
    for k in 0..KEYS {
        b = b.source(k, k as f64);
    }
    b.build().expect("store config valid")
}

/// One timing window: `OPS` read hits; returns (ns/op, width checksum).
fn window(store: &mut PrecisionStore<u64>) -> (f64, f64) {
    let mut acc = 0.0f64;
    let started = Instant::now();
    for i in 0..OPS {
        let k = i % KEYS;
        acc += store.read(&k, Constraint::Absolute(20.0), 0).expect("read hit").answer.width();
    }
    (started.elapsed().as_secs_f64() / OPS as f64 * 1e9, acc)
}

fn warm(store: &mut PrecisionStore<u64>) -> f64 {
    let mut acc = 0.0;
    for k in 0..KEYS {
        acc += store.read(&k, Constraint::Absolute(20.0), 0).expect("read hit").answer.width();
    }
    acc
}

/// A registry populated the way a serving runtime's is: verb latency
/// histograms, wire counters, occupancy gauges.
fn live_registry() -> Registry {
    let registry = Registry::new();
    for verb in ["read", "write", "aggregate", "metrics", "subscribe"] {
        registry
            .histogram(
                "apcache_verb_latency_seconds",
                "Submit-to-completion latency by verb.",
                &LATENCY_BUCKETS_SECONDS,
                &[("verb", verb)],
            )
            .observe(42e-6);
    }
    registry.counter("apcache_wire_frames_total", "Frames.", &[("dir", "in")]).add(1_000_000);
    registry.gauge("apcache_wire_inflight", "Window occupancy.", &[("conn", "0")]).set(7);
    registry
}

/// The measured cell: (baseline ns/op, instrumented ns/op).
pub fn measure() -> (f64, f64) {
    let mut baseline_store = build_store();
    let mut checks = warm(&mut baseline_store);

    let mut instrumented_store = build_store();
    checks += warm(&mut instrumented_store);
    let registry = live_registry();
    let ring = TraceRing::new(1024);

    let mut baseline = f64::INFINITY;
    let mut instrumented = f64::INFINITY;
    for round in 0..ROUNDS {
        let (ns, acc) = window(&mut baseline_store);
        baseline = baseline.min(ns);
        checks += acc;

        // A scrape between windows: render the whole registry (what the
        // Exposition verb does) and record a trace event — the off-path
        // work whose absence from the loop this harness is proving.
        let mut out = apcache_telemetry::Exposition::new();
        registry.render(&mut out);
        checks += out.finish().len() as f64;
        ring.record(TraceKind::Submit, round as u64, "read", None);

        let (ns, acc) = window(&mut instrumented_store);
        instrumented = instrumented.min(ns);
        checks += acc;
    }
    // Keep the accumulators alive so the reads cannot be optimized out.
    assert!(checks.is_finite());
    (baseline, instrumented)
}

/// Machine-readable record for the perf-trajectory trail.
pub fn to_json(baseline: f64, instrumented: f64) -> String {
    let overhead_pct = (instrumented / baseline - 1.0) * 100.0;
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"telemetry_overhead\",\n",
            "  \"keys\": {},\n",
            "  \"ops_per_window\": {},\n",
            "  \"rounds\": {},\n",
            "  \"baseline_ns_per_op\": {},\n",
            "  \"instrumented_ns_per_op\": {},\n",
            "  \"overhead_pct\": {},\n",
            "  \"budget_pct\": {},\n",
            "  \"pr3_reference_ns_per_op\": [{}, {}]\n",
            "}}\n"
        ),
        KEYS,
        OPS,
        ROUNDS,
        baseline,
        instrumented,
        overhead_pct,
        BUDGET_PCT,
        PR3_BASELINE_NS.0,
        PR3_BASELINE_NS.1,
    )
}

/// Run the cell, assert the budget, and return the printable table plus
/// the JSON record.
pub fn run() -> (Table, String) {
    let (baseline, instrumented) = measure();
    let overhead_pct = (instrumented / baseline - 1.0) * 100.0;
    let mut table = Table::new(
        "telemetry_overhead — read-hit hot path with telemetry live",
        vec!["variant".into(), "ns/op".into(), "Mops/s".into()],
    );
    table.note(format!(
        "{KEYS} keys, {OPS} read hits x {ROUNDS} rounds per variant (min kept); \
         budget: instrumented within {BUDGET_PCT}% of baseline"
    ));
    table.note(format!(
        "PR 3 reference band: {:.0}-{:.0} ns/op (machine-dependent, not asserted)",
        PR3_BASELINE_NS.0, PR3_BASELINE_NS.1
    ));
    for (name, ns) in [("baseline", baseline), ("instrumented", instrumented)] {
        table.push_row(vec![name.into(), format!("{ns:.1}"), format!("{:.2}", 1e3 / ns)]);
    }
    table.push_row(vec!["overhead".into(), format!("{overhead_pct:+.2}%"), String::new()]);
    assert!(
        overhead_pct <= BUDGET_PCT,
        "telemetry overhead {overhead_pct:.2}% exceeds the {BUDGET_PCT}% budget \
         (baseline {baseline:.1} ns/op, instrumented {instrumented:.1} ns/op)"
    );
    (table, to_json(baseline, instrumented))
}
