//! Figures 4 and 5: source value and cached interval over time, for small
//! (`δ_avg = 50K`) vs large (`δ_avg = 500K`) precision constraints.
//!
//! The paper plots a segment where a host becomes active after a period of
//! inactivity; the adaptive algorithm picks narrow intervals when
//! constraints are tight (Fig 4) and wide ones when they are loose (Fig 5).

use apcache_core::Key;
use apcache_sim::systems::{build_adaptive_simulation, AdaptiveSystemConfig, WorkloadSpec};
use apcache_workload::trace::TraceSet;

use crate::experiments::common::{paper_trace, sum_queries, trace_sim_config, MASTER_SEED};
use crate::table::{fmt_num, Table};

/// Locate a host with a long idle stretch followed by activity — the
/// Figure 4/5 scenario — and the second at which it activates.
pub fn find_activation(trace: &TraceSet) -> (usize, usize) {
    let global_peak = trace.peak();
    let mut best: (usize, usize, f64) = (0, 0, 0.0); // host, activation, score
    for h in 0..trace.n_hosts() {
        let series = trace.host(h);
        let peak = series.iter().copied().fold(0.0f64, f64::max);
        // The paper plots a *moderate* host (peaking around 250K out of a
        // 5.2M global max): busy enough to show activity, not so busy
        // that its own volatility pins the interval width regardless of
        // the precision constraints.
        if peak <= 0.01 * global_peak || peak > 0.15 * global_peak {
            continue;
        }
        let mut idle_start = None;
        for t in 0..series.len() {
            if series[t] == 0.0 {
                idle_start.get_or_insert(t);
            } else if let Some(start) = idle_start.take() {
                let idle_len = t - start;
                if idle_len < 120 || t + 500 >= series.len() || t < 700 {
                    continue;
                }
                // Substantial activity must follow the activation.
                let burst: f64 = series[t..(t + 300).min(series.len())].iter().sum::<f64>() / 300.0;
                let score = burst * (idle_len.min(600) as f64);
                if burst > 0.05 * peak && score > best.2 {
                    best = (h, t, score);
                }
            }
        }
    }
    (best.0, best.1)
}

/// Run one Figure-4/5 style recording.
fn run_recording(trace: &TraceSet, delta_avg: f64, host: usize, activation: usize) -> Table {
    let sys = AdaptiveSystemConfig {
        // Fig 4/5 parameters: alpha=1, gamma0=0, gamma1=inf, theta=1.
        alpha: 1.0,
        gamma0: 0.0,
        gamma1: f64::INFINITY,
        ..AdaptiveSystemConfig::default()
    };
    let report = build_adaptive_simulation(
        &trace_sim_config(MASTER_SEED),
        &sys,
        WorkloadSpec::trace(trace.clone()),
        sum_queries(1.0, delta_avg, 1.0),
    )
    .expect("assembles")
    .with_recorder(Key(host as u32))
    .run()
    .expect("runs");

    let mut table = Table::new(
        format!(
            "Figure {}: value and cached interval over time, delta_avg = {} (host {host})",
            if delta_avg < 100_000.0 { "4" } else { "5" },
            fmt_num(delta_avg),
        ),
        vec![
            "t (s)".into(),
            "value".into(),
            "interval lo".into(),
            "interval hi".into(),
            "width".into(),
        ],
    );
    table.note("paper shape: tight constraints (Fig 4) -> narrow intervals tracking the value;");
    table.note("loose constraints (Fig 5) -> wide intervals that rarely refresh.");
    let recorder = report.recorder.expect("recorder attached");
    let from = activation.saturating_sub(100);
    let to = (activation + 500).min(trace.duration_secs() - 1);
    for sample in recorder.samples() {
        let t = sample.t_secs as usize;
        if t < from || t > to || t % 20 != 0 {
            continue;
        }
        table.push_row(vec![
            format!("{t}"),
            fmt_num(sample.value),
            fmt_num(sample.lo),
            fmt_num(sample.hi),
            fmt_num(sample.hi - sample.lo),
        ]);
    }
    table
}

/// Regenerate Figures 4 and 5; also reports the mean interval widths so
/// the narrow-vs-wide contrast is quantified.
pub fn run() -> Vec<Table> {
    let trace = paper_trace();
    let (host, activation) = find_activation(&trace);
    let fig4 = run_recording(&trace, 50_000.0, host, activation);
    let fig5 = run_recording(&trace, 500_000.0, host, activation);

    // Quantify the contrast: mean cached width while the host is active
    // (idle stretches have no value-initiated pressure, so widths there
    // only decay and say nothing about the chosen precision).
    let mean_width = |t: &Table| {
        let widths: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[1].parse::<f64>().map(|v| v > 0.0).unwrap_or(false))
            .filter_map(|r| r[4].parse::<f64>().ok())
            .filter(|w| w.is_finite())
            .collect();
        widths.iter().sum::<f64>() / widths.len().max(1) as f64
    };
    let (m4, m5) = (mean_width(&fig4), mean_width(&fig5));
    let mut summary =
        Table::new("Figures 4 vs 5 summary", vec!["delta_avg".into(), "mean cached width".into()]);
    summary.note("paper: tight constraints favour narrow intervals (width capped near the");
    summary.note("per-item budget delta_avg/10 or the host's own slew, whichever binds),");
    summary.note("loose constraints favour substantially wider ones.");
    summary.push_row(vec!["50K".into(), fmt_num(m4)]);
    summary.push_row(vec!["500K".into(), fmt_num(m5)]);
    summary.push_row(vec!["ratio".into(), fmt_num(m5 / m4)]);
    vec![fig4, fig5, summary]
}
