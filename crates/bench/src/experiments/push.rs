//! Push fan-out latency: loopback write→push delivery time as a
//! function of subscriber count.
//!
//! Not a paper figure — this harness measures the v3 streaming path end
//! to end: client write → frame → pipelined reader → shard actor
//! (escape, refresh, registry fan-out) → drainer → one push frame per
//! subscriber → client codec → push queue. The actor queues every push
//! *before* it sends the write's own completion, so the moment the
//! blocking write returns, all of its pushes have crossed the wire; the
//! measured time covers the write **and** the full fan-out. The
//! acceptance bar is sub-millisecond mean latency at 100 subscribers on
//! loopback.

use std::thread;
use std::time::Instant;

use apcache_core::Rng;
use apcache_push::PushFilter;
use apcache_runtime::Runtime;
use apcache_shard::{ShardedStore, ShardedStoreBuilder};
use apcache_store::InitialWidth;
use apcache_wire::{loopback, serve_pipelined, RemoteStoreClient};

use crate::experiments::common::MASTER_SEED;
use crate::table::{fmt_num, Table};

const SUBSCRIBERS: [usize; 3] = [1, 100, 10_000];

/// Writes measured per subscriber count, scaled so the total push-frame
/// volume stays comparable across rows (every write fans out to every
/// subscriber).
fn writes_for(subscribers: usize) -> usize {
    match subscribers {
        0..=9 => 2_000,
        10..=999 => 400,
        _ => 40,
    }
}

fn build_fleet() -> ShardedStore<u64> {
    // One hot key, small growth rate: the measured writes alternate
    // ±5e12 jumps, far beyond any width the escapes can grow (10 ×
    // 1.01^2000 < 5e9), so every write escapes and pushes.
    ShardedStoreBuilder::new()
        .shards(1)
        .alpha(0.01)
        .rng(Rng::seed_from_u64(MASTER_SEED))
        .initial_width(InitialWidth::Fixed(10.0))
        .source(0u64, 0.0)
        .build()
        .expect("fleet config valid")
}

/// Mean / p50 / p99 write→push latency (µs) over `writes` escaping
/// writes with `subscribers` push subscriptions on the hot key.
fn drive(subscribers: usize, writes: usize) -> (f64, f64, f64) {
    let runtime = Runtime::launch(build_fleet()).expect("runtime launches");
    let handle = runtime.handle();
    let (server_end, client_end) = loopback();
    let server = thread::spawn(move || serve_pipelined(server_end, handle).expect("serves"));
    let mut client: RemoteStoreClient<u64, _> = RemoteStoreClient::with_window(client_end, 64);
    for _ in 0..subscribers {
        client.subscribe(&0u64, PushFilter::Always, 0).expect("subscribe");
    }

    let mut lat_us = Vec::with_capacity(writes);
    for i in 0..writes {
        let value = if i % 2 == 0 { 5e12 } else { -5e12 };
        let started = Instant::now();
        client.write(&0u64, value, 1 + i as u64).expect("known key");
        // The actor pushed before replying: returning from the blocking
        // write means every subscriber's frame is already decoded and
        // queued — this stamp closes over the whole fan-out.
        lat_us.push(started.elapsed().as_secs_f64() * 1e6);
        let mut delivered = 0usize;
        while client.poll_push().is_some() {
            delivered += 1;
        }
        assert_eq!(delivered, subscribers, "write {i} must push to every subscriber");
    }

    client.shutdown().expect("clean shutdown");
    server.join().expect("server thread");
    drop(runtime);

    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean = lat_us.iter().sum::<f64>() / lat_us.len() as f64;
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    (mean, pct(0.50), pct(0.99))
}

/// Regenerate the write→push latency table (subscriber-count sweep).
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "Write->push latency on loopback: microseconds by subscriber count",
        vec![
            "subscribers".into(),
            "writes".into(),
            "mean us".into(),
            "p50 us".into(),
            "p99 us".into(),
            "pushes/write".into(),
        ],
    );
    table.note("Every write escapes its interval, so every write fans out");
    table.note("one push frame per subscriber; the stamp closes when the");
    table.note("blocking write returns, which the actor's push-before-reply");
    table.note("ordering guarantees is after ALL pushes were delivered.");
    table.note("Acceptance bar: sub-millisecond mean at 100 subscribers.");
    for &subscribers in &SUBSCRIBERS {
        let writes = writes_for(subscribers);
        let (mean, p50, p99) = drive(subscribers, writes);
        table.push_row(vec![
            subscribers.to_string(),
            writes.to_string(),
            fmt_num(mean),
            fmt_num(p50),
            fmt_num(p99),
            subscribers.to_string(),
        ]);
    }
    vec![table]
}
