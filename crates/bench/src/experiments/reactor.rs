//! Reactor connection sweep: aggregate throughput by open-connection
//! count × pipelined window, threaded door vs reactor door.
//!
//! Not a paper figure — this harness guards the PR that added the
//! event-driven `apcache-reactor` serving core. The threaded door
//! spends two OS threads per connection, so its 10k cell would mean
//! ~20k threads and is skipped (reported as `-`); the reactor holds
//! every cell on its fixed worker pool — the 10k cell *completing* with
//! a bounded thread count is half the acceptance bar. The other half is
//! retention: the reactor's window-32 throughput from 100 → 1 000 open
//! connections must hold ≥ [`RETENTION_FLOOR`]× (asserted here, and
//! re-checked hardware-independently by CI's perf guard from
//! `BENCH_reactor.json`).
//!
//! All connections are in-process [`loopback_streams`] pairs — the
//! reactor drives them through ready hooks instead of fds, so the 10k
//! cell needs no sockets, no rlimit bumps, and runs anywhere. A fixed
//! `DRIVERS` client threads deal ops round-robin over the
//! connections, each connection under the same windowed discipline
//! (see `OPS_PER_CONN_FLOOR`), so the sweep isolates what *open
//! connections* cost, not client-side scheduling.

use std::collections::VecDeque;
use std::thread;
use std::time::Instant;

use apcache_core::Rng;
use apcache_reactor::{Reactor, ReactorConfig};
use apcache_runtime::{Runtime, RuntimeConfig, DEFAULT_MAILBOX_CAPACITY};
use apcache_shard::{ShardedStore, ShardedStoreBuilder};
use apcache_store::{Constraint, InitialWidth};
use apcache_wire::{
    loopback_streams, serve_pipelined, LoopbackStream, RemoteStoreClient, StreamTransport, Ticket,
};

use crate::experiments::common::MASTER_SEED;
use crate::table::{fmt_num, Table};

const KEYS: u64 = 256;
const SHARDS: usize = 2;
const CONNS: [usize; 3] = [100, 1_000, 10_000];
const WINDOWS: [usize; 2] = [1, 32];
/// Client threads driving the connections (each deals ops round-robin
/// over its share, keeping `window` tickets in flight per connection).
const DRIVERS: usize = 8;
/// The threaded door's two-threads-per-connection model stops being
/// meaningful past this point (the 10k cell would be ~20k threads).
const THREADED_MAX_CONNS: usize = 1_000;
/// Shortest timed phase worth measuring: cells with few connections
/// run more ops per connection to reach it. Sized so the fastest cell
/// still times a few hundred milliseconds — the retention assert
/// compares two cells, and a sub-100ms phase is scheduler noise.
const MIN_CELL_OPS: u64 = 96_000;
/// Per-connection op floor for the 100/1k cells: every connection
/// wraps a window-32 pipeline at least three times, so the driver
/// discipline — fill the window, then settle one op per submit — is
/// identical across connection counts. (A cell whose per-connection
/// trace is *shorter* than the window would burst-submit without ever
/// blocking: a different client regime, not a server property, and it
/// would contaminate exactly the retention ratio this sweep asserts.)
const OPS_PER_CONN_FLOOR: u64 = 96;
/// The 10k cells prove scale — completion with a bounded thread count —
/// not peak rate: a short per-connection trace keeps them affordable.
const OPS_PER_CONN_AT_10K: u64 = 8;
/// Best-of repetitions for the reactor cells (the cells the retention
/// assert gates on). The threaded cells are informational and run once.
const REPS: usize = 3;

/// Ops each connection issues in a cell of `conns` connections.
fn ops_per_conn(conns: usize) -> u64 {
    if conns >= 10_000 {
        OPS_PER_CONN_AT_10K
    } else {
        OPS_PER_CONN_FLOOR.max(MIN_CELL_OPS / conns as u64)
    }
}
/// Reactor window-32 throughput retention floor from 100 → 1k conns.
pub const RETENTION_FLOOR: f64 = 0.8;

type Client = RemoteStoreClient<u64, StreamTransport<LoopbackStream>>;

fn build_fleet() -> ShardedStore<u64> {
    let mut b = ShardedStoreBuilder::new()
        .shards(SHARDS)
        .rng(Rng::seed_from_u64(MASTER_SEED))
        .initial_width(InitialWidth::Fixed(10.0));
    for k in 0..KEYS {
        b = b.source(k, (k % 977) as f64);
    }
    b.build().expect("fleet config valid")
}

/// Launch the fleet with the shard mailboxes provisioned for the
/// cell's offered concurrency: `conns × window` tickets can be in
/// flight at once, and every cell gets the same treatment. The default
/// capacity is tuned for small deployments; leaving it in place would
/// make the sweep measure queue-depth tuning (producers parking on
/// full mailboxes, the reactor deferring decodes) instead of what it
/// isolates — the cost of *open connections*.
fn launch_runtime(conns: usize, window: usize) -> Runtime<u64> {
    let mailbox_capacity = (conns * window).max(DEFAULT_MAILBOX_CAPACITY);
    Runtime::launch_with(
        build_fleet(),
        RuntimeConfig { mailbox_capacity, ..RuntimeConfig::default() },
    )
    .expect("runtime launches")
}

/// Drive one chunk of connections: each connection gets `ops_per_conn`
/// ops of a 50/50 read/write mix with up to `window` tickets in flight.
///
/// Ops are dealt round-robin — one per connection per round — so every
/// connection in the chunk stays concurrently active and the pipeline
/// drains once per *chunk*, not once per connection. Driving the
/// connections to completion one at a time would pay a tail round-trip
/// stall per connection, a driver-side cost that grows with the
/// connection count and would contaminate exactly the retention ratio
/// this sweep asserts.
fn drive_chunk(
    mut clients: Vec<Client>,
    ops_per_conn: u64,
    window: usize,
    seed: u64,
) -> Vec<Client> {
    let mut rng = Rng::seed_from_u64(MASTER_SEED ^ 0xEAC7 ^ seed);
    let mut in_flight: Vec<VecDeque<(Ticket, bool)>> =
        (0..clients.len()).map(|_| VecDeque::with_capacity(window)).collect();
    let settle = |client: &mut Client, (ticket, was_read): (Ticket, bool)| {
        if was_read {
            client.wait_read(ticket).expect("known key");
        } else {
            client.wait_write(ticket).expect("known key");
        }
    };
    for i in 0..ops_per_conn {
        for (client, window_q) in clients.iter_mut().zip(in_flight.iter_mut()) {
            if window_q.len() >= window {
                let head = window_q.pop_front().expect("non-empty");
                settle(client, head);
            }
            let key = rng.below(KEYS);
            let is_read = rng.bernoulli(0.5);
            let ticket = if is_read {
                client.submit_read(&key, Constraint::Absolute(25.0), i).expect("submit")
            } else {
                client.submit_write(&key, rng.uniform(0.0, 1_000.0), i).expect("submit")
            };
            window_q.push_back((ticket, is_read));
        }
    }
    for (client, window_q) in clients.iter_mut().zip(in_flight.iter_mut()) {
        for head in window_q.drain(..) {
            settle(client, head);
        }
    }
    clients
}

/// Split the clients across [`DRIVERS`] threads, run the mix, and
/// return aggregate ops/s. The clients come back alive — every
/// connection stays open for the whole timed phase.
fn drive_all(clients: Vec<Client>, ops_per_conn: u64, window: usize) -> (f64, Vec<Client>) {
    let chunk = clients.len().div_ceil(DRIVERS);
    let mut remaining = clients;
    let started = Instant::now();
    let mut workers = Vec::new();
    let mut seed = 0u64;
    while !remaining.is_empty() {
        let take = chunk.min(remaining.len());
        let mine: Vec<Client> = remaining.drain(..take).collect();
        seed += 1;
        workers.push(thread::spawn(move || drive_chunk(mine, ops_per_conn, window, seed)));
    }
    let mut clients = Vec::new();
    for w in workers {
        clients.extend(w.join().expect("driver thread"));
    }
    let total = ops_per_conn * clients.len() as u64;
    (total as f64 / started.elapsed().as_secs_f64(), clients)
}

/// Reactor door: every connection is a loopback pair injected into one
/// fixed worker pool; readiness flows through the streams' ready hooks.
/// Also returns the process thread count sampled while every connection
/// was still open — the bound that proves no thread-per-connection.
fn drive_reactor(conns: usize, window: usize) -> (f64, Option<u64>) {
    let runtime = launch_runtime(conns, window);
    let handle = runtime.handle();
    let reactor: Reactor<LoopbackStream> =
        Reactor::launch(&handle, ReactorConfig::default()).expect("reactor launches");
    let clients: Vec<Client> = (0..conns)
        .map(|_| {
            let (server_end, client_end) = loopback_streams();
            reactor.add_connection(server_end);
            RemoteStoreClient::with_window(StreamTransport::new(client_end), window)
        })
        .collect();
    let (ops_per_sec, clients) = drive_all(clients, ops_per_conn(conns), window);
    let threads = process_threads();
    // EOF every connection first so the workers close them naturally;
    // join() then only has to observe the empty connection maps.
    drop(clients);
    reactor.join();
    drop(runtime);
    (ops_per_sec, threads)
}

/// Threaded door: the existing two-threads-per-connection model, one
/// `serve_pipelined` reader/drainer pair per loopback connection.
fn drive_threaded(conns: usize, window: usize) -> f64 {
    let runtime = launch_runtime(conns, window);
    let mut servers = Vec::with_capacity(conns);
    let clients: Vec<Client> = (0..conns)
        .map(|_| {
            let (server_end, client_end) = loopback_streams();
            let handle = runtime.handle();
            servers.push(thread::spawn(move || {
                // EOF teardown is a clean exit here, not a failure.
                let _ = serve_pipelined(StreamTransport::new(server_end), handle);
            }));
            RemoteStoreClient::with_window(StreamTransport::new(client_end), window)
        })
        .collect();
    let (ops_per_sec, clients) = drive_all(clients, ops_per_conn(conns), window);
    drop(clients);
    for s in servers {
        s.join().expect("server thread");
    }
    drop(runtime);
    ops_per_sec
}

/// Threads currently in this process (Linux); `None` elsewhere.
fn process_threads() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find_map(|l| l.strip_prefix("Threads:")).and_then(|n| n.trim().parse().ok())
}

/// One measured cell.
pub struct Cell {
    /// Which door served: `"threaded"` or `"reactor"`.
    pub door: &'static str,
    /// Open connections held for the whole timed phase.
    pub conns: usize,
    /// Per-connection pipelined window.
    pub window: usize,
    /// Aggregate throughput over the fixed total op count.
    pub ops_per_sec: f64,
}

/// The whole sweep plus the acceptance figures.
pub struct Sweep {
    /// Every measured cell, threaded first.
    pub cells: Vec<Cell>,
    /// Reactor window-32 throughput ratio, 1k conns over 100 conns.
    pub retention_100_to_1k: f64,
    /// Process thread count observed during the reactor 10k cell
    /// (Linux; the bound that proves no thread-per-connection).
    pub threads_at_10k: Option<u64>,
}

/// Run the sweep. Panics if the reactor's window-32 retention from
/// 100 → 1k connections falls below [`RETENTION_FLOOR`].
pub fn measure() -> Sweep {
    let mut cells = Vec::new();
    for &conns in &CONNS {
        if conns > THREADED_MAX_CONNS {
            continue;
        }
        for &window in &WINDOWS {
            let ops_per_sec = drive_threaded(conns, window);
            eprintln!("  threaded conns={conns} window={window}: {:.0} ops/s", ops_per_sec);
            cells.push(Cell { door: "threaded", conns, window, ops_per_sec });
        }
    }
    let mut threads_at_10k = None;
    let mut reactor_cells = Vec::new();
    for &conns in &CONNS {
        for &window in &WINDOWS {
            if window == 32 && (conns == 100 || conns == 1_000) {
                // The two retention cells are measured in paired reps
                // below so their ratio is noise-robust.
                continue;
            }
            // Best of REPS fresh runs: report the door's capability
            // rather than one run's scheduler luck.
            let mut ops_per_sec = 0.0f64;
            for _ in 0..REPS {
                let (rep, threads) = drive_reactor(conns, window);
                ops_per_sec = ops_per_sec.max(rep);
                if conns == 10_000 && threads_at_10k.is_none() {
                    // Sampled inside the cell, with all 10k connections
                    // still open: the reactor adds a fixed pool, nothing
                    // per-connection.
                    threads_at_10k = threads;
                }
            }
            eprintln!("  reactor conns={conns} window={window}: {:.0} ops/s", ops_per_sec);
            reactor_cells.push(Cell { door: "reactor", conns, window, ops_per_sec });
        }
    }
    // Retention is a ratio of two noisy measurements on a shared host:
    // a machine-wide slowdown deflates whichever cell it lands on, so
    // comparing each cell's independent best still swings the ratio.
    // Instead run the two cells back to back inside each rep and take
    // the best rep's ratio — correlated noise hits both sides of one
    // rep and divides out.
    let mut best_100 = 0.0f64;
    let mut best_1k = 0.0f64;
    let mut retention_100_to_1k = 0.0f64;
    for _ in 0..REPS {
        let (t100, _) = drive_reactor(100, 32);
        let (t1k, _) = drive_reactor(1_000, 32);
        best_100 = best_100.max(t100);
        best_1k = best_1k.max(t1k);
        retention_100_to_1k = retention_100_to_1k.max(t1k / t100);
    }
    eprintln!("  reactor conns=100 window=32: {:.0} ops/s", best_100);
    eprintln!("  reactor conns=1000 window=32: {:.0} ops/s", best_1k);
    reactor_cells.push(Cell { door: "reactor", conns: 100, window: 32, ops_per_sec: best_100 });
    reactor_cells.push(Cell { door: "reactor", conns: 1_000, window: 32, ops_per_sec: best_1k });
    reactor_cells.sort_by_key(|c| (c.conns, c.window));
    cells.extend(reactor_cells);
    assert!(
        retention_100_to_1k >= RETENTION_FLOOR,
        "reactor window-32 throughput retention 100->1k fell to {retention_100_to_1k:.2}x \
         (floor {RETENTION_FLOOR}x)"
    );
    Sweep { cells, retention_100_to_1k, threads_at_10k }
}

/// Machine-readable record for the perf-trajectory trail.
pub fn to_json(sweep: &Sweep) -> String {
    let mut cells = String::new();
    for (i, c) in sweep.cells.iter().enumerate() {
        let sep = if i + 1 == sweep.cells.len() { "" } else { "," };
        cells.push_str(&format!(
            "    {{ \"door\": \"{}\", \"conns\": {}, \"window\": {}, \"ops\": {}, \"ops_per_sec\": {} }}{sep}\n",
            c.door,
            c.conns,
            c.window,
            ops_per_conn(c.conns) * c.conns as u64,
            c.ops_per_sec
        ));
    }
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"reactor_sweep\",\n",
            "  \"ops_per_conn_floor\": {},\n",
            "  \"shards\": {},\n",
            "  \"keys\": {},\n",
            "  \"drivers\": {},\n",
            "  \"retention_floor\": {},\n",
            "  \"reactor_w32_retention_100_to_1k\": {},\n",
            "  \"threads_at_10k\": {},\n",
            "  \"cells\": [\n{}  ]\n",
            "}}\n"
        ),
        OPS_PER_CONN_FLOOR,
        SHARDS,
        KEYS,
        DRIVERS,
        RETENTION_FLOOR,
        sweep.retention_100_to_1k,
        sweep.threads_at_10k.map_or("null".to_string(), |n| n.to_string()),
        cells,
    )
}

/// Run the sweep and return the printable table plus the JSON record.
pub fn run() -> (Table, String) {
    let sweep = measure();
    let mut table = Table::new(
        "Reactor connection sweep: Kops/s by open connections (rows) x door/window (columns)",
        vec![
            "connections".into(),
            "threaded w=1".into(),
            "threaded w=32".into(),
            "reactor w=1".into(),
            "reactor w=32".into(),
        ],
    );
    table.note(format!(
        ">= {OPS_PER_CONN_FLOOR} windowed ops per connection (10k cells: {OPS_PER_CONN_AT_10K}),"
    ));
    table.note(format!("50/50 read/write over {KEYS} keys x {SHARDS} shards,"));
    table.note(format!(
        "{DRIVERS} driver threads; every connection held open for the whole timed phase;"
    ));
    table.note("shard mailboxes provisioned for conns x window in-flight tickets per cell.");
    table.note("threaded door = 2 OS threads per connection (10k cell skipped: ~20k threads);");
    table.note("reactor door = fixed worker pool over loopback ready hooks, no fds.");
    table.note(format!(
        "acceptance: reactor w=32 retention 100->1k >= {RETENTION_FLOOR}x \
         (measured {:.2}x){}",
        sweep.retention_100_to_1k,
        sweep
            .threads_at_10k
            .map_or(String::new(), |n| format!("; {n} process threads during the 10k cell")),
    ));
    let lookup = |door: &str, conns: usize, window: usize| {
        sweep
            .cells
            .iter()
            .find(|c| c.door == door && c.conns == conns && c.window == window)
            .map_or("-".to_string(), |c| fmt_num(c.ops_per_sec / 1e3))
    };
    for &conns in &CONNS {
        table.push_row(vec![
            conns.to_string(),
            lookup("threaded", conns, 1),
            lookup("threaded", conns, 32),
            lookup("reactor", conns, 1),
            lookup("reactor", conns, 32),
        ]);
    }
    let json = to_json(&sweep);
    (table, json)
}
