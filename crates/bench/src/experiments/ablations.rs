//! Section 4.5 ablations: the "unsuccessful variations".
//!
//! The paper reports three variations that seemed intuitive but did not
//! beat the main algorithm: uncentered intervals (except on biased data),
//! time-varying intervals (except linear drift on biased data), and
//! refresh-history windows `r > 1`. These benches reproduce each
//! comparison.

use apcache_core::policy::{GrowthLaw, Weighting};
use apcache_sim::systems::{AdaptiveSystemConfig, PolicyKind, QuerySpec};
use apcache_workload::query::KindMix;
use apcache_workload::walk::WalkConfig;

use crate::experiments::common::{
    paper_trace, run_on_trace, run_on_walks, sum_queries, MASTER_SEED,
};
use crate::table::{fmt_num, Table};

const WALK_DURATION: u64 = 20_000;
const WALK_SOURCES: usize = 8;

fn walk_queries(delta_avg: f64) -> QuerySpec {
    QuerySpec { period_secs: 1.0, fanout: 4, delta_avg, delta_rho: 1.0, kind_mix: KindMix::SumOnly }
}

fn run_policy_on_walks(policy: PolicyKind, walk: WalkConfig, seed: u64) -> f64 {
    let sys = AdaptiveSystemConfig {
        policy,
        gamma0: 0.0,
        gamma1: f64::INFINITY,
        ..AdaptiveSystemConfig::default()
    };
    run_on_walks(WALK_SOURCES, walk, &sys, walk_queries(40.0), WALK_DURATION, seed).cost_rate()
}

fn run_policy_on_trace(policy: PolicyKind, seed: u64) -> f64 {
    let trace = paper_trace();
    let sys = AdaptiveSystemConfig {
        policy,
        gamma0: 0.0,
        gamma1: f64::INFINITY,
        ..AdaptiveSystemConfig::default()
    };
    run_on_trace(&trace, &sys, sum_queries(1.0, 100_000.0, 0.5), seed).cost_rate()
}

/// Centered vs uncentered intervals on unbiased walks, biased walks, and
/// the network trace.
pub fn run_uncentered() -> Table {
    let mut table = Table::new(
        "Section 4.5a: centered vs uncentered intervals",
        vec![
            "workload".into(),
            "centered".into(),
            "uncentered".into(),
            "uncentered/centered %".into(),
        ],
    );
    table.note("paper: uncentered performs worse on unbiased walks and the network data,");
    table.note("slightly better on strongly biased (always-rising) walks.");
    let mut seed = MASTER_SEED + 450_000;
    let mut push = |label: &str, centered: f64, uncentered: f64| {
        table.push_row(vec![
            label.into(),
            fmt_num(centered),
            fmt_num(uncentered),
            fmt_num(uncentered / centered * 100.0),
        ]);
    };
    // Unbiased walk.
    seed += 10;
    let c = run_policy_on_walks(PolicyKind::Adaptive, WalkConfig::paper_default(), seed);
    let u = run_policy_on_walks(PolicyKind::Uncentered, WalkConfig::paper_default(), seed);
    push("unbiased walk", c, u);
    // Biased walk (mostly upward).
    seed += 10;
    let biased = WalkConfig::biased(0.9);
    let c = run_policy_on_walks(PolicyKind::Adaptive, biased, seed);
    let u = run_policy_on_walks(PolicyKind::Uncentered, biased, seed);
    push("biased walk p_up=0.9", c, u);
    // Network trace.
    seed += 10;
    let c = run_policy_on_trace(PolicyKind::Adaptive, seed);
    let u = run_policy_on_trace(PolicyKind::Uncentered, seed);
    push("network trace", c, u);
    table
}

/// Constant vs time-growing vs drifting intervals.
pub fn run_time_varying() -> Table {
    let mut table = Table::new(
        "Section 4.5b: time-varying intervals",
        vec!["workload".into(), "variant".into(), "Omega".into(), "vs constant %".into()],
    );
    table.note("paper: widths growing as t^(1/2) or t^(1/3) are worse than constant");
    table.note("intervals on both unbiased walks and the trace; linearly drifting");
    table.note("endpoints (rate matched to the drift) are the best form for biased data.");
    let mut seed = MASTER_SEED + 451_000;

    // Unbiased walk: constant vs growth laws.
    seed += 10;
    let base = run_policy_on_walks(PolicyKind::Adaptive, WalkConfig::paper_default(), seed);
    table.push_row(vec!["unbiased walk".into(), "constant".into(), fmt_num(base), "100".into()]);
    for (label, law) in [
        ("grow t^1/2", GrowthLaw::sqrt(1.0).expect("valid")),
        ("grow t^1/3", GrowthLaw::cbrt(1.0).expect("valid")),
    ] {
        let omega =
            run_policy_on_walks(PolicyKind::TimeVarying(law), WalkConfig::paper_default(), seed);
        table.push_row(vec![
            "unbiased walk".into(),
            label.into(),
            fmt_num(omega),
            fmt_num(omega / base * 100.0),
        ]);
    }

    // Trace: constant vs growth laws.
    seed += 10;
    let base_trace = run_policy_on_trace(PolicyKind::Adaptive, seed);
    table.push_row(vec!["trace".into(), "constant".into(), fmt_num(base_trace), "100".into()]);
    // Growth coefficient scaled to the trace's value range.
    let law = GrowthLaw::sqrt(5_000.0).expect("valid");
    let omega = run_policy_on_trace(PolicyKind::TimeVarying(law), seed);
    table.push_row(vec![
        "trace".into(),
        "grow t^1/2".into(),
        fmt_num(omega),
        fmt_num(omega / base_trace * 100.0),
    ]);

    // Biased walk: constant vs drift-matched linear endpoints.
    seed += 10;
    let biased = WalkConfig::biased(0.9);
    let base_biased = run_policy_on_walks(PolicyKind::Adaptive, biased, seed);
    table.push_row(vec![
        "biased walk".into(),
        "constant".into(),
        fmt_num(base_biased),
        "100".into(),
    ]);
    let drift = biased.drift();
    let omega = run_policy_on_walks(PolicyKind::Drifting { rate_per_sec: drift }, biased, seed);
    table.push_row(vec![
        "biased walk".into(),
        format!("drift k={}", fmt_num(drift)),
        fmt_num(omega),
        fmt_num(omega / base_biased * 100.0),
    ]);
    table
}

/// Refresh-history windows `r ∈ {1, 3, 7, 15}` (uniform and recency
/// weighted).
pub fn run_history() -> Table {
    let mut table = Table::new(
        "Section 4.5c: refresh-history window size r",
        vec!["r".into(), "weighting".into(), "Omega (trace)".into(), "vs r=1 %".into()],
    );
    table.note("paper: no history scheme outperformed r=1 (the main algorithm), which is");
    table.note("also the most adaptive and simplest to implement.");
    let mut seed = MASTER_SEED + 452_000;
    seed += 1;
    let base =
        run_policy_on_trace(PolicyKind::History { r: 1, weighting: Weighting::Uniform }, seed);
    table.push_row(vec!["1".into(), "uniform".into(), fmt_num(base), "100".into()]);
    for r in [3usize, 7, 15] {
        let omega =
            run_policy_on_trace(PolicyKind::History { r, weighting: Weighting::Uniform }, seed);
        table.push_row(vec![
            r.to_string(),
            "uniform".into(),
            fmt_num(omega),
            fmt_num(omega / base * 100.0),
        ]);
    }
    let omega = run_policy_on_trace(
        PolicyKind::History { r: 7, weighting: Weighting::Exponential { decay: 0.5 } },
        seed,
    );
    table.push_row(vec![
        "7".into(),
        "exp decay 0.5".into(),
        fmt_num(omega),
        fmt_num(omega / base * 100.0),
    ]);
    table
}

/// Regenerate every Section 4.5 ablation.
pub fn run() -> Vec<Table> {
    vec![run_uncentered(), run_time_varying(), run_history()]
}
