//! Figures 7–9: performance of the upper-threshold settings
//! `γ1 ∈ {∞, 2K, γ0 = 1K}` as a function of the average precision
//! constraint, for query periods `T_q ∈ {0.5, 1, 2}`.
//!
//! Paper shape: with `γ1 = γ0` every value is cached exactly or not at
//! all, so the cost rate is flat in `δ_avg` (horizontal lines); `γ1 = ∞`
//! exploits loose constraints and wins for `δ_avg` large, while
//! `γ1 = γ0` wins at `δ_avg = 0` for SUM queries.

use apcache_sim::systems::AdaptiveSystemConfig;

use crate::experiments::common::{paper_trace, run_on_trace, sum_queries, MASTER_SEED};
use crate::table::{fmt_num, Table};

/// δ_avg sweep (the paper plots 0..500K).
pub const DELTA_AVGS: [f64; 7] =
    [0.0, 5_000.0, 10_000.0, 50_000.0, 100_000.0, 250_000.0, 500_000.0];

/// One figure (one query period).
pub fn run_one(tq: f64) -> Table {
    let trace = paper_trace();
    let fig = if tq <= 0.5 {
        "7"
    } else if tq <= 1.0 {
        "8"
    } else {
        "9"
    };
    let mut table = Table::new(
        format!(
            "Figure {fig}: settings of gamma1, T_q = {tq} (alpha=1, rho=0.5, gamma0=1K, theta=1)"
        ),
        vec![
            "delta_avg".into(),
            "gamma1=inf".into(),
            "gamma1=2K".into(),
            "gamma1=gamma0=1K".into(),
        ],
    );
    table.note("paper shape: gamma1=gamma0 is flat (independent of delta_avg) and best only");
    table.note("for exact workloads; gamma1=inf is best once constraints are loose; gamma1=2K");
    table.note("sits between, helping high-precision workloads at the cost of loose ones.");
    let mut seed = MASTER_SEED + 79_000 + (tq * 10.0) as u64;
    for &delta_avg in &DELTA_AVGS {
        let mut row = vec![fmt_num(delta_avg)];
        for gamma1 in [f64::INFINITY, 2_000.0, 1_000.0] {
            let sys = AdaptiveSystemConfig {
                alpha: 1.0,
                gamma0: 1_000.0,
                gamma1,
                ..AdaptiveSystemConfig::default()
            };
            seed += 1;
            let rho = 0.5;
            let stats = run_on_trace(&trace, &sys, sum_queries(tq, delta_avg, rho), seed);
            row.push(fmt_num(stats.cost_rate()));
        }
        table.push_row(row);
    }
    table
}

/// Regenerate Figures 7, 8 and 9.
pub fn run() -> Vec<Table> {
    vec![run_one(0.5), run_one(1.0), run_one(2.0)]
}
