//! Plain-text table rendering for experiment output.

/// A printable experiment result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table heading (figure number + description).
    pub title: String,
    /// Free-form notes: paper-expected shape, parameters, observations.
    pub notes: Vec<String>,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (each row must have `columns.len()` entries).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table { title: title.into(), notes: Vec::new(), columns, rows: Vec::new() }
    }

    /// Attach a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Append a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push('\n');
        for note in &self.notes {
            out.push_str("   ");
            out.push_str(note);
            out.push('\n');
        }
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let fmt_line = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("   ");
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{cell:>w$}"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_line(&self.columns, &widths));
        let rule_len: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str("   ");
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// Compact numeric formatting: large magnitudes get thousands separators
/// dropped in favour of short scientific-ish forms; small ones keep a few
/// significant digits.
pub fn fmt_num(x: f64) -> String {
    if x.is_nan() {
        return "-".into();
    }
    if x.is_infinite() {
        return if x > 0.0 { "inf".into() } else { "-inf".into() };
    }
    let a = x.abs();
    if a >= 100_000.0 {
        format!("{:.3}e{}", x / 10f64.powi(a.log10().floor() as i32), a.log10().floor() as i32)
    } else if a >= 100.0 || (x.fract() == 0.0 && a < 100_000.0) {
        format!("{x:.0}")
    } else if a >= 1.0 {
        format!("{x:.2}")
    } else if a > 0.0 {
        format!("{x:.4}")
    } else {
        "0".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", vec!["a".into(), "long-column".into()]);
        t.note("a note");
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["100".into(), "x".into()]);
        let r = t.render();
        assert!(r.contains("== demo"));
        assert!(r.contains("a note"));
        // Right-aligned cells under headers.
        assert!(r.contains("long-column"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn fmt_num_cases() {
        assert_eq!(fmt_num(f64::NAN), "-");
        assert_eq!(fmt_num(f64::INFINITY), "inf");
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(3.14511), "3.15");
        assert_eq!(fmt_num(0.123456), "0.1235");
        assert_eq!(fmt_num(250.0), "250");
        assert!(fmt_num(520_000.0).contains('e'));
    }
}
