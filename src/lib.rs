//! # apcache — adaptive precision setting for cached approximate values
//!
//! Umbrella crate for a full reproduction of **Olston, Loo & Widom,
//! "Adaptive Precision Setting for Cached Approximate Values"
//! (ACM SIGMOD 2001)**. It re-exports every sub-crate of the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`store`] | `apcache-store` | **the serving façade**: `PrecisionStore` — precision-parameterized reads, writes, bounded aggregates, and metrics over generic keys |
//! | [`shard`] | `apcache-shard` | **the scale-out layer**: `ShardedStore` — consistent-hash routing over `PrecisionStore` shards, same four verbs, merged metrics |
//! | [`runtime`] | `apcache-runtime` | **the concurrent serving layer**: `Runtime` — one actor thread per shard, bounded mailboxes with backpressure, scatter/gather aggregates |
//! | [`wire`] | `apcache-wire` | **the cross-process layer**: a compact binary frame protocol with loopback/TCP transports, `RemoteStoreClient` ↔ `StoreServer` |
//! | [`reactor`] | `apcache-reactor` | **the event-driven serving core**: `serve_reactor` — a poll/epoll readiness loop driving 10k+ pipelined connections from a fixed worker pool, frame-coalescing push fan-out |
//! | [`push`] | `apcache-push` | **the streaming layer's primitives**: per-key subscriber registry, hierarchical timer wheel, TTL leases |
//! | [`core`] | `apcache-core` | interval algebra, the adaptive precision policy and its variants, source/cache protocol, analytic model, deterministic RNG |
//! | [`queries`] | `apcache-queries` | bounded aggregate queries (SUM/MAX/MIN/AVG) with refresh-set selection |
//! | [`workload`] | `apcache-workload` | random walks, synthetic network traffic traces, query workloads |
//! | [`sim`] | `apcache-sim` | discrete event simulator and cost statistics |
//! | [`baselines`] | `apcache-baselines` | WJH97 adaptive exact caching, HSW94 divergence caching, stale-value specialization |
//! | [`hier`] | `apcache-hier` | multi-level cache hierarchies (the paper's Section 5 future work) |
//!
//! Applications talk to [`store::PrecisionStore`]; the simulator, the
//! baselines, and the experiment harnesses drive the same façade so there
//! is exactly one implementation of the refresh protocol.
//!
//! ## Quickstart
//!
//! Ask for a value *to within ±δ*: the store answers from its cached
//! interval when that is precise enough (free), and otherwise refreshes
//! exactly once, adapting each key's precision to its traffic as it goes.
//!
//! ```
//! use apcache::store::{Constraint, StoreBuilder};
//!
//! // Two sensors; sources register with an exact starting value.
//! let mut store = StoreBuilder::new()
//!     .source("cpu_load", 40.0)
//!     .source("queue_depth", 1_200.0)
//!     .build()
//!     .unwrap();
//!
//! // A tolerant read is served from the cached interval at zero cost.
//! let r = store.read(&"cpu_load", Constraint::Absolute(10.0), 0).unwrap();
//! assert!(!r.refreshed);
//! assert!(r.answer.width() <= 10.0);
//! assert!(r.answer.contains(40.0));
//!
//! // A tight read triggers one query-initiated refresh: the exact value
//! // comes back and the key's interval narrows (W ← W/(1+α)).
//! let r = store.read(&"cpu_load", Constraint::Exact, 1_000).unwrap();
//! assert_eq!(r.answer.estimate(), Some(40.0));
//! assert!(r.refreshed);
//!
//! // Writes inside the interval are free; escaping writes refresh and
//! // widen (W ← W·(1+α)).
//! let w = store.write(&"queue_depth", 1_201.0, 2_000).unwrap();
//! assert!(!w.escaped());
//!
//! // Bounded aggregates fetch only the keys the planner selects.
//! use apcache::queries::AggregateKind;
//! let out = store
//!     .aggregate(AggregateKind::Sum, &["cpu_load", "queue_depth"], Constraint::Absolute(50.0), 3_000)
//!     .unwrap();
//! assert!(out.answer.width() <= 50.0);
//! assert_eq!(out.refreshed, vec!["queue_depth"]); // the widest item
//!
//! // Refresh traffic and costs are accounted per key.
//! assert_eq!(store.metrics().qr_count(), 2);
//! assert_eq!(store.metrics().for_key(&"cpu_load").unwrap().qr_count, 1);
//! ```
//!
//! To *evaluate* a configuration under synthetic load instead, assemble a
//! simulation (the paper's Section 4 environment) with
//! [`sim::systems::build_adaptive_simulation`] — it drives the same
//! `PrecisionStore` through the event loop and reports the cost rate `Ω`.

pub use apcache_baselines as baselines;
pub use apcache_core as core;
pub use apcache_hier as hier;
pub use apcache_push as push;
pub use apcache_queries as queries;
pub use apcache_reactor as reactor;
pub use apcache_runtime as runtime;
pub use apcache_shard as shard;
pub use apcache_sim as sim;
pub use apcache_store as store;
pub use apcache_telemetry as telemetry;
pub use apcache_wire as wire;
pub use apcache_workload as workload;
