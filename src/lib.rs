//! # apcache — adaptive precision setting for cached approximate values
//!
//! Umbrella crate for a full reproduction of **Olston, Loo & Widom,
//! "Adaptive Precision Setting for Cached Approximate Values"
//! (ACM SIGMOD 2001)**. It re-exports every sub-crate of the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `apcache-core` | interval algebra, the adaptive precision policy and its variants, source/cache protocol, analytic model, deterministic RNG |
//! | [`queries`] | `apcache-queries` | bounded aggregate queries (SUM/MAX/MIN/AVG) with refresh-set selection |
//! | [`workload`] | `apcache-workload` | random walks, synthetic network traffic traces, query workloads |
//! | [`sim`] | `apcache-sim` | discrete event simulator and cost statistics |
//! | [`baselines`] | `apcache-baselines` | WJH97 adaptive exact caching, HSW94 divergence caching, stale-value specialization |
//! | [`hier`] | `apcache-hier` | multi-level cache hierarchies (the paper's Section 5 future work) |
//!
//! ## Quickstart
//!
//! ```
//! use apcache::core::cost::CostModel;
//! use apcache::sim::systems::{AdaptiveSystemConfig, build_adaptive_simulation};
//! use apcache::sim::SimConfig;
//! use apcache::workload::walk::WalkConfig;
//!
//! // One source performing a random walk, queried every 2 s with
//! // precision constraints averaging 20.
//! let sim_cfg = SimConfig::builder()
//!     .duration_secs(2_000)
//!     .warmup_secs(200)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let sys_cfg = AdaptiveSystemConfig {
//!     cost: CostModel::multiversion(),
//!     alpha: 1.0,
//!     ..AdaptiveSystemConfig::default()
//! };
//! let report = build_adaptive_simulation(
//!     &sim_cfg,
//!     &sys_cfg,
//!     apcache::sim::systems::WorkloadSpec::random_walks(1, WalkConfig::paper_default()),
//!     apcache::sim::systems::QuerySpec {
//!         period_secs: 2.0,
//!         delta_avg: 20.0,
//!         delta_rho: 1.0,
//!         fanout: 1,
//!         kind_mix: apcache::workload::query::KindMix::SumOnly,
//!     },
//! )
//! .unwrap()
//! .run()
//! .unwrap();
//! assert!(report.stats.cost_rate() > 0.0);
//! ```

pub use apcache_baselines as baselines;
pub use apcache_core as core;
pub use apcache_hier as hier;
pub use apcache_queries as queries;
pub use apcache_sim as sim;
pub use apcache_workload as workload;
